//! A minimal, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses: seeded deterministic generators (`StdRng`, `SmallRng`),
//! the `Rng` extension methods (`gen`, `gen_range`, `gen_bool`), and the
//! slice helpers (`shuffle`, `choose`, `choose_multiple`).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate. Everything here
//! is uniform sampling over a SplitMix64 core — statistically fine for
//! test-data generation and benchmarks, and fully deterministic for a
//! given seed (which is all the callers rely on).

#![allow(clippy::new_without_default)]

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distributions and sampling traits.
pub mod distributions {
    use crate::RngCore;

    /// Types samplable from their "standard" distribution: uniform over the
    /// whole domain for integers and `bool`, uniform over `[0, 1)` for
    /// floats — matching `rand`'s `Standard`.
    pub trait StandardSample: Sized {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            // 53 high bits -> [0, 1) with full double precision.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl StandardSample for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Integer types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Bit-casts to `u64` (sign-extending for signed types).
    fn to_u64(self) -> u64;
    /// Inverse of [`SampleUniform::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let lo = self.start.to_u64();
        let span = self.end.to_u64().wrapping_sub(lo);
        T::from_u64(lo.wrapping_add(rng.next_u64() % span))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let lo = start.to_u64();
        let span = end.to_u64().wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full u64 domain.
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo.wrapping_add(rng.next_u64() % span))
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = crate::distributions::StandardSample::sample(rng);
        let u: f64 = u;
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution.
    fn gen<T: distributions::StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution-like value (subset of the real
    /// API; provided for symmetry, unused distributions simply don't exist).
    fn sample<T: distributions::StandardSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic seeded generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    /// Small fast generator — same core as [`StdRng`] in this shim.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng {
                state: seed ^ 0xD6E8_FEB8_6659_FD93,
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks `amount` distinct elements uniformly (fewer if the slice is
        /// shorter), yielding references in selection order.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end up random
            // and distinct.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }

    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            self.as_mut_slice().shuffle(rng)
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            self.as_slice().choose(rng)
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            self.as_slice().choose_multiple(rng, amount)
        }
    }
}

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u16 = r.gen_range(3u16..=9);
            assert!((3..=9).contains(&v));
            let u: usize = r.gen_range(0..5usize);
            assert!(u < 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose_multiple_are_permutations() {
        let mut r = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let picked: Vec<u32> = v.choose_multiple(&mut r, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
