//! A minimal, dependency-free stand-in for the parts of `proptest` 1.x this
//! workspace uses: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, strategies for integer and float ranges,
//! tuples, `Vec`s of strategies, [`collection::vec`], [`sample::subsequence`],
//! [`arbitrary::any`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate. Differences from
//! real proptest: cases are drawn from a deterministic per-test seed, and
//! there is **no shrinking** — a failing case reports the assertion message
//! only. That is sufficient for the differential/property suites here,
//! which are all seed-stable.

pub mod test_runner {
    /// Per-test configuration (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// The deterministic generator strategies draw from (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name so every property gets a stable but
        /// distinct stream.
        pub fn from_name_seed(name: &str) -> TestRng {
            // FNV-1a.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi]` (inclusive).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u64 + 1;
            if span == 0 {
                return self.next_u64() as usize;
            }
            lo + (self.next_u64() % span) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the strategy
        /// `f` builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing `f`, retrying (bounded).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive candidates",
                self.reason
            );
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as u64;
                    let span = (self.end as u64).wrapping_sub(lo);
                    lo.wrapping_add(rng.next_u64() % span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.f64_unit() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.f64_unit() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    /// A `Vec` of strategies generates a `Vec` of one value from each —
    /// mirrors real proptest's `Strategy for Vec<S>`.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`](fn@vec): a fixed `usize`, `a..b`,
    /// or `a..=b`.
    pub trait SizeBounds {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeBounds for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy produced by [`vec`](fn@vec).
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.min_len, self.max_len);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }
}

pub mod sample {
    use crate::collection::SizeBounds;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy produced by [`subsequence`].
    #[derive(Clone, Debug)]
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        min_len: usize,
        max_len: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            let len = rng.usize_in(self.min_len.min(n), self.max_len.min(n));
            // Partial Fisher–Yates for `len` distinct indices, then sort to
            // keep the subsequence in source order.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..len {
                let j = rng.usize_in(i, n - 1);
                idx.swap(i, j);
            }
            let mut picked = idx[..len].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// A random in-order subsequence of `values` whose length is drawn from
    /// `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl SizeBounds) -> Subsequence<T> {
        let (min_len, max_len) = size.bounds();
        assert!(
            min_len <= values.len(),
            "subsequence lower bound exceeds source length"
        );
        Subsequence {
            values,
            min_len,
            max_len,
        }
    }
}

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn name(pat in
/// strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name_seed(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome: ::core::result::Result<(), ::std::string::String> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, msg);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {:?} != {:?}",
                l,
                r
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn mapped_values_are_even(v in evens()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn tuples_and_vecs((len, flag) in (1usize..8, any::<bool>())) {
            prop_assume!(len > 0);
            prop_assert!(flag == flag, "tautology with fmt {}", len);
        }

        #[test]
        fn collection_vec_respects_bounds(v in crate::collection::vec(0u8..10, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn subsequence_is_ordered(s in crate::sample::subsequence((0..20).collect::<Vec<i32>>(), 1..=20)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0usize..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn filter_holds(v in (0u32..100).prop_filter("nonzero", |&v| v != 0)) {
            prop_assert!(v != 0);
        }
    }
}
