//! A minimal, dependency-free stand-in for the parts of `criterion` 0.5 this
//! workspace uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this shim instead of the real crate. It times each
//! benchmark over `sample_size` iterations (after one warm-up call) and
//! prints mean wall-clock time per iteration — no statistics, outlier
//! analysis, or HTML reports. Good enough for the relative comparisons the
//! benches here are read for, and it keeps `cargo bench` runnable offline.
//!
//! Like real criterion, passing `--test` on the command line (e.g.
//! `cargo bench --bench query_batch -- --test`) runs every benchmark body
//! exactly once without timing — the smoke mode CI uses to keep the benches
//! compiling and panic-free without paying for measurement.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark (builder form, as
    /// used in `criterion_group!` configs).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into_benchmark_id().0, sample_size, f);
        self
    }
}

/// A benchmark identifier: a function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] (so `bench_function` accepts both ids
/// and plain strings).
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Times one benchmark with an explicit input (real-criterion parity).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` once to warm up, then `iterations` timed times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// `true` when the process was invoked with `--test` (criterion's smoke
/// mode): run each benchmark once, skip timing output.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    if test_mode() {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{label:<50} (test mode: 1 iter, untimed)");
        return;
    }
    let mut b = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.elapsed.is_zero() {
        // The closure never called `iter` — nothing to report.
        eprintln!("{label:<50} (no measurement)");
        return;
    } else {
        b.elapsed.as_secs_f64() / sample_size as f64
    };
    let formatted = if per_iter >= 1.0 {
        format!("{per_iter:>10.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:>10.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:>10.3} µs", per_iter * 1e6)
    } else {
        format!("{:>10.3} ns", per_iter * 1e9)
    };
    println!("{label:<50} time: {formatted}  ({sample_size} iters)");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? $(;)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut count = 0u64;
        g.bench_function(BenchmarkId::new("counting", 64), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
    }

    criterion_group!(group, sample_bench);

    #[test]
    fn group_runs_and_times() {
        group();
    }

    #[test]
    fn builder_forms_compose() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &v| {
            b.iter(|| v * 2)
        });
        g.finish();
    }
}
