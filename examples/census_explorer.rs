//! Explores the census-like dataset (the paper's real-data stand-in,
//! §5.1/§5.3): builds all three indexes, prints the Table 7 composition
//! cross-tab and per-index size/compression, then races the indexes on a
//! mixed query workload.
//!
//! ```text
//! cargo run --release --example census_explorer           # 50k rows
//! IBIS_CENSUS_ROWS=463733 cargo run --release --example census_explorer
//! ```

use ibis::core::gen::{census_scaled, workload, QuerySpec};
use ibis::core::stats::CompositionTable;
use ibis::prelude::*;
use std::time::Instant;

fn main() {
    let rows: usize = std::env::var("IBIS_CENSUS_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let data = census_scaled(rows, 7);
    println!(
        "census stand-in: {} rows × {} attrs ({:.1} MB raw)\n",
        data.n_rows(),
        data.n_attrs(),
        data.raw_bytes() as f64 / 1e6
    );
    println!("{}", CompositionTable::census_buckets(&data).render());

    let t = Instant::now();
    let bee = EqualityBitmapIndex::<Wah>::build(&data);
    let bee_build = t.elapsed();
    let t = Instant::now();
    let bre = RangeBitmapIndex::<Wah>::build(&data);
    let bre_build = t.elapsed();
    let t = Instant::now();
    let va = VaFile::build(&data);
    let va_build = t.elapsed();

    let bee_report = bee.size_report();
    let bre_report = bre.size_report();
    println!("index                    size        ratio   build");
    println!(
        "BEE (WAH)        {:>9.1} KB   {:>8.3}   {:>6.0?}",
        bee.size_bytes() as f64 / 1024.0,
        bee_report.compression_ratio(),
        bee_build
    );
    println!(
        "BRE (WAH)        {:>9.1} KB   {:>8.3}   {:>6.0?}",
        bre.size_bytes() as f64 / 1024.0,
        bre_report.compression_ratio(),
        bre_build
    );
    println!(
        "VA-file          {:>9.1} KB   {:>8}   {:>6.0?}",
        va.size_bytes() as f64 / 1024.0,
        "-",
        va_build
    );

    // The paper's headline real-data numbers: BEE ratio ≈ 0.17, BRE ≈ 0.70,
    // with the >90%-missing attributes compressing best of all.
    let best = bee_report
        .per_attr
        .iter()
        .min_by(|a, b| a.compression_ratio().total_cmp(&b.compression_ratio()))
        .expect("non-empty");
    println!(
        "\nbest-compressing attribute under BEE: #{} at ratio {:.3} \
         (missing rate {:.1}%)",
        best.attr,
        best.compression_ratio(),
        data.column(best.attr).missing_rate() * 100.0
    );

    // Race a mixed workload under both semantics.
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 100,
            k: 4,
            global_selectivity: 0.01,
            policy,
            candidate_attrs: vec![],
        };
        let queries = workload(&data, &spec, 99);
        let t = Instant::now();
        let bee_hits: usize = queries
            .iter()
            .map(|q| bee.execute(q).expect("valid").len())
            .sum();
        let bee_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let bre_hits: usize = queries
            .iter()
            .map(|q| bre.execute(q).expect("valid").len())
            .sum();
        let bre_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let va_hits: usize = queries
            .iter()
            .map(|q| va.execute(&data, q).expect("valid").len())
            .sum();
        let va_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(bee_hits, bre_hits);
        assert_eq!(bee_hits, va_hits);
        println!(
            "\n100 queries, k=4, {policy}: BEE {bee_ms:.1} ms | BRE {bre_ms:.1} ms | \
             VA {va_ms:.1} ms ({bee_hits} total matches)"
        );
    }
}
