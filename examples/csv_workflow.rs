//! End-to-end CSV workflow: import a messy survey export (blank cells,
//! `NA`s, free-text categories), index it, and query it with the textual
//! language — including string literals resolved through the import
//! dictionaries.
//!
//! ```text
//! cargo run --example csv_workflow
//! ```

use ibis::core::csv::{import_csv, CsvOptions};
use ibis::core::parse::parse_query_with_dictionaries;
use ibis::prelude::*;

const SURVEY: &str = "\
respondent_age,region,employment,satisfaction
34,north,full_time,4
NA,south,part_time,5
29,north,NA,3
41,east,full_time,NA
23,?,student,5
56,south,retired,2
38,north,full_time,4
NA,east,?,1
45,west,part_time,NA
31,south,full_time,5
";

fn main() {
    // 1. Import: sentinel tokens become missing cells; every column is
    //    dictionary-encoded onto 1..=C (numerically where possible).
    let report = import_csv(SURVEY, &CsvOptions::default()).expect("well-formed CSV");
    let data = &report.dataset;
    println!(
        "imported {} respondents × {} attributes:",
        data.n_rows(),
        data.n_attrs()
    );
    for (col, dict) in data.columns().iter().zip(&report.dictionaries) {
        println!(
            "  {:>15}: C = {:<3} ({}), {:.0}% missing",
            col.name(),
            col.cardinality(),
            dict.join("/"),
            col.missing_rate() * 100.0
        );
    }

    // 2. Index it. BRE for the range-flavoured analytics below.
    let index = RangeBitmapIndex::<Wah>::build(data);
    println!(
        "\nBRE index: {} bitmaps, {} bytes",
        index.n_bitmaps(),
        index.size_bytes()
    );

    // 3. Query with the textual language; string literals go through the
    //    dictionaries. Both missing semantics, as in the paper:
    //    - loose ("could match"): skipped answers stay in;
    //    - strict ("definitely answered"): the survey-count semantics.
    let text = r#"region = "north" and satisfaction >= 3"#;
    for policy in MissingPolicy::ALL {
        let q = parse_query_with_dictionaries(data, &report.dictionaries, text, policy)
            .expect("valid query");
        let rows = index.execute(&q).expect("schema-valid");
        println!("\n{text}\n  under {policy}: {} respondents", rows.len());
        for r in rows.iter() {
            let region = report.decode(1, data.cell(r as usize, 1)).unwrap_or("∅");
            let sat = report.decode(3, data.cell(r as usize, 3)).unwrap_or("∅");
            println!("    #{r}: region={region} satisfaction={sat}");
        }
        assert_eq!(rows, ibis::core::scan::execute(data, &q));
    }

    // 4. The paper's survey example, verbatim shape: "answered question X
    //    with answer A and question Y with answer C" — strict counting.
    let q = parse_query_with_dictionaries(
        data,
        &report.dictionaries,
        r#"employment = "full_time" and satisfaction = "4""#,
        MissingPolicy::IsNotMatch,
    )
    .expect("valid query");
    println!(
        "\nfull-time respondents who definitely answered satisfaction = 4: {}",
        index.execute(&q).expect("schema-valid").len()
    );
}
