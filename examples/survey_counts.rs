//! The paper's survey scenario (§1, example 2): skip-logic surveys where
//! answering one question causes others to be skipped, and analysts count
//! respondents who *definitely* answered specific questions with specific
//! answers — missing-is-NOT-match semantics.
//!
//! "… a count of respondents that answered question 5 with answer A and
//! question 8 with answer C."
//!
//! ```text
//! cargo run --example survey_counts
//! ```

use ibis::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const N_QUESTIONS: usize = 12;
/// Answers are A..E (cardinality 5).
const N_ANSWERS: u16 = 5;
const N_RESPONDENTS: usize = 20_000;

fn answer_name(v: u16) -> char {
    (b'A' + (v - 1) as u8) as char
}

fn main() {
    // Skip logic: answering question q with answer >= 4 skips question q+1
    // (a branch in the survey). This makes missingness *informative* — it
    // depends on other attributes, the "not ignorable" case the paper
    // targets.
    let mut rng = StdRng::seed_from_u64(1984);
    let schema: Vec<(String, u16)> = (1..=N_QUESTIONS)
        .map(|q| (format!("q{q}"), N_ANSWERS))
        .collect();
    let schema_refs: Vec<(&str, u16)> = schema.iter().map(|(n, c)| (n.as_str(), *c)).collect();
    let mut builder = DatasetBuilder::new(&schema_refs).expect("valid schema");
    for _ in 0..N_RESPONDENTS {
        let mut row = Vec::with_capacity(N_QUESTIONS);
        let mut skip_next = false;
        for _ in 0..N_QUESTIONS {
            if skip_next {
                row.push(Cell::MISSING);
                skip_next = false;
                continue;
            }
            let answer = rng.gen_range(1..=N_ANSWERS);
            skip_next = answer >= 4;
            row.push(Cell::present(answer));
        }
        builder.push_row(&row).expect("row in domain");
    }
    let survey = builder.finish();
    println!(
        "survey: {} respondents × {} questions; per-question skip rates:",
        survey.n_rows(),
        survey.n_attrs()
    );
    for col in survey.columns() {
        println!(
            "  {:>4}: {:>5.1}% skipped",
            col.name(),
            col.missing_rate() * 100.0
        );
    }

    // Range-encoded bitmaps: the analyst's filters are often ranges
    // ("answered B or worse"), where BRE reads at most 2 bitmaps per
    // question under not-match semantics.
    let index = RangeBitmapIndex::<Wah>::build(&survey);
    println!(
        "\nBRE index: {} bitmaps, {:.1} KB\n",
        index.n_bitmaps(),
        index.size_bytes() as f64 / 1024.0
    );

    // The paper's literal example: q5 = A AND q8 = C, counted strictly.
    let q5 = 4usize; // 0-based attribute index of question 5
    let q8 = 7usize;
    let query = RangeQuery::new(
        vec![Predicate::point(q5, 1), Predicate::point(q8, 3)],
        MissingPolicy::IsNotMatch,
    )
    .expect("valid key");
    let strict = index.execute(&query).expect("schema-valid");
    println!(
        "respondents with q5 = {} and q8 = {}: {}",
        answer_name(1),
        answer_name(3),
        strict.len()
    );

    // The same key under missing-is-match counts respondents who *could*
    // have answered that way (skipped counts as compatible).
    let loose = query.with_policy(MissingPolicy::IsMatch);
    let could = index.execute(&loose).expect("schema-valid");
    println!(
        "respondents compatible with that answer pattern (skips count): {}",
        could.len()
    );
    assert!(could.len() >= strict.len());

    // A range filter: q2 answered D or E (the skip-triggering answers),
    // and q3 therefore skipped — demonstrating informative missingness.
    let pattern = RangeQuery::new(vec![Predicate::range(1, 4, 5)], MissingPolicy::IsNotMatch)
        .expect("valid key");
    let d_or_e = index.execute(&pattern).expect("schema-valid");
    let q3_missing: usize = d_or_e
        .iter()
        .filter(|&r| survey.cell(r as usize, 2).is_missing())
        .count();
    println!(
        "\nrespondents answering q2 ∈ {{D, E}}: {} — of those, {} skipped q3 \
         (skip logic makes missingness non-ignorable)",
        d_or_e.len(),
        q3_missing
    );
    assert_eq!(q3_missing, d_or_e.len(), "skip logic is deterministic");

    // Ground truth check.
    assert_eq!(strict, ibis::core::scan::execute(&survey, &query));
    println!("\nindex agrees with sequential-scan ground truth ✓");
}
