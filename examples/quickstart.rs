//! Quickstart: build every index over a small incomplete relation and run
//! one query under both missing-data semantics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ibis::prelude::*;

fn main() {
    // A tiny patient-measurements relation. Domains are 1-based integers
    // (the paper's model); `Cell::MISSING` marks unrecorded values.
    let dataset = Dataset::from_rows(
        &[
            ("blood_pressure_band", 5),
            ("glucose_band", 4),
            ("age_band", 6),
        ],
        &[
            //    bp          glucose        age
            vec![Cell::present(3), Cell::present(2), Cell::present(4)],
            vec![Cell::present(5), Cell::MISSING, Cell::present(6)],
            vec![Cell::MISSING, Cell::present(1), Cell::present(2)],
            vec![Cell::present(2), Cell::present(4), Cell::MISSING],
            vec![Cell::present(4), Cell::present(3), Cell::present(5)],
            vec![Cell::MISSING, Cell::MISSING, Cell::present(1)],
        ],
    )
    .expect("valid relation");

    // Build the paper's three indexes (bitmaps use WAH compression).
    let bee = EqualityBitmapIndex::<Wah>::build(&dataset);
    let bre = RangeBitmapIndex::<Wah>::build(&dataset);
    let va = VaFile::build(&dataset);

    println!(
        "dataset: {} rows × {} attrs",
        dataset.n_rows(),
        dataset.n_attrs()
    );
    println!(
        "index sizes: BEE {} B ({} bitmaps), BRE {} B ({} bitmaps), VA {} B ({} bits/row)",
        bee.size_bytes(),
        bee.n_bitmaps(),
        bre.size_bytes(),
        bre.n_bitmaps(),
        va.size_bytes(),
        va.row_bits(),
    );

    // "blood pressure in bands 3..=5 AND glucose in bands 2..=3".
    let key = vec![Predicate::range(0, 3, 5), Predicate::range(1, 2, 3)];

    for policy in MissingPolicy::ALL {
        let query = RangeQuery::new(key.clone(), policy).expect("valid search key");
        let truth = ibis::core::scan::execute(&dataset, &query);
        let from_bee = bee.execute(&query).expect("schema-valid");
        let from_bre = bre.execute(&query).expect("schema-valid");
        let from_va = va.execute(&dataset, &query).expect("schema-valid");
        assert_eq!(from_bee, truth);
        assert_eq!(from_bre, truth);
        assert_eq!(from_va, truth);
        println!("\n{policy}: rows {:?}", truth.rows());
        for row in truth.iter() {
            let cells: Vec<String> = dataset
                .row(row as usize)
                .iter()
                .map(|c| c.to_string())
                .collect();
            println!("  record {row}: ({})", cells.join(", "));
        }
    }
}
