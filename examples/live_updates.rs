//! A living incomplete database: the [`IncompleteDb`] layer picks the right
//! index per query (the paper's §6 decision rule) and absorbs inserts
//! through a delta store, so updates don't force an index rebuild on every
//! row — the scenario the paper flags when it notes index size "becomes
//! important as database updates become more frequent".
//!
//! ```text
//! cargo run --release --example live_updates
//! ```

use ibis::core::gen::census_scaled;
use ibis::prelude::*;
use std::time::Instant;

fn main() {
    let data = census_scaled(30_000, 11);
    let n_attrs = data.n_attrs();
    // A high-cardinality attribute for the range-query demo.
    let wide_attr = (0..n_attrs)
        .max_by_key(|&a| data.column(a).cardinality())
        .expect("non-empty schema");
    let wide_card = data.column(wide_attr).cardinality();
    let mut db = IncompleteDb::new(data);
    println!(
        "database: {} rows × {} attrs, {:.1} KB of indexes\n",
        db.n_rows(),
        db.n_attrs(),
        db.index_bytes() as f64 / 1024.0
    );

    // The planner in action: a point query routes to BEE, a wide range to BRE.
    let point = RangeQuery::new(vec![Predicate::point(3, 1)], MissingPolicy::IsMatch).unwrap();
    let range = RangeQuery::new(
        vec![Predicate::range(wide_attr, 10, wide_card - 10)],
        MissingPolicy::IsMatch,
    )
    .unwrap();
    for (name, q) in [("point", &point), ("range", &range)] {
        let plan = db.explain(q).unwrap();
        let costs: Vec<String> = plan
            .candidates
            .iter()
            .map(|c| format!("{} est. {:.0} words", c.name, c.estimated_cost))
            .collect();
        println!(
            "{name} query → {} ({}), {} rows",
            plan.chosen,
            costs.join(", "),
            db.count(q).unwrap()
        );
    }

    // Stream inserts; answers stay exact throughout.
    let before = db.count(&point).unwrap();
    let range_before = db.count(&range).unwrap();
    let t = Instant::now();
    for i in 0..5_000usize {
        let mut row = vec![Cell::MISSING; n_attrs];
        row[3] = Cell::present(1 + (i % 2) as u16);
        db.insert(&row).unwrap();
    }
    println!(
        "\ninserted 5000 rows into the delta store in {:?} (delta = {})",
        t.elapsed(),
        db.delta_len()
    );
    let mid = db.count(&point).unwrap();
    assert_eq!(mid, before + 2_500); // half got value 1, all visible at once

    let t = Instant::now();
    db.compact();
    println!(
        "compacted in {:?} (delta = {})",
        t.elapsed(),
        db.delta_len()
    );
    let after = db.count(&point).unwrap();
    assert_eq!(after, mid, "compaction must not change answers");
    println!("point-query count stable across insert+compact: {before} → {mid} → {after} ✓");

    // The memory-constrained profile keeps only the VA-file (same original
    // 30k rows, so compare against the pre-insert count).
    let small = IncompleteDb::with_config(census_scaled(30_000, 11), DbConfig::compact_profile());
    assert_eq!(small.count(&range).unwrap(), range_before);
    println!(
        "\ncompact profile: {:.1} KB of indexes (vs {:.1} KB full), same exact answers ✓",
        small.index_bytes() as f64 / 1024.0,
        db.index_bytes() as f64 / 1024.0,
    );
}
