//! The paper's motivating analyte/disease scenario (§1, example 3).
//!
//! Records are diseases; attributes are analyte ranges (a substance
//! measured in blood or urine, discretized into bands). A disease stores a
//! band only for the analytes relevant to its diagnosis — everything else
//! is *missing*, and missing must count as a match: "the act of taking an
//! analyte's measurement has no bearing on if a patient has a disease that
//! is not relevant to that particular analyte."
//!
//! A patient's panel of analyte readings becomes a point query under
//! missing-is-match semantics; the answer is the differential-diagnosis
//! list.
//!
//! ```text
//! cargo run --example medical_diagnosis
//! ```

use ibis::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const ANALYTES: [&str; 8] = [
    "glucose",
    "creatinine",
    "sodium",
    "potassium",
    "alt",
    "ast",
    "crp",
    "tsh",
];
/// Bands per analyte (the attribute cardinality).
const BANDS: u16 = 5;
const N_DISEASES: usize = 5_000;

fn main() {
    // Synthesize a disease knowledge base: each disease cares about 1..=4
    // analytes and stores the band range it expects... the paper's model
    // stores one band per analyte, so we store the *center* band.
    let mut rng = StdRng::seed_from_u64(2006);
    let mut builder =
        DatasetBuilder::new(&ANALYTES.iter().map(|&a| (a, BANDS)).collect::<Vec<_>>())
            .expect("valid schema");
    for _ in 0..N_DISEASES {
        let relevant = rng.gen_range(1..=4usize);
        let mut row = vec![Cell::MISSING; ANALYTES.len()];
        for _ in 0..relevant {
            let a = rng.gen_range(0..ANALYTES.len());
            row[a] = Cell::present(rng.gen_range(1..=BANDS));
        }
        builder.push_row(&row).expect("row in domain");
    }
    let kb = builder.finish();

    let missing_share: f64 =
        kb.columns().iter().map(|c| c.missing_rate()).sum::<f64>() / kb.n_attrs() as f64;
    println!(
        "knowledge base: {} diseases × {} analytes, {:.0}% of entries not relevant (missing)",
        kb.n_rows(),
        kb.n_attrs(),
        missing_share * 100.0
    );

    // Index once with the equality-encoded bitmap index — the paper shows
    // BEE is optimal for point queries like a patient panel.
    let index = EqualityBitmapIndex::<Wah>::build(&kb);
    println!(
        "BEE index: {} bitmaps, {} bytes\n",
        index.n_bitmaps(),
        index.size_bytes()
    );

    // A patient arrives with three measured analytes.
    let panel = [("glucose", 4u16), ("potassium", 2), ("crp", 5)];
    let predicates: Vec<Predicate> = panel
        .iter()
        .map(|&(name, band)| {
            let attr = ANALYTES
                .iter()
                .position(|&a| a == name)
                .expect("known analyte");
            Predicate::point(attr, band)
        })
        .collect();

    // Missing-is-match: diseases that do not track an analyte stay in the
    // differential.
    let diagnosis =
        RangeQuery::new(predicates.clone(), MissingPolicy::IsMatch).expect("valid panel");
    let candidates = index.execute(&diagnosis).expect("schema-valid");
    println!(
        "panel {:?}\n→ {} candidate diseases remain in the differential",
        panel,
        candidates.len()
    );

    // The WRONG semantics for this workload, shown for contrast: requiring
    // every analyte to be tracked and matching discards almost everything.
    let strict = diagnosis.with_policy(MissingPolicy::IsNotMatch);
    let strict_rows = index.execute(&strict).expect("schema-valid");
    println!(
        "→ under missing-is-not-match only {} diseases would survive (diseases \
         that happen to track all three analytes at exactly those bands)",
        strict_rows.len()
    );
    assert!(strict_rows.len() <= candidates.len());

    // Every strict answer is also a match-semantics answer.
    assert_eq!(strict_rows.intersect(&candidates), strict_rows);

    // Cross-check the index against the scan ground truth.
    assert_eq!(candidates, ibis::core::scan::execute(&kb, &diagnosis));
    println!("\nindex agrees with sequential-scan ground truth ✓");
}
