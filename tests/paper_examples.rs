//! The paper's worked examples (Tables 1–6) verified end to end, plus the
//! operation-count claims of §4.2/§4.3 on the same data.

use ibis::bitmap::QueryCost;
use ibis::core::scan;
use ibis::prelude::*;

fn m() -> Cell {
    Cell::MISSING
}
fn v(x: u16) -> Cell {
    Cell::present(x)
}

/// Tables 1–4: one attribute, cardinality 5, rows
/// `5, 2, 3, ∅, 4, 5, 1, 3, ∅, 2`.
fn paper_dataset() -> Dataset {
    Dataset::from_rows(
        &[("a1", 5)],
        &[
            vec![v(5)],
            vec![v(2)],
            vec![v(3)],
            vec![m()],
            vec![v(4)],
            vec![v(5)],
            vec![v(1)],
            vec![v(3)],
            vec![m()],
            vec![v(2)],
        ],
    )
    .unwrap()
}

#[test]
fn all_indexes_answer_every_interval_on_the_paper_example() {
    let d = paper_dataset();
    let bee = EqualityBitmapIndex::<Wah>::build(&d);
    let bre = RangeBitmapIndex::<Wah>::build(&d);
    let va = VaFile::build(&d);
    let mosaic = Mosaic::build(&d);
    for policy in MissingPolicy::ALL {
        for lo in 1..=5u16 {
            for hi in lo..=5u16 {
                let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                let truth = scan::execute(&d, &q);
                assert_eq!(bee.execute(&q).unwrap(), truth, "BEE {policy} [{lo},{hi}]");
                assert_eq!(bre.execute(&q).unwrap(), truth, "BRE {policy} [{lo},{hi}]");
                assert_eq!(
                    va.execute(&d, &q).unwrap(),
                    truth,
                    "VA {policy} [{lo},{hi}]"
                );
                assert_eq!(
                    mosaic.execute(&q).unwrap(),
                    truth,
                    "MOSAIC {policy} [{lo},{hi}]"
                );
            }
        }
    }
}

#[test]
fn bee_worst_case_bitmap_bound_holds() {
    // §4.2: "The number of bitvectors used in the worst case to evaluate a
    // single interval is min(AS, 1−AS)·C + 1."
    let d = paper_dataset();
    let bee = EqualityBitmapIndex::<Wah>::build(&d);
    let c = 5u16;
    for lo in 1..=5u16 {
        for hi in lo..=5u16 {
            // min(AS, 1−AS)·C value bitmaps plus B_0: the paper's exact
            // worst case, now tight (the executor picks the smaller side).
            let w = (hi - lo + 1) as usize;
            let bound = w.min(c as usize - w) + 1;
            let mut cost = QueryCost::zero();
            bee.evaluate_interval(0, Interval::new(lo, hi), MissingPolicy::IsMatch, &mut cost);
            assert!(
                cost.bitmaps_accessed <= bound,
                "[{lo},{hi}]: {} bitmaps > bound {bound}",
                cost.bitmaps_accessed
            );
        }
    }
}

#[test]
fn bre_bitmap_bounds_hold_everywhere() {
    // §4.3: match semantics 1–3 bitmaps per dimension, not-match 1–2.
    let d = paper_dataset();
    let bre = RangeBitmapIndex::<Wah>::build(&d);
    for lo in 1..=5u16 {
        for hi in lo..=5u16 {
            let mut cost = QueryCost::zero();
            bre.evaluate_interval(0, Interval::new(lo, hi), MissingPolicy::IsMatch, &mut cost);
            assert!(
                (0..=3).contains(&cost.bitmaps_accessed),
                "match [{lo},{hi}] {cost:?}"
            );
            let mut cost = QueryCost::zero();
            bre.evaluate_interval(
                0,
                Interval::new(lo, hi),
                MissingPolicy::IsNotMatch,
                &mut cost,
            );
            assert!(
                (0..=2).contains(&cost.bitmaps_accessed),
                "not-match [{lo},{hi}] {cost:?}"
            );
        }
    }
}

#[test]
fn table5_vafile_example_end_to_end() {
    // Tables 5/6: values {6, 1, 3, missing} with 2-bit codes; the query
    // "value is 4 or 5" returns bins {00, 10, 11} as candidates under match
    // semantics and the exact answer after refinement.
    let d = Dataset::from_rows(
        &[("a", 6)],
        &[vec![v(6)], vec![v(1)], vec![v(3)], vec![m()]],
    )
    .unwrap();
    let va = VaFile::with_bits(&d, &[2]);
    let q = RangeQuery::new(vec![Predicate::range(0, 4, 5)], MissingPolicy::IsMatch).unwrap();
    let (rows, cost) = va.execute_with_cost(&d, &q).unwrap();
    assert_eq!(rows.rows(), &[3]);
    assert_eq!(cost.candidates, 3);
    let q = q.with_policy(MissingPolicy::IsNotMatch);
    let (rows, cost) = va.execute_with_cost(&d, &q).unwrap();
    assert!(rows.is_empty());
    assert_eq!(cost.candidates, 2);
}

#[test]
fn bee_missing_bitmap_is_the_paper_overhead() {
    // §4.2's size arithmetic: the extra B_0 per attribute with missing data
    // adds exactly n bits (uncompressed) per such attribute.
    let d = paper_dataset();
    let with = EqualityBitmapIndex::<BitVec64>::build(&d);
    let complete = Dataset::from_rows(
        &[("a1", 5)],
        &[
            vec![v(5)],
            vec![v(2)],
            vec![v(3)],
            vec![v(1)],
            vec![v(4)],
            vec![v(5)],
            vec![v(1)],
            vec![v(3)],
            vec![v(1)],
            vec![v(2)],
        ],
    )
    .unwrap();
    let without = EqualityBitmapIndex::<BitVec64>::build(&complete);
    assert_eq!(with.n_bitmaps(), without.n_bitmaps() + 1);
}

#[test]
fn count_aggregation_matches_materialized_results() {
    let d = paper_dataset();
    let bee = EqualityBitmapIndex::<Wah>::build(&d);
    let bre = RangeBitmapIndex::<Wah>::build(&d);
    let bie = IntervalBitmapIndex::<Wah>::build(&d);
    let dec = DecomposedBitmapIndex::<Wah>::build(&d);
    for policy in MissingPolicy::ALL {
        for lo in 1..=5u16 {
            for hi in lo..=5u16 {
                let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                let n = scan::execute(&d, &q).len();
                assert_eq!(
                    bee.execute_count(&q).unwrap(),
                    n,
                    "BEE {policy} [{lo},{hi}]"
                );
                assert_eq!(
                    bre.execute_count(&q).unwrap(),
                    n,
                    "BRE {policy} [{lo},{hi}]"
                );
                assert_eq!(
                    bie.execute_count(&q).unwrap(),
                    n,
                    "BIE {policy} [{lo},{hi}]"
                );
                assert_eq!(
                    dec.execute_count(&q).unwrap(),
                    n,
                    "DEC {policy} [{lo},{hi}]"
                );
            }
        }
    }
    // Empty search key counts everything.
    let q = RangeQuery::new(vec![], MissingPolicy::IsMatch).unwrap();
    assert_eq!(bee.execute_count(&q).unwrap(), 10);
}
