//! Profiling acceptance: the span tree's per-phase WorkCounters deltas sum
//! to the query's final counters, the profile JSON round-trips through the
//! snapshot parser, and the disabled recorder changes nothing.

use ibis::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};

/// profile_method toggles the process-global recorder; serialize the tests
/// in this binary that rely on it.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn query(data: &Dataset) -> RangeQuery {
    let hi = |attr: usize| data.column(attr).cardinality().clamp(1, 9);
    RangeQuery::new(
        vec![
            Predicate::range(0, 1, hi(0)),
            Predicate::point(1, 1),
            Predicate::range(2, 1, hi(2)),
        ],
        MissingPolicy::IsMatch,
    )
    .unwrap()
}

fn methods(data: &Dataset) -> Vec<Box<dyn AccessMethod>> {
    vec![
        Box::new(EqualityBitmapIndex::<Wah>::build(data)),
        Box::new(RangeBitmapIndex::<Wah>::build(data)),
        Box::new(IntervalBitmapIndex::<Wah>::build(data)),
        Box::new(DecomposedBitmapIndex::<Wah>::build(data)),
        Box::new(AdaptiveBitmapIndex::build(data)),
        Box::new(VaFile::build(data).bind(Arc::new(data.clone()))),
        Box::new(SequentialScan.bind(Arc::new(data.clone()))),
    ]
}

#[test]
fn span_deltas_sum_to_final_counters_for_every_method() {
    let _serial = serial();
    let data = ibis::core::gen::census_scaled(700, 91);
    let q = query(&data);
    let truth = ibis::core::scan::execute(&data, &q);
    for method in methods(&data) {
        for threads in [1, 3] {
            let prof = ibis::profile::profile_method(&*method, &q, threads).unwrap();
            assert_eq!(prof.rows, truth, "{} t={threads}", prof.method);
            assert_eq!(
                prof.span_counter_sum(),
                prof.counters,
                "phase deltas must sum to the final counters: {} t={threads}\n{}",
                prof.method,
                prof.render(),
            );
            // The root span exists, is named, and the tree renders it.
            let root = prof.snapshot.span(prof.root).unwrap();
            assert_eq!(root.name, ibis::profile::ROOT_SPAN);
            assert!(prof.render().contains(prof.method));
        }
    }
    assert!(!ibis::obs::is_enabled(), "profiling must restore disabled");
}

#[test]
fn adaptive_profile_reports_container_exact_counters() {
    let _serial = serial();
    let data = ibis::core::gen::census_scaled(500, 97);
    let q = query(&data);
    let idx = AdaptiveBitmapIndex::build(&data);
    for threads in [1, 3] {
        let prof = ibis::profile::profile_method(&idx, &q, threads).unwrap();
        let c = prof.counters;
        // The per-kind container counters are live and the per-phase span
        // deltas (fetch + and_reduce) sum exactly to the final counters —
        // including the three container fields and the exact word count.
        assert!(
            c.containers_array + c.containers_bitmap + c.containers_run > 0,
            "t={threads}"
        );
        assert!(c.words_processed > 0, "t={threads}");
        assert_eq!(prof.span_counter_sum(), c, "t={threads}\n{}", prof.render());
    }
}

#[test]
fn profile_json_round_trips_through_the_snapshot_parser() {
    let _serial = serial();
    let data = ibis::core::gen::census_scaled(400, 92);
    let bre = RangeBitmapIndex::<Wah>::build(&data);
    let prof = ibis::profile::profile_method(&bre, &query(&data), 3).unwrap();
    let text = prof.to_json();
    let parsed = Snapshot::from_json(&text).expect("profile JSON must parse");
    assert_eq!(parsed, prof.snapshot);
    // A second serialization is byte-identical (canonical form).
    assert_eq!(parsed.to_json(), text);
    // The parsed tree still carries the counter sums.
    let fetched: u64 = parsed
        .spans
        .iter()
        .filter(|s| s.name == "bitmap.fetch")
        .flat_map(|s| s.fields.iter())
        .filter(|(name, _)| name == "bitmaps_accessed")
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(fetched as usize, prof.counters.bitmaps_accessed);
}

#[test]
fn phases_aggregate_the_tree_below_the_root() {
    let _serial = serial();
    let data = ibis::core::gen::census_scaled(300, 93);
    let bee = EqualityBitmapIndex::<Wah>::build(&data);
    let prof = ibis::profile::profile_method(&bee, &query(&data), 1).unwrap();
    let phases = prof.phases();
    assert!(phases.iter().any(|(name, count, _, c)| {
        name == "bitmap.fetch" && *count == 3 && c.bitmaps_accessed > 0
    }));
    assert!(phases
        .iter()
        .any(|(name, _, _, c)| name == "bitmap.and_reduce" && c.logical_ops == 2));
    assert!(phases.iter().all(|(name, _, _, _)| name != "query"));
}

#[test]
fn disabled_recorder_keeps_results_identical_and_records_nothing() {
    let _serial = serial();
    Recorder::disabled().install();
    let data = ibis::core::gen::census_scaled(300, 94);
    let q = query(&data);
    let bee = EqualityBitmapIndex::<Wah>::build(&data);
    let (rows, counters) = bee.execute_with_cost_threads(&q, 3).unwrap();
    assert_eq!(rows, ibis::core::scan::execute(&data, &q));
    assert!(counters.words_processed > 0);
    let snap = ibis::obs::snapshot();
    assert!(snap.spans.is_empty(), "disabled mode must not record spans");

    // And a profile of the same query reports the same rows and counters.
    let prof = ibis::profile::profile_method(&bee, &q, 3).unwrap();
    assert_eq!(prof.rows, rows);
    assert_eq!(prof.counters, counters);
}

#[test]
fn durable_open_emits_storage_spans_and_matching_counters() {
    let _serial = serial();
    let dir = std::env::temp_dir().join(format!("ibis_prof_durable_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let data = ibis::core::gen::census_scaled(150, 96);
    let row: Vec<ibis::core::Cell> = (0..data.n_attrs()).map(|a| data.cell(0, a)).collect();

    // Mutations under an enabled recorder: every append is one fsync, and
    // the logged bytes equal the WAL growth past its header.
    Recorder::enabled().install();
    let mut db = DurableDb::create(&dir, data, 50, DbConfig::default()).unwrap();
    db.insert(&row).unwrap();
    db.insert(&row).unwrap();
    db.delete(1).unwrap();
    let logged_bytes = db.wal_bytes() - ibis::storage::wal::WAL_HEADER_LEN;
    drop(db);
    let snap = ibis::obs::snapshot();
    assert_eq!(snap.counters.get("wal.fsyncs").copied(), Some(3));
    assert_eq!(
        snap.counters.get("wal.append_bytes").copied(),
        Some(logged_bytes)
    );

    // A recovery + checkpoint under a fresh recorder generation: the
    // storage.open span's field deltas must be covered by (⊆) the final
    // counters — the same invariant the query spans uphold.
    Recorder::enabled().install();
    let mut db = DurableDb::open(&dir).unwrap();
    assert_eq!(db.replayed_on_open(), 3);
    db.checkpoint().unwrap();
    let snap = ibis::obs::snapshot();
    Recorder::disabled().install();

    let open = snap
        .spans
        .iter()
        .find(|s| s.name == "storage.open")
        .expect("open is a span");
    let replayed_field = open
        .fields
        .iter()
        .find(|(n, _)| n == "replayed_records")
        .expect("span carries its replay delta")
        .1;
    let final_counter = snap
        .counters
        .get("recovery.replayed_records")
        .copied()
        .unwrap_or(0);
    assert_eq!(replayed_field, 3);
    assert!(
        replayed_field <= final_counter,
        "span delta ({replayed_field}) must be ⊆ the final counter ({final_counter})"
    );
    assert!(snap.spans.iter().any(|s| s.name == "storage.checkpoint"));
    let ckpt = snap
        .histograms
        .get("checkpoint.ms")
        .expect("checkpoint duration is observed");
    assert_eq!(ckpt.count, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn db_execution_emits_plan_and_delta_spans() {
    let _serial = serial();
    let data = ibis::core::gen::census_scaled(250, 95);
    let mut db = IncompleteDb::new(data.clone());
    let missing_row = vec![ibis::core::Cell::MISSING; data.n_attrs()];
    db.insert(&missing_row).unwrap();

    Recorder::enabled().install();
    let q = query(&data);
    let expected = db.execute_threads(&q, 2).unwrap();
    let snap = ibis::obs::snapshot();
    Recorder::disabled().install();

    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"db.plan"), "{names:?}");
    assert!(names.contains(&"db.delta"), "{names:?}");
    let delta = snap.spans.iter().find(|s| s.name == "db.delta").unwrap();
    assert_eq!(
        delta.fields,
        vec![
            ("delta_rows".to_string(), 1),
            ("entries_scanned".to_string(), 1),
        ]
    );
    // Sanity: answers unaffected by recording.
    assert_eq!(db.execute_threads(&q, 2).unwrap(), expected);
}
