//! Cross-crate differential tests: every access method in the workspace
//! must return exactly the scan ground truth, on every dataset shape and
//! under both missing-data semantics. This is the repository's strongest
//! correctness guarantee — the indexes are only ever compared against each
//! other through the scan.

use ibis::core::gen::{census_scaled, synthetic_scaled, workload, QuerySpec};
use ibis::core::scan;
use ibis::prelude::*;

/// Runs one query through every implementation and asserts agreement.
fn assert_all_agree(d: &Dataset, q: &RangeQuery, ctx: &str) {
    let truth = scan::execute(d, q);
    let bee_wah = EqualityBitmapIndex::<Wah>::build(d);
    let bee_plain = EqualityBitmapIndex::<BitVec64>::build(d);
    let bee_bbc = EqualityBitmapIndex::<Bbc>::build(d);
    let bre_wah = RangeBitmapIndex::<Wah>::build(d);
    let bie_wah = IntervalBitmapIndex::<Wah>::build(d);
    let dec_wah = DecomposedBitmapIndex::<Wah>::build(d);
    let bre_bbc = RangeBitmapIndex::<Bbc>::build(d);
    let va = VaFile::build(d);
    let vap = VaPlusFile::build(d);
    let mosaic = Mosaic::build(d);
    assert_eq!(bee_wah.execute(q).unwrap(), truth, "BEE/WAH {ctx}");
    assert_eq!(bee_plain.execute(q).unwrap(), truth, "BEE/plain {ctx}");
    assert_eq!(bee_bbc.execute(q).unwrap(), truth, "BEE/BBC {ctx}");
    assert_eq!(bre_wah.execute(q).unwrap(), truth, "BRE/WAH {ctx}");
    assert_eq!(bie_wah.execute(q).unwrap(), truth, "BIE/WAH {ctx}");
    assert_eq!(dec_wah.execute(q).unwrap(), truth, "DEC/WAH {ctx}");
    assert_eq!(bre_bbc.execute(q).unwrap(), truth, "BRE/BBC {ctx}");
    assert_eq!(va.execute(d, q).unwrap(), truth, "VA {ctx}");
    assert_eq!(vap.execute(d, q).unwrap(), truth, "VA+ {ctx}");
    assert_eq!(mosaic.execute(q).unwrap(), truth, "MOSAIC {ctx}");
    assert_eq!(SequentialScan.execute(d, q).unwrap(), truth, "scan {ctx}");
}

#[test]
fn uniform_synthetic_workloads() {
    let d = synthetic_scaled(700, 101);
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 6,
            k: 5,
            global_selectivity: 0.02,
            policy,
            candidate_attrs: vec![],
        };
        for (i, q) in workload(&d, &spec, 202).iter().enumerate() {
            assert_all_agree(&d, q, &format!("{policy} query {i}"));
        }
    }
}

#[test]
fn census_skewed_workloads() {
    let d = census_scaled(900, 103);
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 6,
            k: 4,
            global_selectivity: 0.03,
            policy,
            candidate_attrs: vec![],
        };
        for (i, q) in workload(&d, &spec, 204).iter().enumerate() {
            assert_all_agree(&d, q, &format!("{policy} query {i}"));
        }
    }
}

#[test]
fn tree_baselines_agree_on_low_dimensional_data() {
    // R-tree and bitstring-augmented expand 2^k subqueries; keep d small.
    let full = synthetic_scaled(500, 105);
    let cols: Vec<Column> = (0..5).map(|a| full.column(a * 90 + 3).clone()).collect();
    let d = Dataset::new(cols).unwrap();
    let rtree = RTreeIncomplete::build(&d);
    let bitstring = BitstringAugmented::build(&d);
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 8,
            k: 3,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        for (i, q) in workload(&d, &spec, 206).iter().enumerate() {
            let truth = scan::execute(&d, q);
            assert_eq!(rtree.execute(q).unwrap(), truth, "rtree {policy} {i}");
            assert_eq!(
                bitstring.execute(q).unwrap(),
                truth,
                "bitstring {policy} {i}"
            );
        }
    }
}

#[test]
fn point_queries_across_methods() {
    let d = census_scaled(400, 107);
    for policy in MissingPolicy::ALL {
        for (attr, v) in [(0usize, 1u16), (5, 2), (20, 1), (47, 1)] {
            let c = d.column(attr).cardinality();
            let q = RangeQuery::new(vec![Predicate::point(attr, v.min(c))], policy).unwrap();
            assert_all_agree(&d, &q, &format!("{policy} point a{attr}"));
        }
    }
}

#[test]
fn extreme_ranges_across_methods() {
    let d = census_scaled(300, 109);
    for policy in MissingPolicy::ALL {
        for attr in [0usize, 15, 40] {
            let c = d.column(attr).cardinality();
            // Full domain, prefix, suffix, singleton-at-max.
            for (lo, hi) in [(1, c), (1, 1.max(c / 2)), (c.div_ceil(2).max(1), c), (c, c)] {
                let q = RangeQuery::new(vec![Predicate::range(attr, lo, hi)], policy).unwrap();
                assert_all_agree(&d, &q, &format!("{policy} a{attr} [{lo},{hi}]"));
            }
        }
    }
}

#[test]
fn reordered_rows_preserve_answers_across_methods() {
    use ibis::bitmap::reorder;
    let d = census_scaled(350, 111);
    let order = reorder::cardinality_ascending_order(&d);
    let perm = reorder::lexicographic(&d, &order[..6]);
    let p = d.permute_rows(&perm);
    let bee = EqualityBitmapIndex::<Wah>::build(&p);
    let va = VaFile::build(&p);
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 5,
            k: 3,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        for q in workload(&d, &spec, 212) {
            let truth = scan::execute(&d, &q);
            let got = reorder::map_rows(&bee.execute(&q).unwrap(), &perm);
            assert_eq!(got, truth, "{policy} BEE after reorder");
            let got = reorder::map_rows(&va.execute(&p, &q).unwrap(), &perm);
            assert_eq!(got, truth, "{policy} VA after reorder");
        }
    }
}

#[test]
fn lossy_va_files_stay_exact() {
    let d = census_scaled(600, 113);
    for bits in [1u8, 2, 3] {
        let widths = vec![bits; d.n_attrs()];
        let va = VaFile::with_bits(&d, &widths);
        let vap = VaPlusFile::with_bits(&d, &widths);
        for policy in MissingPolicy::ALL {
            let spec = QuerySpec {
                n_queries: 4,
                k: 3,
                global_selectivity: 0.05,
                policy,
                candidate_attrs: vec![],
            };
            for q in workload(&d, &spec, 214 + bits as u64) {
                let truth = scan::execute(&d, &q);
                assert_eq!(va.execute(&d, &q).unwrap(), truth, "{policy} VA {bits}b");
                assert_eq!(vap.execute(&d, &q).unwrap(), truth, "{policy} VA+ {bits}b");
            }
        }
    }
}

#[test]
fn rejected_encodings_agree_with_their_hardwired_policy() {
    use ibis::bitmap::rejected::{InBandMatchEquality, InBandNotMatchEquality};
    let d = synthetic_scaled(400, 115);
    let im = InBandMatchEquality::<Wah>::try_build(&d).unwrap();
    let inm = InBandNotMatchEquality::<Wah>::build(&d);
    let spec = QuerySpec {
        n_queries: 8,
        k: 4,
        global_selectivity: 0.02,
        policy: MissingPolicy::IsMatch,
        candidate_attrs: vec![],
    };
    for q in workload(&d, &spec, 216) {
        assert_eq!(im.execute_with_cost(&q).unwrap().0, scan::execute(&d, &q));
        let qn = q.with_policy(MissingPolicy::IsNotMatch);
        assert_eq!(
            inm.execute_with_cost(&qn).unwrap().0,
            scan::execute(&d, &qn)
        );
    }
}

#[test]
fn missingness_mechanism_does_not_affect_correctness() {
    // MAR and MNAR datasets (non-ignorable missingness, the paper's target
    // setting) run through the full differential harness.
    use ibis::core::gen::missingness::{impose_mar, impose_mnar};
    let base = synthetic_scaled(400, 117);
    let cols: Vec<Column> = (0..6).map(|a| base.column(a * 70 + 2).clone()).collect();
    let small = Dataset::new(cols).unwrap();
    let mar = impose_mar(&small, 1, 0, 0.05, 0.6, 118);
    let mnar = impose_mnar(&small, 2, 0.7, 119);
    for d in [&mar, &mnar] {
        for policy in MissingPolicy::ALL {
            let spec = QuerySpec {
                n_queries: 5,
                k: 3,
                global_selectivity: 0.05,
                policy,
                candidate_attrs: vec![],
            };
            for (i, q) in workload(d, &spec, 120).iter().enumerate() {
                assert_all_agree(d, q, &format!("{policy} mechanism query {i}"));
            }
        }
    }
}

#[test]
fn interval_split_metamorphic_property() {
    // result([v1, v2]) == result([v1, m]) ∪ result([m+1, v2]) for every
    // split point, on every index — a metamorphic check that interval
    // evaluation composes.
    let d = census_scaled(300, 121);
    let attr = (0..d.n_attrs())
        .find(|&a| d.column(a).cardinality() >= 8)
        .unwrap();
    let c = d.column(attr).cardinality();
    let (v1, v2) = (2u16, c - 1);
    let bee = EqualityBitmapIndex::<Wah>::build(&d);
    let bre = RangeBitmapIndex::<Wah>::build(&d);
    let bie = IntervalBitmapIndex::<Wah>::build(&d);
    for policy in MissingPolicy::ALL {
        let whole = RangeQuery::new(vec![Predicate::range(attr, v1, v2)], policy).unwrap();
        for m in v1..v2 {
            let left = RangeQuery::new(vec![Predicate::range(attr, v1, m)], policy).unwrap();
            let right = RangeQuery::new(vec![Predicate::range(attr, m + 1, v2)], policy).unwrap();
            for (name, run) in [
                (
                    "bee",
                    &(|q: &RangeQuery| bee.execute(q).unwrap()) as &dyn Fn(&RangeQuery) -> RowSet,
                ),
                ("bre", &|q: &RangeQuery| bre.execute(q).unwrap()),
                ("bie", &|q: &RangeQuery| bie.execute(q).unwrap()),
            ] {
                let union = run(&left).union(&run(&right));
                assert_eq!(union, run(&whole), "{name} {policy} split at {m}");
            }
        }
    }
}

#[test]
fn policy_difference_is_exactly_the_missing_rows() {
    // match-results \ not-match-results must be precisely the rows with at
    // least one missing queried attribute that otherwise match.
    let d = census_scaled(400, 123);
    let bre = RangeBitmapIndex::<Wah>::build(&d);
    let spec = QuerySpec {
        n_queries: 10,
        k: 3,
        global_selectivity: 0.05,
        policy: MissingPolicy::IsMatch,
        candidate_attrs: vec![],
    };
    for q in workload(&d, &spec, 124) {
        let loose = bre.execute(&q).unwrap();
        let strict = bre
            .execute(&q.with_policy(MissingPolicy::IsNotMatch))
            .unwrap();
        let extra = loose.difference(&strict);
        for r in extra.iter() {
            let has_missing_queried = q
                .predicates()
                .iter()
                .any(|p| d.cell(r as usize, p.attr).is_missing());
            assert!(
                has_missing_queried,
                "row {r} gained by match semantics without a missing cell"
            );
        }
        for r in strict.iter() {
            let all_present = q
                .predicates()
                .iter()
                .all(|p| !d.cell(r as usize, p.attr).is_missing());
            assert!(all_present, "strict row {r} has a missing queried cell");
        }
    }
}
