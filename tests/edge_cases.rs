//! Edge cases exercised uniformly across every access method: degenerate
//! datasets, all-missing columns, cardinality-1 attributes, and maximal
//! search keys.

use ibis::core::scan;
use ibis::prelude::*;

fn check_everything(d: &Dataset, q: &RangeQuery, ctx: &str) {
    let truth = scan::execute(d, q);
    assert_eq!(
        EqualityBitmapIndex::<Wah>::build(d).execute(q).unwrap(),
        truth,
        "BEE {ctx}"
    );
    assert_eq!(
        RangeBitmapIndex::<Wah>::build(d).execute(q).unwrap(),
        truth,
        "BRE {ctx}"
    );
    assert_eq!(VaFile::build(d).execute(d, q).unwrap(), truth, "VA {ctx}");
    assert_eq!(Mosaic::build(d).execute(q).unwrap(), truth, "MOSAIC {ctx}");
    if d.n_attrs() <= 8 {
        assert_eq!(
            RTreeIncomplete::build(d).execute(q).unwrap(),
            truth,
            "rtree {ctx}"
        );
        assert_eq!(
            BitstringAugmented::build(d).execute(q).unwrap(),
            truth,
            "bitstring {ctx}"
        );
    }
}

#[test]
fn single_row_dataset() {
    for cell in [Cell::present(3), Cell::MISSING] {
        let d = Dataset::from_rows(&[("a", 5)], &[vec![cell]]).unwrap();
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(vec![Predicate::range(0, 2, 4)], policy).unwrap();
            check_everything(&d, &q, &format!("single row {cell:?} {policy}"));
        }
    }
}

#[test]
fn all_rows_missing_in_queried_attribute() {
    let d = Dataset::from_rows(
        &[("a", 5), ("b", 5)],
        &[
            vec![Cell::MISSING, Cell::present(1)],
            vec![Cell::MISSING, Cell::present(3)],
            vec![Cell::MISSING, Cell::present(5)],
        ],
    )
    .unwrap();
    let q = RangeQuery::new(vec![Predicate::range(0, 1, 5)], MissingPolicy::IsMatch).unwrap();
    check_everything(&d, &q, "all missing, match");
    assert_eq!(scan::execute(&d, &q).len(), 3);
    let q = q.with_policy(MissingPolicy::IsNotMatch);
    check_everything(&d, &q, "all missing, not-match");
    assert_eq!(scan::execute(&d, &q).len(), 0);
}

#[test]
fn no_rows_missing_policies_coincide() {
    let d = Dataset::from_rows(
        &[("a", 4)],
        &[
            vec![Cell::present(1)],
            vec![Cell::present(2)],
            vec![Cell::present(4)],
        ],
    )
    .unwrap();
    for lo in 1..=4u16 {
        for hi in lo..=4u16 {
            let qm =
                RangeQuery::new(vec![Predicate::range(0, lo, hi)], MissingPolicy::IsMatch).unwrap();
            let qn = qm.with_policy(MissingPolicy::IsNotMatch);
            assert_eq!(scan::execute(&d, &qm), scan::execute(&d, &qn));
            check_everything(&d, &qm, "complete data");
        }
    }
}

#[test]
fn cardinality_one_attributes() {
    let d = Dataset::from_rows(
        &[("flag", 1), ("other", 3)],
        &[
            vec![Cell::present(1), Cell::present(2)],
            vec![Cell::MISSING, Cell::present(1)],
            vec![Cell::present(1), Cell::MISSING],
        ],
    )
    .unwrap();
    for policy in MissingPolicy::ALL {
        let q = RangeQuery::new(
            vec![Predicate::point(0, 1), Predicate::range(1, 1, 2)],
            policy,
        )
        .unwrap();
        check_everything(&d, &q, &format!("cardinality 1 {policy}"));
    }
}

#[test]
fn search_key_covering_every_attribute() {
    let d = Dataset::from_rows(
        &[("a", 3), ("b", 3), ("c", 3), ("d", 3)],
        &[
            vec![
                Cell::present(1),
                Cell::present(2),
                Cell::present(3),
                Cell::MISSING,
            ],
            vec![
                Cell::present(2),
                Cell::MISSING,
                Cell::present(2),
                Cell::present(2),
            ],
            vec![
                Cell::MISSING,
                Cell::present(1),
                Cell::present(1),
                Cell::present(1),
            ],
            vec![
                Cell::present(3),
                Cell::present(3),
                Cell::MISSING,
                Cell::present(3),
            ],
        ],
    )
    .unwrap();
    for policy in MissingPolicy::ALL {
        let q =
            RangeQuery::new((0..4).map(|a| Predicate::range(a, 1, 2)).collect(), policy).unwrap();
        check_everything(&d, &q, &format!("k = d {policy}"));
    }
}

#[test]
fn empty_search_key_returns_all_rows() {
    let d =
        Dataset::from_rows(&[("a", 2)], &[vec![Cell::MISSING], vec![Cell::present(1)]]).unwrap();
    for policy in MissingPolicy::ALL {
        let q = RangeQuery::new(vec![], policy).unwrap();
        assert_eq!(scan::execute(&d, &q), RowSet::all(2));
        assert_eq!(
            EqualityBitmapIndex::<Wah>::build(&d).execute(&q).unwrap(),
            RowSet::all(2)
        );
        assert_eq!(
            RangeBitmapIndex::<Wah>::build(&d).execute(&q).unwrap(),
            RowSet::all(2)
        );
        assert_eq!(VaFile::build(&d).execute(&d, &q).unwrap(), RowSet::all(2));
        assert_eq!(Mosaic::build(&d).execute(&q).unwrap(), RowSet::all(2));
    }
}

#[test]
fn duplicate_rows_all_returned() {
    let rows: Vec<Vec<Cell>> = std::iter::repeat_n(vec![Cell::present(2)], 50)
        .chain(std::iter::repeat_n(vec![Cell::MISSING], 50))
        .collect();
    let d = Dataset::from_rows(&[("a", 3)], &rows).unwrap();
    let q = RangeQuery::new(vec![Predicate::point(0, 2)], MissingPolicy::IsMatch).unwrap();
    check_everything(&d, &q, "duplicates");
    assert_eq!(scan::execute(&d, &q).len(), 100);
    let q = q.with_policy(MissingPolicy::IsNotMatch);
    assert_eq!(scan::execute(&d, &q).len(), 50);
}

#[test]
fn errors_are_consistent_across_indexes() {
    let d = Dataset::from_rows(&[("a", 3)], &[vec![Cell::present(1)]]).unwrap();
    let too_wide =
        RangeQuery::new(vec![Predicate::range(0, 1, 9)], MissingPolicy::IsMatch).unwrap();
    let bad_attr = RangeQuery::new(vec![Predicate::point(4, 1)], MissingPolicy::IsMatch).unwrap();
    for q in [&too_wide, &bad_attr] {
        assert!(EqualityBitmapIndex::<Wah>::build(&d).execute(q).is_err());
        assert!(RangeBitmapIndex::<Wah>::build(&d).execute(q).is_err());
        assert!(VaFile::build(&d).execute(&d, q).is_err());
        assert!(Mosaic::build(&d).execute(q).is_err());
        assert!(RTreeIncomplete::build(&d).execute(q).is_err());
        assert!(BitstringAugmented::build(&d).execute(q).is_err());
        assert!(SequentialScan.execute(&d, q).is_err());
    }
}
