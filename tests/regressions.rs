//! Tier-1 replay of the oracle regression corpus: every minimized repro in
//! `tests/regressions/` — each one a bug the oracle once found (or an
//! adversarial shape kept as a standing guard) — is parsed and re-run
//! through the full check battery. On a healthy tree every case passes
//! every check; a reappearing bug fails here with the original context.

use ibis::oracle::{check, corpus};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn repro_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/regressions exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_seeded() {
    assert!(
        repro_files().len() >= 5,
        "regression corpus unexpectedly small: {:?}",
        repro_files()
    );
}

#[test]
fn every_repro_parses() {
    for path in repro_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        corpus::parse_repro(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn replay_regression_corpus() {
    for path in repro_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let case = corpus::parse_repro(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let result = check::check_case(&case);
        assert!(
            result.failures.is_empty(),
            "{} regressed: {} of {} checks failed; first: {} — {}",
            path.display(),
            result.failures.len(),
            result.checks,
            result.failures[0].check,
            result.failures[0].detail
        );
    }
}

#[test]
fn repro_serialization_roundtrips_on_the_corpus() {
    // format_repro(parse_repro(x)) must preserve the case exactly, so a
    // repro rewritten by a future oracle run stays byte-equivalent in
    // content (comments aside).
    for path in repro_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let case = corpus::parse_repro(&text).unwrap();
        let failure = check::Failure {
            check: "x".into(),
            detail: "y".into(),
        };
        let rewritten = corpus::format_repro(&case, &failure);
        let back = corpus::parse_repro(&rewritten).unwrap();
        assert_eq!(back.dataset, case.dataset, "{}", path.display());
        assert_eq!(back.queries, case.queries, "{}", path.display());
    }
}
