//! End-to-end durability: the WAL + snapshot + MANIFEST engine under
//! [`ShardedDb`], driven through the facade the way an application would.
//!
//! The deep kill-schedule coverage lives in `ibis_oracle::crash` (run by
//! the `ibis crash` CLI and the CI `storage` job); this suite pins the
//! user-visible contract: mutations survive a crash, checkpoints truncate
//! the log and make reopen replay nothing, backups restore byte-identically,
//! and a freshly recovered database answers exactly like its uncrashed twin
//! under both semantics.

use ibis::core::gen::{census_scaled, workload, QuerySpec};
use ibis::prelude::*;
use ibis::storage::{engine, wal};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ibis_durable_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn queries(d: &Dataset) -> Vec<RangeQuery> {
    let mut qs = Vec::new();
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 4,
            k: 2,
            global_selectivity: 0.1,
            policy,
            candidate_attrs: vec![],
        };
        qs.extend(workload(d, &spec, 701));
    }
    qs
}

fn row_of(d: &Dataset, i: usize) -> Vec<Cell> {
    (0..d.n_attrs()).map(|a| d.cell(i, a)).collect()
}

#[test]
fn mutations_survive_a_crash_and_match_the_uncrashed_twin() {
    let dir = tmp_dir("replay");
    let data = census_scaled(150, 700);
    let schema = data.clone();
    let mut db = DurableDb::create(&dir, data, 48, DbConfig::default()).unwrap();
    db.insert(&row_of(&schema, 3)).unwrap();
    db.insert(&row_of(&schema, 9)).unwrap();
    assert!(db.delete(5).unwrap());
    assert!(
        !db.delete(9_999).unwrap(),
        "a miss is reported, not an error"
    );
    db.compact().unwrap();
    db.insert(&row_of(&schema, 12)).unwrap();
    let twin = db.db().clone();
    drop(db); // no clean shutdown — recovery is the only close protocol

    let recovered = DurableDb::open(&dir).unwrap();
    // All six mutations replay — including the missed delete, which is
    // logged so replay stays deterministic.
    assert_eq!(recovered.replayed_on_open(), 6);
    assert_eq!(recovered.n_rows(), twin.n_rows());
    for (threads, q) in [1usize, 8]
        .iter()
        .flat_map(|t| queries(&schema).into_iter().map(move |q| (*t, q)))
    {
        assert_eq!(
            recovered.execute_with_cost_threads(&q, threads).unwrap(),
            twin.execute_with_cost_threads(&q, threads).unwrap(),
            "rows and work counters must both match at t={threads}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_truncates_the_wal_and_reopen_replays_nothing() {
    let dir = tmp_dir("checkpoint");
    let data = census_scaled(100, 702);
    let schema = data.clone();
    let mut db = DurableDb::create(&dir, data, 40, DbConfig::default()).unwrap();
    for i in 0..6 {
        db.insert(&row_of(&schema, i)).unwrap();
    }
    assert!(db.wal_bytes() > wal::WAL_HEADER_LEN);
    db.checkpoint().unwrap();
    assert_eq!(db.wal_bytes(), wal::WAL_HEADER_LEN);
    assert_eq!(db.generation(), 2);
    let rows_before = db.n_rows();
    drop(db);

    let db = DurableDb::open(&dir).unwrap();
    assert_eq!(
        db.replayed_on_open(),
        0,
        "the checkpoint absorbed every record"
    );
    assert_eq!(db.n_rows(), rows_before);

    // The directory holds exactly one snapshot: the superseded generation
    // was removed.
    let snapshots = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".ibss")
        })
        .count();
    assert_eq!(snapshots, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_recovers_the_durable_prefix() {
    let dir = tmp_dir("torn");
    let data = census_scaled(80, 703);
    let schema = data.clone();
    let mut db = DurableDb::create(&dir, data, 32, DbConfig::default()).unwrap();
    db.insert(&row_of(&schema, 1)).unwrap();
    let durable_boundary = db.wal_bytes();
    db.insert(&row_of(&schema, 2)).unwrap();
    let twin_one_insert = {
        let mut t = ShardedDb::with_config(schema.clone(), 32, DbConfig::default());
        t.insert(&row_of(&schema, 1)).unwrap();
        t
    };
    drop(db);

    // Tear mid-way through the second frame.
    let wal_file = engine::wal_path(&dir);
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_file)
        .unwrap();
    f.set_len(durable_boundary + 3).unwrap();
    drop(f);

    let recovered = DurableDb::open(&dir).unwrap();
    assert_eq!(
        recovered.replayed_on_open(),
        1,
        "only the intact frame replays"
    );
    for q in queries(&schema) {
        assert_eq!(
            recovered.execute_with_cost_threads(&q, 1).unwrap(),
            twin_one_insert.execute_with_cost_threads(&q, 1).unwrap(),
        );
    }
    drop(recovered);
    // Recovery truncated the torn tail on disk.
    let r = DurableDb::validate(&dir).unwrap();
    assert_eq!(r.torn_tail_bytes, 0);
    assert_eq!(r.wal_records, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backup_restore_roundtrip_is_byte_identical_and_query_equivalent() {
    let dir = tmp_dir("bak_src");
    let dir2 = tmp_dir("bak_dst");
    let data = census_scaled(120, 704);
    let schema = data.clone();
    let mut db = DurableDb::create(&dir, data, 50, DbConfig::default()).unwrap();
    db.insert(&row_of(&schema, 7)).unwrap();
    db.delete(2).unwrap();
    let b1 = dir.join("a.ibbk");
    let b2 = dir.join("b.ibbk");
    db.backup(&b1).unwrap();
    let restored = DurableDb::restore(&b1, &dir2).unwrap();
    restored.backup(&b2).unwrap();
    assert_eq!(std::fs::read(&b1).unwrap(), std::fs::read(&b2).unwrap());
    for q in queries(&schema) {
        assert_eq!(
            restored.execute_with_cost_threads(&q, 8).unwrap(),
            db.execute_with_cost_threads(&q, 8).unwrap(),
        );
    }
    // A flipped byte anywhere in the backup is rejected by its checksum.
    let mut image = std::fs::read(&b1).unwrap();
    let mid = image.len() / 2;
    image[mid] ^= 0x01;
    assert!(DurableDb::read_backup(&mut image.as_slice()).is_err());
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn a_short_crash_harness_run_is_clean() {
    let report = ibis::oracle::crash::run(&ibis::oracle::CrashConfig {
        seed: 31,
        rows: 40,
        shard_rows: 16,
        phase1_ops: 4,
        phase2_ops: 6,
        kill_points: 4,
        bit_flips: 3,
        threads: vec![1, 8],
        dir: None,
    })
    .expect("harness scaffolding");
    assert!(report.ok(), "failures: {:#?}", report.failures);
    assert!(report.checks > 0);
}
