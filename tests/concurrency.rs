//! Concurrency conformance suite for snapshot-isolated serving.
//!
//! The contract under test: while one writer streams inserts, deletes, and
//! compactions through a [`ConcurrentDb`], every snapshot any reader
//! acquires equals a **prefix-consistent serial history** — the state
//! produced by applying exactly the first `watermark` mutations of the
//! writer's schedule, nothing more, nothing less, nothing interleaved.
//! Answers must be bit-identical (rows *and* work counters) to a serial
//! twin replay of that prefix, at thread degrees {1, 8}, under both
//! missing-data semantics, and watermarks must be monotone per reader.

use ibis::core::gen::census_scaled;
use ibis::core::parallel::ExecPool;
use ibis::prelude::*;
use std::sync::Arc;

/// The deterministic mutation schedule shared by the writer and the
/// readers' twin replays: mostly inserts, a steady trickle of deletes
/// (some deliberately past the live range), periodic compactions.
fn schedule(schema: &Dataset, n: usize) -> Vec<Mutation> {
    let cards: Vec<u16> = (0..schema.n_attrs())
        .map(|a| schema.column(a).cardinality())
        .collect();
    (0..n)
        .map(|i| match i % 10 {
            3 => Mutation::Delete((i * 7 % (schema.n_rows() + i + 8)) as u32),
            9 if i % 50 == 49 => Mutation::Compact,
            _ => Mutation::Insert(
                cards
                    .iter()
                    .enumerate()
                    .map(|(a, &c)| {
                        if (i + a) % 6 == 0 {
                            Cell::MISSING
                        } else {
                            Cell::present(((i * 3 + a) % c as usize) as u16 + 1)
                        }
                    })
                    .collect(),
            ),
        })
        .collect()
}

#[derive(Clone)]
enum Mutation {
    Insert(Vec<Cell>),
    Delete(u32),
    Compact,
}

impl Mutation {
    fn apply_serving(&self, db: &ConcurrentDb) {
        match self {
            Mutation::Insert(row) => db.insert(row).expect("scheduled row is valid"),
            Mutation::Delete(id) => {
                db.delete(*id).expect("delete cannot fail in-memory");
            }
            Mutation::Compact => {
                db.compact().expect("compact cannot fail in-memory");
            }
        }
    }

    fn apply_twin(&self, db: &mut ShardedDb) {
        match self {
            Mutation::Insert(row) => db.insert(row).expect("scheduled row is valid"),
            Mutation::Delete(id) => {
                db.delete(*id);
            }
            Mutation::Compact => {
                db.compact();
            }
        }
    }
}

/// The probe battery: one low-range and one conjunctive query per
/// semantics, kept valid for any census-scaled schema.
fn probes(schema: &Dataset) -> Vec<RangeQuery> {
    let c0 = schema.column(0).cardinality();
    let c1 = schema.column(1).cardinality();
    MissingPolicy::ALL
        .iter()
        .flat_map(|&policy| {
            [
                RangeQuery::new(vec![Predicate::range(0, 1, c0.min(3))], policy).unwrap(),
                RangeQuery::new(
                    vec![
                        Predicate::range(0, 1, c0),
                        Predicate::range(1, (c1 / 2).max(1), c1),
                    ],
                    policy,
                )
                .unwrap(),
            ]
        })
        .collect()
}

/// Readers race the writer; each checks every acquired snapshot against a
/// serial twin replay of its watermark prefix at the given thread degrees.
fn run_conformance(readers: usize, degrees: &[usize], mutations: usize) {
    let schema = census_scaled(80, 17);
    let sched = schedule(&schema, mutations);
    let queries = probes(&schema);
    let db = Arc::new(ConcurrentDb::from_sharded(ShardedDb::new(
        schema.clone(),
        32,
    )));
    let twin_base = ShardedDb::new(schema, 32);
    let target = sched.len() as u64;

    std::thread::scope(|s| {
        let writer = {
            let db = Arc::clone(&db);
            let sched = &sched;
            s.spawn(move || {
                for m in sched {
                    m.apply_serving(&db);
                }
            })
        };
        // ExecPool::broadcast = N concurrent readers, one per worker.
        ExecPool::new(readers).broadcast(|reader| {
            let mut twin = twin_base.clone();
            let mut applied = 0u64;
            let mut last_w = 0u64;
            loop {
                let snap = db.snapshot();
                let w = snap.watermark();
                assert!(
                    w >= last_w,
                    "reader {reader}: watermark regressed {last_w} → {w}"
                );
                last_w = w;
                // Prefix consistency: the snapshot must equal the serial
                // history of exactly the first `w` scheduled mutations.
                while applied < w {
                    sched[applied as usize].apply_twin(&mut twin);
                    applied += 1;
                }
                assert_eq!(snap.n_rows(), twin.n_rows(), "reader {reader} @ w={w}");
                for (qi, q) in queries.iter().enumerate() {
                    for &t in degrees {
                        let got = snap
                            .execute_with_cost_threads(q, t)
                            .expect("probe stays valid");
                        let want = twin
                            .execute_with_cost_threads(q, t)
                            .expect("twin agrees probe is valid");
                        assert_eq!(
                            got.0, want.0,
                            "reader {reader} rows diverge @ w={w} q{qi} t{t}"
                        );
                        assert_eq!(
                            got.1, want.1,
                            "reader {reader} counters diverge @ w={w} q{qi} t{t}"
                        );
                    }
                }
                if w >= target {
                    break;
                }
            }
        });
        writer.join().expect("writer panicked");
    });

    // End state: the published snapshot is the full serial history.
    let mut twin = twin_base;
    for m in &sched {
        m.apply_twin(&mut twin);
    }
    let final_snap = db.snapshot();
    assert_eq!(final_snap.watermark(), target);
    assert_eq!(final_snap.n_rows(), twin.n_rows());
}

#[test]
fn one_reader_sees_a_prefix_consistent_history() {
    run_conformance(1, &[1, 8], 400);
}

#[test]
fn eight_readers_see_prefix_consistent_histories() {
    run_conformance(8, &[1, 8], 400);
}

#[test]
fn held_snapshots_survive_compaction_and_checkpoint() {
    // A reader holding a snapshot across compactions, checkpoints, and a
    // burst of writes must see its frozen state forever.
    let dir = std::env::temp_dir().join(format!("ibis_conc_suite_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let schema = census_scaled(60, 23);
    let sched = schedule(&schema, 150);
    let queries = probes(&schema);
    let db = ConcurrentDb::create_durable(&dir, schema.clone(), 25, DbConfig::default()).unwrap();

    let held = db.snapshot();
    let held_answers: Vec<_> = queries.iter().map(|q| held.execute(q).unwrap()).collect();
    for (i, m) in sched.iter().enumerate() {
        match m {
            Mutation::Insert(row) => db.insert(row).unwrap(),
            Mutation::Delete(id) => {
                db.delete(*id).unwrap();
            }
            Mutation::Compact => {
                db.compact().unwrap();
            }
        }
        if i % 40 == 39 {
            db.checkpoint().unwrap();
        }
    }
    assert_eq!(held.watermark(), 0, "held snapshot never advances");
    for (q, want) in queries.iter().zip(&held_answers) {
        assert_eq!(&held.execute(q).unwrap(), want, "held snapshot mutated");
    }
    assert_eq!(db.snapshot().watermark(), sched.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watermark_names_the_exact_prefix_even_between_snapshots() {
    // Two snapshots taken around a single mutation differ by exactly that
    // mutation's effect — there is no state in between.
    let schema = census_scaled(50, 29);
    let db = ConcurrentDb::from_sharded(ShardedDb::new(schema.clone(), 20));
    let row: Vec<Cell> = (0..schema.n_attrs()).map(|_| Cell::present(1)).collect();
    let a = db.snapshot();
    db.insert(&row).unwrap();
    let b = db.snapshot();
    assert_eq!(b.watermark() - a.watermark(), 1);
    assert_eq!(b.n_rows() - a.n_rows(), 1);
}
