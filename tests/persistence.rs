//! End-to-end persistence: every index round-trips through its on-disk
//! format and answers queries identically afterwards. The paper's index-size
//! metric is "the size of the requisite index files on disk" — these tests
//! also pin the file sizes to the in-memory accounting.

use ibis::core::gen::{census_scaled, workload, QuerySpec};
use ibis::core::scan;
use ibis::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ibis_persist_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn queries(d: &Dataset) -> Vec<RangeQuery> {
    let mut qs = Vec::new();
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 5,
            k: 3,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        qs.extend(workload(d, &spec, 301));
    }
    qs
}

#[test]
fn bitmap_indexes_roundtrip_through_disk() {
    let d = census_scaled(500, 300);
    let dir = tmp_dir("bitmap");
    let qs = queries(&d);

    let bee = EqualityBitmapIndex::<Wah>::build(&d);
    bee.save(dir.join("bee.idx")).unwrap();
    let bee2 = EqualityBitmapIndex::<Wah>::load(dir.join("bee.idx")).unwrap();
    assert_eq!(bee2.n_rows(), d.n_rows());
    assert_eq!(bee2.size_bytes(), bee.size_bytes());

    let bre = RangeBitmapIndex::<Wah>::build(&d);
    bre.save(dir.join("bre.idx")).unwrap();
    let bre2 = RangeBitmapIndex::<Wah>::load(dir.join("bre.idx")).unwrap();

    let bie = IntervalBitmapIndex::<Bbc>::build(&d);
    bie.save(dir.join("bie.idx")).unwrap();
    let bie2 = IntervalBitmapIndex::<Bbc>::load(dir.join("bie.idx")).unwrap();

    for q in &qs {
        let truth = scan::execute(&d, q);
        assert_eq!(bee2.execute(q).unwrap(), truth);
        assert_eq!(bre2.execute(q).unwrap(), truth);
        assert_eq!(bie2.execute(q).unwrap(), truth);
    }

    // File size ≈ bitmap bytes + bounded metadata (16 B header per bitmap,
    // a few words per attribute, one file header).
    let file_len = std::fs::metadata(dir.join("bee.idx")).unwrap().len() as usize;
    assert!(file_len >= bee.size_bytes());
    let metadata_bound = 16 * bee.n_bitmaps() + 32 * d.n_attrs() + 1024;
    assert!(
        file_len <= bee.size_bytes() + metadata_bound,
        "file {file_len} vs bitmaps {} + bound {metadata_bound}",
        bee.size_bytes()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn vafiles_roundtrip_through_disk() {
    let d = census_scaled(400, 302);
    let dir = tmp_dir("vafile");
    let qs = queries(&d);

    let va = VaFile::build(&d);
    va.save(dir.join("va.idx")).unwrap();
    let va2 = VaFile::load(dir.join("va.idx")).unwrap();
    assert_eq!(va2.row_bits(), va.row_bits());

    let lossy = VaFile::with_bits(&d, &vec![2u8; d.n_attrs()]);
    lossy.save(dir.join("lossy.idx")).unwrap();
    let lossy2 = VaFile::load(dir.join("lossy.idx")).unwrap();

    let vap = VaPlusFile::build(&d);
    vap.save(dir.join("vap.idx")).unwrap();
    let vap2 = VaPlusFile::load(dir.join("vap.idx")).unwrap();

    for q in &qs {
        let truth = scan::execute(&d, q);
        assert_eq!(va2.execute(&d, q).unwrap(), truth);
        assert_eq!(lossy2.execute(&d, q).unwrap(), truth);
        assert_eq!(vap2.execute(&d, q).unwrap(), truth);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_and_index_pipeline() {
    // Save dataset + index, reload both, query — the full cold-start path.
    let d = census_scaled(300, 304);
    let dir = tmp_dir("pipeline");
    d.save(dir.join("data.ibds")).unwrap();
    RangeBitmapIndex::<Wah>::build(&d)
        .save(dir.join("bre.idx"))
        .unwrap();

    let d2 = Dataset::load(dir.join("data.ibds")).unwrap();
    let bre = RangeBitmapIndex::<Wah>::load(dir.join("bre.idx")).unwrap();
    assert_eq!(d2, d);
    for q in queries(&d2) {
        assert_eq!(bre.execute(&q).unwrap(), scan::execute(&d2, &q));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backend_mismatch_rejected() {
    let d = census_scaled(100, 306);
    let dir = tmp_dir("mismatch");
    EqualityBitmapIndex::<Wah>::build(&d)
        .save(dir.join("wah.idx"))
        .unwrap();
    // Loading a WAH-backed file as BBC must fail loudly, not misparse.
    assert!(EqualityBitmapIndex::<Bbc>::load(dir.join("wah.idx")).is_err());
    // And a BRE file is not a BEE file.
    RangeBitmapIndex::<Wah>::build(&d)
        .save(dir.join("bre.idx"))
        .unwrap();
    assert!(EqualityBitmapIndex::<Wah>::load(dir.join("bre.idx")).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_index_files_rejected() {
    let d = census_scaled(100, 308);
    let dir = tmp_dir("corrupt");
    let path = dir.join("bee.idx");
    EqualityBitmapIndex::<Wah>::build(&d).save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Truncations at several depths.
    for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            EqualityBitmapIndex::<Wah>::load(&path).is_err(),
            "cut at {cut}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn decomposed_index_roundtrips_through_disk() {
    let d = census_scaled(400, 310);
    let dir = tmp_dir("decomposed");
    let qs = queries(&d);
    for base in [2u16, 7] {
        let idx = DecomposedBitmapIndex::<Wah>::with_base(&d, base);
        let path = dir.join(format!("dec{base}.idx"));
        idx.save(&path).unwrap();
        let back = DecomposedBitmapIndex::<Wah>::load(&path).unwrap();
        assert_eq!(back.n_rows(), idx.n_rows());
        assert_eq!(back.size_bytes(), idx.size_bytes());
        for q in &qs {
            assert_eq!(
                back.execute(q).unwrap(),
                scan::execute(&d, q),
                "base {base}"
            );
        }
        // Truncation rejected.
        let bytes = std::fs::read(&path).unwrap();
        assert!(DecomposedBitmapIndex::<Wah>::read_from(&mut &bytes[..bytes.len() / 2]).is_err());
        // Backend mismatch rejected.
        assert!(DecomposedBitmapIndex::<Bbc>::load(&path).is_err());
    }
    std::fs::remove_dir_all(&dir).ok();
}
