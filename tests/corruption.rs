//! Failure-injection tests on the persistence layer: single-byte
//! mutations and truncations of every on-disk format must never panic —
//! each read either fails with a clean `io::Error` or (rarely, when the
//! mutation is benign) yields a structurally valid object.

use ibis::core::gen::census_scaled;
use ibis::prelude::*;
use ibis::storage::Manifest;
use proptest::prelude::*;
use std::sync::LazyLock;

// Each helper's build (48-attr census dataset plus an index over it — the
// interval index alone is ~C/2 window bitmaps per attribute) is far more
// expensive than the read it feeds, and the proptest bodies run 128 times
// per test; build each byte image once per process and hand out clones.

fn dataset_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 501);
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        buf
    });
    BYTES.clone()
}

fn bee_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 502);
        let mut buf = Vec::new();
        EqualityBitmapIndex::<Wah>::build(&d)
            .write_to(&mut buf)
            .unwrap();
        buf
    });
    BYTES.clone()
}

fn bre_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 503);
        let mut buf = Vec::new();
        RangeBitmapIndex::<Bbc>::build(&d)
            .write_to(&mut buf)
            .unwrap();
        buf
    });
    BYTES.clone()
}

fn va_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 504);
        let mut buf = Vec::new();
        VaFile::build(&d).write_to(&mut buf).unwrap();
        buf
    });
    BYTES.clone()
}

fn bie_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 505);
        let mut buf = Vec::new();
        IntervalBitmapIndex::<Wah>::build(&d)
            .write_to(&mut buf)
            .unwrap();
        buf
    });
    BYTES.clone()
}

fn dec_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 506);
        let mut buf = Vec::new();
        DecomposedBitmapIndex::<Wah>::build(&d)
            .write_to(&mut buf)
            .unwrap();
        buf
    });
    BYTES.clone()
}

fn adaptive_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 509);
        let mut buf = Vec::new();
        AdaptiveBitmapIndex::build(&d).write_to(&mut buf).unwrap();
        buf
    });
    BYTES.clone()
}

/// Byte images of every durable-engine format, in order: snapshot, WAL,
/// MANIFEST, backup.
type StorageImages = (Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>);

/// Byte images of every durable-engine format — snapshot, WAL, MANIFEST,
/// backup — captured from one real data directory with deltas, tombstones,
/// and logged mutations.
fn storage_images() -> StorageImages {
    static IMAGES: LazyLock<StorageImages> = LazyLock::new(|| {
        let dir = std::env::temp_dir().join(format!("ibis_corrupt_store_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let d = census_scaled(60, 507);
        let row: Vec<Cell> = (0..d.n_attrs()).map(|a| d.cell(0, a)).collect();
        let mut db = DurableDb::create(&dir, d, 24, DbConfig::default()).unwrap();
        db.insert(&row).unwrap();
        db.delete(3).unwrap();
        db.insert(&row).unwrap();
        let backup_path = dir.join("b.ibbk");
        db.backup(&backup_path).unwrap();
        let mut snapshot = Vec::new();
        db.db().write_snapshot(&mut snapshot).unwrap();
        let wal = std::fs::read(ibis::storage::engine::wal_path(&dir)).unwrap();
        let manifest = std::fs::read(dir.join(ibis::storage::manifest::MANIFEST_FILE)).unwrap();
        let backup = std::fs::read(&backup_path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (snapshot, wal, manifest, backup)
    });
    IMAGES.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutated_dataset_never_panics(pos in 0usize..4096, byte in any::<u8>()) {
        let mut buf = dataset_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = Dataset::read_from(&mut buf.as_slice()); // must not panic
    }

    #[test]
    fn truncated_dataset_never_panics(cut in 0usize..4096) {
        let buf = dataset_bytes();
        let cut = cut % buf.len();
        let _ = Dataset::read_from(&mut &buf[..cut]);
    }

    #[test]
    fn mutated_bee_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = bee_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = EqualityBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_bre_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = bre_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = RangeBitmapIndex::<Bbc>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_va_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = va_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = VaFile::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_bie_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = bie_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = IntervalBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_decomposed_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = dec_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = DecomposedBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_adaptive_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = adaptive_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = AdaptiveBitmapIndex::read_from(&mut buf.as_slice());
    }

    #[test]
    fn header_length_fields_never_cause_huge_preallocation(word in any::<u64>()) {
        // Overwrite each reader's length-bearing header fields (row count,
        // attr count, and the first per-attr count that drives the
        // `Vec::with_capacity` at the top of the payload loop) with an
        // arbitrary u64 — reads must fail cleanly without first reserving
        // the claimed amount. Allocation-failure aborts would show up here
        // as crashes under the default allocator once the claimed length
        // exceeded memory; the capped readers never get that far.
        let le = word.to_le_bytes();
        for (make, sniff_len) in [
            (dataset_bytes as fn() -> Vec<u8>, 6usize),
            (bee_bytes, 6),
            (bre_bytes, 6),
            (bie_bytes, 6),
            (dec_bytes, 6),
            (va_bytes, 6),
            (adaptive_bytes, 6),
        ] {
            let base = make();
            // Length fields start right after magic(4)+version(2); also hit
            // two later offsets that land inside per-attr length prefixes.
            for off in [sniff_len, sniff_len + 8, sniff_len + 24] {
                if off + 8 > base.len() {
                    continue;
                }
                let mut buf = base.clone();
                buf[off..off + 8].copy_from_slice(&le);
                let _ = Dataset::read_from(&mut buf.as_slice());
                let _ = EqualityBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
                let _ = RangeBitmapIndex::<Bbc>::read_from(&mut buf.as_slice());
                let _ = IntervalBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
                let _ = DecomposedBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
                let _ = VaFile::read_from(&mut buf.as_slice());
                let _ = AdaptiveBitmapIndex::read_from(&mut buf.as_slice());
            }
        }
    }

    #[test]
    fn mutated_snapshot_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let (mut buf, _, _, _) = storage_images();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = ShardedDb::read_snapshot(&mut buf.as_slice()); // must not panic
    }

    #[test]
    fn truncated_snapshot_always_errors(cut_frac in 0.0f64..0.999) {
        // The snapshot is CRC'd and length-prefixed throughout: any strict
        // truncation must be rejected, never mis-parsed.
        let (buf, _, _, _) = storage_images();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(ShardedDb::read_snapshot(&mut &buf[..cut]).is_err());
    }

    #[test]
    fn mutated_wal_never_panics_and_keeps_a_wellformed_prefix(
        pos in 0usize..8192, byte in any::<u8>()
    ) {
        let (_, mut buf, _, _) = storage_images();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let scan = ibis::storage::wal::scan_bytes(&buf); // total: never errors, never panics
        prop_assert!(scan.valid_len as usize <= buf.len());
        // Sequence numbers of whatever survives stay consecutive.
        for w in scan.records.windows(2) {
            prop_assert_eq!(w[1].0, w[0].0 + 1);
        }
    }

    #[test]
    fn wal_lying_length_fields_never_allocate(word in any::<u32>()) {
        // Overwrite the first frame's length prefix with an arbitrary u32:
        // the scan must tear there (or parse a benign value) without ever
        // reserving the claimed amount.
        let (_, mut buf, _, _) = storage_images();
        let off = ibis::storage::wal::WAL_HEADER_LEN as usize;
        buf[off..off + 4].copy_from_slice(&word.to_le_bytes());
        let scan = ibis::storage::wal::scan_bytes(&buf);
        prop_assert!(scan.valid_len as usize <= buf.len());
    }

    #[test]
    fn mutated_manifest_never_panics(pos in 0usize..256, byte in any::<u8>()) {
        let (_, _, mut buf, _) = storage_images();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = Manifest::read_from(&mut buf.as_slice());
    }

    #[test]
    fn truncated_manifest_always_errors(cut_frac in 0.0f64..0.999) {
        let (_, _, buf, _) = storage_images();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(Manifest::read_from(&mut &buf[..cut]).is_err());
    }

    #[test]
    fn mutated_backup_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let (_, _, _, mut buf) = storage_images();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = DurableDb::read_backup(&mut buf.as_slice());
    }

    #[test]
    fn truncated_backup_always_errors(cut_frac in 0.0f64..0.999) {
        let (_, _, _, buf) = storage_images();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(DurableDb::read_backup(&mut &buf[..cut]).is_err());
    }

    #[test]
    fn storage_length_fields_never_cause_huge_preallocation(word in any::<u64>()) {
        // Same CPU/memory-DoS probe as the index formats: stamp an
        // arbitrary u64 over the length-bearing fields right after each
        // header (and two later offsets that land inside per-shard counts)
        // — every reader must fail cleanly without reserving the claim.
        let le = word.to_le_bytes();
        let (snapshot, _, manifest, backup) = storage_images();
        for base in [&snapshot, &manifest, &backup] {
            for off in [6usize, 14, 30] {
                if off + 8 > base.len() {
                    continue;
                }
                let mut buf = base.clone();
                buf[off..off + 8].copy_from_slice(&le);
                let _ = ShardedDb::read_snapshot(&mut buf.as_slice());
                let _ = Manifest::read_from(&mut buf.as_slice());
                let _ = DurableDb::read_backup(&mut buf.as_slice());
            }
        }
    }

    #[test]
    fn truncated_indexes_always_error(cut_frac in 0.0f64..0.999) {
        // Unlike mutation (which can be benign), any strict truncation must
        // be rejected: the formats are length-prefixed throughout.
        let buf = bee_bytes();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(EqualityBitmapIndex::<Wah>::read_from(&mut &buf[..cut]).is_err());
        let buf = va_bytes();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(VaFile::read_from(&mut &buf[..cut]).is_err());
        let buf = adaptive_bytes();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(AdaptiveBitmapIndex::read_from(&mut &buf[..cut]).is_err());
    }
}

#[test]
fn adaptive_lying_container_counts_and_kinds_fail_cleanly() {
    // The adaptive container format carries a kind byte and a count per
    // 2^16-row chunk. Stamp every kind byte with each invalid value and
    // every count with huge/hostile values: reads must reject with a clean
    // error (or, for a benign coincidence, a structurally valid index) —
    // never panic, never reserve the claimed amount. The container payload
    // starts after the IBAD header, backend name, row/attr counts, and the
    // per-attr preamble, so rather than hand-computing offsets we sweep all
    // plausible positions.
    let base = adaptive_bytes();
    // Kind bytes are 0/1/2 today; 3..=255 must all be rejected wherever a
    // kind byte actually lives. Sweeping every offset also hits counts and
    // payload bytes, which must be equally safe.
    for off in (0..base.len()).step_by(97) {
        for stamp in [3u8, 0x7F, 0xFF] {
            let mut buf = base.clone();
            buf[off] = stamp;
            let _ = AdaptiveBitmapIndex::read_from(&mut buf.as_slice());
        }
    }
    // Hostile 32-bit counts stamped across the image (aligned and not).
    for off in (0..base.len().saturating_sub(4)).step_by(61) {
        for n in [u32::MAX, 1 << 30, 65_537] {
            let mut buf = base.clone();
            buf[off..off + 4].copy_from_slice(&n.to_le_bytes());
            let _ = AdaptiveBitmapIndex::read_from(&mut buf.as_slice());
        }
    }
}

#[test]
fn lying_length_fields_behind_a_valid_checksum_fail_cleanly() {
    // The proptest mutations above almost always die at the CRC gate. This
    // battery *fixes up* the checksum after the lie, so the corrupt counts
    // reach the body parser itself — in particular the per-delta-row
    // `Vec::with_capacity(width)` in `ShardedDb::read_snapshot`, which must
    // stay capped (db.rs) exactly like the WAL reader (wal.rs).
    use ibis::storage::crc::crc32;
    // Single shard, no deltas, no tombstones: the body tail is exactly
    // [n_delta u64][tombstone count u64] = 16 known zero bytes.
    let db = ShardedDb::new(census_scaled(60, 508), 100);
    let mut image = Vec::new();
    db.write_snapshot(&mut image).unwrap();
    // Image layout: magic+version (6) | crc u32 (4) | body len u64 (8) | body.
    let body_len = u64::from_le_bytes(image[10..18].try_into().unwrap()) as usize;
    assert_eq!(image.len(), 18 + body_len);

    // Re-seals the image with `n` stamped over 8 body bytes at `off` and
    // the checksum recomputed so the lie survives CRC verification.
    let reseal = |off: usize, n: u64| {
        let mut body = image[18..].to_vec();
        body[off..off + 8].copy_from_slice(&n.to_le_bytes());
        let mut out = image[..6].to_vec();
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&body);
        out
    };

    // A lying delta count drives the capacity-per-row loop: it must hit a
    // clean EOF, never reserve count × width cells.
    let lying = reseal(body_len - 16, u64::MAX);
    assert!(ShardedDb::read_snapshot(&mut lying.as_slice()).is_err());
    // Lying tombstone count likewise.
    let lying = reseal(body_len - 8, u64::MAX);
    assert!(ShardedDb::read_snapshot(&mut lying.as_slice()).is_err());

    // Body layout starts config u8 (0) | shard_rows u64 (1) | n_shards u64
    // (9) | first dataset image (17): stamp those headers, the dataset's
    // own row/attr counts (6 and 14 bytes past its header), and a coarse
    // sweep across the rest of the body. Every read must either error
    // cleanly or yield a structurally valid database — never panic, never
    // reserve the claimed amount.
    let targeted = [1usize, 9, 17 + 6, 17 + 14];
    let sweep = (0..body_len.saturating_sub(8)).step_by(131);
    for off in targeted.into_iter().chain(sweep) {
        for n in [u64::MAX, 1 << 40, (1 << 32) + 7] {
            let img = reseal(off, n);
            let _ = ShardedDb::read_snapshot(&mut img.as_slice());
        }
    }
}

#[test]
fn loaded_after_benign_roundtrip_still_answers_correctly() {
    // Sanity anchor for the fuzz suite: the unmutated bytes load and agree
    // with the source index.
    let d = census_scaled(60, 502);
    let idx = EqualityBitmapIndex::<Wah>::build(&d);
    let back = EqualityBitmapIndex::<Wah>::read_from(&mut bee_bytes().as_slice()).unwrap();
    let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
    assert_eq!(back.execute(&q).unwrap(), idx.execute(&q).unwrap());
}
