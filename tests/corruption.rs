//! Failure-injection tests on the persistence layer: single-byte
//! mutations and truncations of every on-disk format must never panic —
//! each read either fails with a clean `io::Error` or (rarely, when the
//! mutation is benign) yields a structurally valid object.

use ibis::core::gen::census_scaled;
use ibis::prelude::*;
use proptest::prelude::*;

fn dataset_bytes() -> Vec<u8> {
    let d = census_scaled(60, 501);
    let mut buf = Vec::new();
    d.write_to(&mut buf).unwrap();
    buf
}

fn bee_bytes() -> Vec<u8> {
    let d = census_scaled(60, 502);
    let mut buf = Vec::new();
    EqualityBitmapIndex::<Wah>::build(&d)
        .write_to(&mut buf)
        .unwrap();
    buf
}

fn bre_bytes() -> Vec<u8> {
    let d = census_scaled(60, 503);
    let mut buf = Vec::new();
    RangeBitmapIndex::<Bbc>::build(&d)
        .write_to(&mut buf)
        .unwrap();
    buf
}

fn va_bytes() -> Vec<u8> {
    let d = census_scaled(60, 504);
    let mut buf = Vec::new();
    VaFile::build(&d).write_to(&mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutated_dataset_never_panics(pos in 0usize..4096, byte in any::<u8>()) {
        let mut buf = dataset_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = Dataset::read_from(&mut buf.as_slice()); // must not panic
    }

    #[test]
    fn truncated_dataset_never_panics(cut in 0usize..4096) {
        let buf = dataset_bytes();
        let cut = cut % buf.len();
        let _ = Dataset::read_from(&mut &buf[..cut]);
    }

    #[test]
    fn mutated_bee_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = bee_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = EqualityBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_bre_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = bre_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = RangeBitmapIndex::<Bbc>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_va_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = va_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = VaFile::read_from(&mut buf.as_slice());
    }

    #[test]
    fn truncated_indexes_always_error(cut_frac in 0.0f64..0.999) {
        // Unlike mutation (which can be benign), any strict truncation must
        // be rejected: the formats are length-prefixed throughout.
        let buf = bee_bytes();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(EqualityBitmapIndex::<Wah>::read_from(&mut &buf[..cut]).is_err());
        let buf = va_bytes();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(VaFile::read_from(&mut &buf[..cut]).is_err());
    }
}

#[test]
fn loaded_after_benign_roundtrip_still_answers_correctly() {
    // Sanity anchor for the fuzz suite: the unmutated bytes load and agree
    // with the source index.
    let d = census_scaled(60, 502);
    let idx = EqualityBitmapIndex::<Wah>::build(&d);
    let back = EqualityBitmapIndex::<Wah>::read_from(&mut bee_bytes().as_slice()).unwrap();
    let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
    assert_eq!(back.execute(&q).unwrap(), idx.execute(&q).unwrap());
}
