//! Failure-injection tests on the persistence layer: single-byte
//! mutations and truncations of every on-disk format must never panic —
//! each read either fails with a clean `io::Error` or (rarely, when the
//! mutation is benign) yields a structurally valid object.

use ibis::core::gen::census_scaled;
use ibis::prelude::*;
use proptest::prelude::*;
use std::sync::LazyLock;

// Each helper's build (48-attr census dataset plus an index over it — the
// interval index alone is ~C/2 window bitmaps per attribute) is far more
// expensive than the read it feeds, and the proptest bodies run 128 times
// per test; build each byte image once per process and hand out clones.

fn dataset_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 501);
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        buf
    });
    BYTES.clone()
}

fn bee_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 502);
        let mut buf = Vec::new();
        EqualityBitmapIndex::<Wah>::build(&d)
            .write_to(&mut buf)
            .unwrap();
        buf
    });
    BYTES.clone()
}

fn bre_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 503);
        let mut buf = Vec::new();
        RangeBitmapIndex::<Bbc>::build(&d)
            .write_to(&mut buf)
            .unwrap();
        buf
    });
    BYTES.clone()
}

fn va_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 504);
        let mut buf = Vec::new();
        VaFile::build(&d).write_to(&mut buf).unwrap();
        buf
    });
    BYTES.clone()
}

fn bie_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 505);
        let mut buf = Vec::new();
        IntervalBitmapIndex::<Wah>::build(&d)
            .write_to(&mut buf)
            .unwrap();
        buf
    });
    BYTES.clone()
}

fn dec_bytes() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let d = census_scaled(60, 506);
        let mut buf = Vec::new();
        DecomposedBitmapIndex::<Wah>::build(&d)
            .write_to(&mut buf)
            .unwrap();
        buf
    });
    BYTES.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutated_dataset_never_panics(pos in 0usize..4096, byte in any::<u8>()) {
        let mut buf = dataset_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = Dataset::read_from(&mut buf.as_slice()); // must not panic
    }

    #[test]
    fn truncated_dataset_never_panics(cut in 0usize..4096) {
        let buf = dataset_bytes();
        let cut = cut % buf.len();
        let _ = Dataset::read_from(&mut &buf[..cut]);
    }

    #[test]
    fn mutated_bee_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = bee_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = EqualityBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_bre_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = bre_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = RangeBitmapIndex::<Bbc>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_va_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = va_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = VaFile::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_bie_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = bie_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = IntervalBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn mutated_decomposed_never_panics(pos in 0usize..8192, byte in any::<u8>()) {
        let mut buf = dec_bytes();
        let i = pos % buf.len();
        buf[i] ^= byte;
        let _ = DecomposedBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
    }

    #[test]
    fn header_length_fields_never_cause_huge_preallocation(word in any::<u64>()) {
        // Overwrite each reader's length-bearing header fields (row count,
        // attr count, and the first per-attr count that drives the
        // `Vec::with_capacity` at the top of the payload loop) with an
        // arbitrary u64 — reads must fail cleanly without first reserving
        // the claimed amount. Allocation-failure aborts would show up here
        // as crashes under the default allocator once the claimed length
        // exceeded memory; the capped readers never get that far.
        let le = word.to_le_bytes();
        for (make, sniff_len) in [
            (dataset_bytes as fn() -> Vec<u8>, 6usize),
            (bee_bytes, 6),
            (bre_bytes, 6),
            (bie_bytes, 6),
            (dec_bytes, 6),
            (va_bytes, 6),
        ] {
            let base = make();
            // Length fields start right after magic(4)+version(2); also hit
            // two later offsets that land inside per-attr length prefixes.
            for off in [sniff_len, sniff_len + 8, sniff_len + 24] {
                if off + 8 > base.len() {
                    continue;
                }
                let mut buf = base.clone();
                buf[off..off + 8].copy_from_slice(&le);
                let _ = Dataset::read_from(&mut buf.as_slice());
                let _ = EqualityBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
                let _ = RangeBitmapIndex::<Bbc>::read_from(&mut buf.as_slice());
                let _ = IntervalBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
                let _ = DecomposedBitmapIndex::<Wah>::read_from(&mut buf.as_slice());
                let _ = VaFile::read_from(&mut buf.as_slice());
            }
        }
    }

    #[test]
    fn truncated_indexes_always_error(cut_frac in 0.0f64..0.999) {
        // Unlike mutation (which can be benign), any strict truncation must
        // be rejected: the formats are length-prefixed throughout.
        let buf = bee_bytes();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(EqualityBitmapIndex::<Wah>::read_from(&mut &buf[..cut]).is_err());
        let buf = va_bytes();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        prop_assert!(VaFile::read_from(&mut &buf[..cut]).is_err());
    }
}

#[test]
fn loaded_after_benign_roundtrip_still_answers_correctly() {
    // Sanity anchor for the fuzz suite: the unmutated bytes load and agree
    // with the source index.
    let d = census_scaled(60, 502);
    let idx = EqualityBitmapIndex::<Wah>::build(&d);
    let back = EqualityBitmapIndex::<Wah>::read_from(&mut bee_bytes().as_slice()).unwrap();
    let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
    assert_eq!(back.execute(&q).unwrap(), idx.execute(&q).unwrap());
}
