//! Index-level appends: growing an index row by row must be
//! indistinguishable from rebuilding it over the extended dataset.

use ibis::core::gen::{census_scaled, workload, QuerySpec};
use ibis::core::scan;
use ibis::prelude::*;

/// Base dataset plus the rows to stream in afterwards.
fn split() -> (Dataset, Dataset, Dataset) {
    let full = census_scaled(600, 601);
    let base_rows = 400usize;
    let slice = |lo: usize, hi: usize| -> Dataset {
        Dataset::new(
            full.columns()
                .iter()
                .map(|c| {
                    Column::from_raw(c.name(), c.cardinality(), c.raw()[lo..hi].to_vec()).unwrap()
                })
                .collect(),
        )
        .unwrap()
    };
    (slice(0, base_rows), slice(base_rows, 600), full)
}

fn rows_of(d: &Dataset) -> Vec<Vec<Cell>> {
    (0..d.n_rows()).map(|r| d.row(r)).collect()
}

#[test]
fn appended_bee_equals_batch_built() {
    let (base, extra, full) = split();
    let mut idx = EqualityBitmapIndex::<Wah>::build(&base);
    for row in rows_of(&extra) {
        idx.append_row(&row).unwrap();
    }
    let batch = EqualityBitmapIndex::<Wah>::build(&full);
    assert_eq!(idx.n_rows(), batch.n_rows());
    // WAH encoding is deterministic: byte-identical indexes.
    assert_eq!(idx.size_bytes(), batch.size_bytes());
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 8,
            k: 3,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        for q in workload(&full, &spec, 602) {
            assert_eq!(
                idx.execute(&q).unwrap(),
                scan::execute(&full, &q),
                "{policy}"
            );
        }
    }
}

#[test]
fn appended_bre_equals_batch_built() {
    let (base, extra, full) = split();
    let mut idx = RangeBitmapIndex::<Wah>::build(&base);
    for row in rows_of(&extra) {
        idx.append_row(&row).unwrap();
    }
    let batch = RangeBitmapIndex::<Wah>::build(&full);
    assert_eq!(idx.size_bytes(), batch.size_bytes());
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 8,
            k: 3,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        for q in workload(&full, &spec, 603) {
            assert_eq!(
                idx.execute(&q).unwrap(),
                scan::execute(&full, &q),
                "{policy}"
            );
        }
    }
}

#[test]
fn appended_vafile_equals_batch_built() {
    let (base, extra, full) = split();
    let mut va = VaFile::build(&base);
    for row in rows_of(&extra) {
        va.append_row(&row).unwrap();
    }
    assert_eq!(va.n_rows(), full.n_rows());
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 8,
            k: 3,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        for q in workload(&full, &spec, 604) {
            assert_eq!(
                va.execute(&full, &q).unwrap(),
                scan::execute(&full, &q),
                "{policy}"
            );
        }
    }
}

#[test]
fn first_missing_value_materializes_b0() {
    // Start from a complete column; appending a missing cell must create
    // the B_0 machinery on the fly for both encodings.
    let base = Dataset::from_rows(
        &[("a", 4)],
        &[
            vec![Cell::present(1)],
            vec![Cell::present(4)],
            vec![Cell::present(2)],
        ],
    )
    .unwrap();
    let mut bee = EqualityBitmapIndex::<Wah>::build(&base);
    let mut bre = RangeBitmapIndex::<Wah>::build(&base);
    assert_eq!(bee.n_bitmaps(), 4);
    assert_eq!(bre.n_bitmaps(), 3);
    bee.append_row(&[Cell::MISSING]).unwrap();
    bre.append_row(&[Cell::MISSING]).unwrap();
    assert_eq!(bee.n_bitmaps(), 5, "B_0 materialized");
    assert_eq!(bre.n_bitmaps(), 4, "B_0 materialized");
    bee.append_row(&[Cell::present(3)]).unwrap();
    bre.append_row(&[Cell::present(3)]).unwrap();

    let full = Dataset::from_rows(
        &[("a", 4)],
        &[
            vec![Cell::present(1)],
            vec![Cell::present(4)],
            vec![Cell::present(2)],
            vec![Cell::MISSING],
            vec![Cell::present(3)],
        ],
    )
    .unwrap();
    for policy in MissingPolicy::ALL {
        for lo in 1..=4u16 {
            for hi in lo..=4u16 {
                let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                let truth = scan::execute(&full, &q);
                assert_eq!(bee.execute(&q).unwrap(), truth, "BEE {policy} [{lo},{hi}]");
                assert_eq!(bre.execute(&q).unwrap(), truth, "BRE {policy} [{lo},{hi}]");
            }
        }
    }
}

#[test]
fn append_validation_leaves_index_unchanged() {
    let (base, _, _) = split();
    let mut idx = EqualityBitmapIndex::<Wah>::build(&base);
    let before = idx.size_bytes();
    assert!(idx.append_row(&[Cell::present(1)]).is_err(), "wrong width");
    let mut row = vec![Cell::MISSING; base.n_attrs()];
    row[0] = Cell::present(base.column(0).cardinality() + 1);
    assert!(idx.append_row(&row).is_err(), "out of domain");
    assert_eq!(idx.size_bytes(), before);
    assert_eq!(idx.n_rows(), base.n_rows());
}

#[test]
fn bbc_backend_appends_via_default_path() {
    // The BBC store uses the trait's decode/re-encode default; results must
    // still match exactly.
    let (base, extra, full) = split();
    let small_extra: Vec<Vec<Cell>> = rows_of(&extra).into_iter().take(20).collect();
    let mut idx = EqualityBitmapIndex::<Bbc>::build(&base);
    for row in &small_extra {
        idx.append_row(row).unwrap();
    }
    let q = RangeQuery::new(
        vec![Predicate::range(0, 1, base.column(0).cardinality())],
        MissingPolicy::IsNotMatch,
    )
    .unwrap();
    let trimmed = Dataset::new(
        full.columns()
            .iter()
            .map(|c| {
                Column::from_raw(
                    c.name(),
                    c.cardinality(),
                    c.raw()[..base.n_rows() + 20].to_vec(),
                )
                .unwrap()
            })
            .collect(),
    )
    .unwrap();
    assert_eq!(idx.execute(&q).unwrap(), scan::execute(&trimmed, &q));
}
