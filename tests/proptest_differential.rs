//! Property-based differential testing: arbitrary incomplete relations and
//! arbitrary range queries, every index vs the scan, both semantics.

use ibis::core::scan;
use ibis::prelude::*;
use proptest::prelude::*;

/// An arbitrary incomplete relation: 1–5 attributes of cardinality 1–12,
/// 1–60 rows, independent per-cell missingness.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..=5, 1usize..=60).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(1u16..=12, n_attrs).prop_flat_map(move |cards| {
            let cells = cards
                .iter()
                .map(|&c| proptest::collection::vec(0u16..=c, n_rows))
                .collect::<Vec<_>>();
            cells.prop_map(move |cols| {
                Dataset::new(
                    cols.into_iter()
                        .enumerate()
                        .map(|(i, raw)| {
                            Column::from_raw(format!("a{i}"), cards[i], raw).expect("in domain")
                        })
                        .collect(),
                )
                .expect("equal lengths")
            })
        })
    })
}

/// A query valid for `d`: a subset of attributes, each with an in-domain
/// interval.
fn arb_query(d: &Dataset) -> impl Strategy<Value = RangeQuery> {
    let n_attrs = d.n_attrs();
    let cards: Vec<u16> = d.columns().iter().map(|c| c.cardinality()).collect();
    (
        proptest::sample::subsequence((0..n_attrs).collect::<Vec<_>>(), 1..=n_attrs),
        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), n_attrs),
        any::<bool>(),
    )
        .prop_map(move |(attrs, bounds, is_match)| {
            let preds = attrs
                .into_iter()
                .map(|a| {
                    let c = cards[a];
                    let (x, y) = bounds[a];
                    let lo = 1 + (x * c as f64) as u16;
                    let lo = lo.min(c);
                    let hi = lo + (y * (c - lo + 1) as f64) as u16;
                    Predicate::range(a, lo, hi.min(c))
                })
                .collect();
            let policy = if is_match {
                MissingPolicy::IsMatch
            } else {
                MissingPolicy::IsNotMatch
            };
            RangeQuery::new(preds, policy).expect("valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_indexes_match_scan(
        (d, q) in arb_dataset().prop_flat_map(|d| {
            let q = arb_query(&d);
            (Just(d), q)
        })
    ) {
        let truth = scan::execute(&d, &q);
        prop_assert_eq!(&EqualityBitmapIndex::<Wah>::build(&d).execute(&q).unwrap(), &truth);
        prop_assert_eq!(&RangeBitmapIndex::<Wah>::build(&d).execute(&q).unwrap(), &truth);
        prop_assert_eq!(&IntervalBitmapIndex::<Wah>::build(&d).execute(&q).unwrap(), &truth);
        prop_assert_eq!(&DecomposedBitmapIndex::<Wah>::build(&d).execute(&q).unwrap(), &truth);
        prop_assert_eq!(&DecomposedBitmapIndex::<Wah>::with_base(&d, 2).execute(&q).unwrap(), &truth);
        prop_assert_eq!(&EqualityBitmapIndex::<Bbc>::build(&d).execute(&q).unwrap(), &truth);
    }

    #[test]
    fn vafiles_match_scan(
        (d, q) in arb_dataset().prop_flat_map(|d| {
            let q = arb_query(&d);
            (Just(d), q)
        })
    ) {
        let truth = scan::execute(&d, &q);
        prop_assert_eq!(&VaFile::build(&d).execute(&d, &q).unwrap(), &truth);
        prop_assert_eq!(&VaPlusFile::build(&d).execute(&d, &q).unwrap(), &truth);
        // Aggressively lossy codes still yield exact answers.
        let bits = vec![1u8; d.n_attrs()];
        prop_assert_eq!(&VaFile::with_bits(&d, &bits).execute(&d, &q).unwrap(), &truth);
    }

    #[test]
    fn baselines_match_scan(
        (d, q) in arb_dataset().prop_flat_map(|d| {
            let q = arb_query(&d);
            (Just(d), q)
        })
    ) {
        let truth = scan::execute(&d, &q);
        prop_assert_eq!(&Mosaic::build(&d).execute(&q).unwrap(), &truth);
        prop_assert_eq!(&RTreeIncomplete::build(&d).execute(&q).unwrap(), &truth);
        prop_assert_eq!(&BitstringAugmented::build(&d).execute(&q).unwrap(), &truth);
    }

    #[test]
    fn policies_nest(
        (d, q) in arb_dataset().prop_flat_map(|d| {
            let q = arb_query(&d);
            (Just(d), q)
        })
    ) {
        // Not-match answers are always a subset of match answers for the
        // same search key.
        let strict = scan::execute(&d, &q.with_policy(MissingPolicy::IsNotMatch));
        let loose = scan::execute(&d, &q.with_policy(MissingPolicy::IsMatch));
        prop_assert_eq!(strict.intersect(&loose), strict);
    }

    #[test]
    fn conjunction_monotone(
        (d, q) in arb_dataset().prop_flat_map(|d| {
            let q = arb_query(&d);
            (Just(d), q)
        })
    ) {
        // Dropping a conjunct can only grow the result set.
        prop_assume!(q.dimensionality() >= 2);
        let full = scan::execute(&d, &q);
        let fewer = RangeQuery::new(
            q.predicates()[..q.dimensionality() - 1].to_vec(),
            q.policy(),
        ).unwrap();
        let wider = scan::execute(&d, &fewer);
        prop_assert_eq!(full.intersect(&wider).len(), full.len());
    }
}
