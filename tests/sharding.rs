//! Sharded-execution conformance: a [`ShardedDb`] must be observationally
//! identical to a monolithic [`IncompleteDb`] over the same data — rows
//! bit-identical, merged work counters thread-degree independent — while
//! its synopsis pruning honors both missing-data semantics. The CI `shards`
//! job runs this suite under `IBIS_THREADS=1` and `IBIS_THREADS=8`, so
//! every `execute()` call here is exercised at both ambient degrees.

use ibis::oracle::gen::gen_case;
use ibis::prelude::*;
use ibis_core::gen::{census_scaled, workload, QuerySpec};

const SHARD_COUNTS: [usize; 3] = [1, 3, 7];
const THREADS: [usize; 2] = [1, 8];

fn v(x: u16) -> Cell {
    Cell::present(x)
}
fn m() -> Cell {
    Cell::MISSING
}

/// Splits `n` rows into `k` shards the way the conformance matrix means it:
/// shard capacity `⌈n/k⌉`, so exactly `k` shards when `n ≥ k`.
fn shard_capacity(n: usize, k: usize) -> usize {
    n.div_ceil(k).max(1)
}

#[test]
fn sharded_matches_monolithic_for_every_config_and_degree() {
    let data = census_scaled(280, 501);
    for config in [DbConfig::default(), DbConfig::all(), DbConfig::none()] {
        let mono = IncompleteDb::with_config(data.clone(), config);
        for k in SHARD_COUNTS {
            let cap = shard_capacity(data.n_rows(), k);
            let sharded = ShardedDb::with_config(data.clone(), cap, config);
            assert_eq!(sharded.shard_count(), k);
            for policy in MissingPolicy::ALL {
                let spec = QuerySpec {
                    n_queries: 4,
                    k: 3,
                    global_selectivity: 0.05,
                    policy,
                    candidate_attrs: vec![],
                };
                for q in workload(&data, &spec, 502) {
                    let want = mono.execute(&q).unwrap();
                    let mut counters: Option<WorkCounters> = None;
                    for threads in THREADS {
                        let (rows, c) = sharded.execute_with_cost_threads(&q, threads).unwrap();
                        assert_eq!(rows, want, "k={k} t={threads} {policy} {config:?}");
                        match &counters {
                            None => counters = Some(c),
                            Some(base) => assert_eq!(
                                c, *base,
                                "merged counters must be degree-independent: k={k} t={threads}"
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn sharded_matches_monolithic_on_oracle_cases() {
    // The oracle's adversarial generator (duplicated rows, all-missing
    // stripes, tiny domains) through the ShardedDb itself.
    for idx in [0, 1, 2, 5, 8] {
        let case = gen_case(77, idx);
        if case.dataset.n_rows() == 0 || case.dataset.n_attrs() == 0 {
            continue;
        }
        let mono = IncompleteDb::new(case.dataset.clone());
        for k in SHARD_COUNTS {
            let cap = shard_capacity(case.dataset.n_rows(), k);
            let sharded = ShardedDb::new(case.dataset.clone(), cap);
            for raw in &case.queries {
                let Ok(q) = raw.to_query() else { continue };
                match (mono.execute(&q), sharded.execute(&q)) {
                    (Ok(want), Ok(got)) => assert_eq!(got, want, "case {idx} k={k}"),
                    (Err(_), Err(_)) => {} // both reject schema-invalid keys
                    (mono_r, shard_r) => panic!(
                        "case {idx} k={k}: divergent acceptance: monolithic {mono_r:?}, sharded {shard_r:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn is_not_match_prunes_all_missing_shard_outright() {
    // Shard 1 (rows 2..4) is all-missing on the queried attribute: under
    // IsNotMatch its synopsis must eliminate it without touching an index.
    let data = Dataset::from_rows(
        &[("a", 9)],
        &[
            vec![v(1)],
            vec![v(2)],
            vec![m()],
            vec![m()],
            vec![v(3)],
            vec![v(4)],
        ],
    )
    .unwrap();
    let db = ShardedDb::new(data, 2);
    assert_eq!(db.shard_count(), 3);
    let q = RangeQuery::new(vec![Predicate::range(0, 1, 9)], MissingPolicy::IsNotMatch).unwrap();
    let exec = db.execute_with_stats(&q).unwrap();
    assert_eq!(exec.shards_pruned, 1, "the all-missing shard is skipped");
    assert_eq!(exec.rows.rows(), &[0, 1, 4, 5]);
    assert!(db.synopsis(1).can_prune(&q));
    assert!(db.synopsis(1).attrs[0].all_missing());
}

#[test]
fn is_match_never_prunes_a_shard_with_missing_on_the_queried_attribute() {
    // The paper's IsMatch semantics as a pruning rule: missing_count > 0 on
    // a queried attribute makes the shard unprunable on that attribute —
    // for *any* interval, because the missing rows always match.
    let data = Dataset::from_rows(
        &[("a", 9)],
        &[vec![v(1)], vec![m()], vec![v(8)], vec![v(8)]],
    )
    .unwrap();
    let db = ShardedDb::new(data, 2);
    assert!(db.synopsis(0).attrs[0].missing > 0);
    for (lo, hi) in [(1, 1), (4, 5), (9, 9), (1, 9)] {
        let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], MissingPolicy::IsMatch).unwrap();
        assert!(
            !db.synopsis(0).can_prune(&q),
            "[{lo},{hi}]: shard with missing values must never be pruned under IsMatch"
        );
        // And the unpruned answer is the correct one.
        let exec = db.execute_with_stats(&q).unwrap();
        assert!(
            exec.rows.rows().contains(&1),
            "[{lo},{hi}]: row 1 is missing ⇒ matches"
        );
    }
    // The same shard *is* prunable under IsNotMatch when the envelope misses.
    let strict =
        RangeQuery::new(vec![Predicate::range(0, 4, 5)], MissingPolicy::IsNotMatch).unwrap();
    assert!(db.synopsis(0).can_prune(&strict));
}

#[test]
fn pruned_counter_and_shard_spans_surface_in_the_profile() {
    // Values grow with the row id, so a narrow interval excludes most
    // shards — the profile must carry nonzero shards.pruned and per-shard
    // db.shard spans.
    let rows: Vec<Vec<Cell>> = (0..60u16).map(|i| vec![v(i / 10 + 1)]).collect();
    let data = Dataset::from_rows(&[("a", 9)], &rows).unwrap();
    let db = ShardedDb::new(data, 10);
    assert_eq!(db.shard_count(), 6);
    let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsNotMatch).unwrap();
    let prof = profile_sharded(&db, &q, 2).unwrap();
    assert_eq!(prof.method, "sharded-db");
    assert_eq!(prof.rows.rows(), (20..30).collect::<Vec<u32>>().as_slice());
    let pruned = prof.snapshot.counters.get("shards.pruned").copied();
    assert_eq!(pruned, Some(5), "5 of 6 shards lie outside the point");
    let shard_spans = prof
        .snapshot
        .spans
        .iter()
        .filter(|s| s.name == "db.shard")
        .count();
    assert_eq!(shard_spans, 1, "one db.shard span per executed shard");
    assert!(prof.snapshot.spans.iter().any(|s| s.name == "db.shards"));
}

#[test]
fn appends_and_deletes_stay_equivalent_through_compaction() {
    let data = census_scaled(120, 503);
    let mut mono = IncompleteDb::new(data.clone());
    let mut sharded = ShardedDb::new(data.clone(), 40);
    // Append a stripe of rows (some all-missing), delete a scatter of ids
    // across base, delta, and both shard interiors.
    for i in 0..30usize {
        let row: Vec<Cell> = (0..data.n_attrs())
            .map(|a| if i % 5 == 0 { m() } else { data.cell(i, a) })
            .collect();
        mono.insert(&row).unwrap();
        sharded.insert(&row).unwrap();
    }
    // Touch shard 0 (base), and the delta shard — shards 1 and 2 stay clean
    // so compaction has something to skip.
    for id in [0u32, 17, 39, 120, 125, 149] {
        assert_eq!(mono.delete(id), sharded.delete(id), "id {id}");
    }
    let spec = QuerySpec {
        n_queries: 6,
        k: 2,
        global_selectivity: 0.08,
        policy: MissingPolicy::IsMatch,
        candidate_attrs: vec![],
    };
    let queries = workload(&data, &spec, 504);
    for q in &queries {
        assert_eq!(
            sharded.execute(q).unwrap(),
            mono.execute(q).unwrap(),
            "pre-compact"
        );
    }
    assert!(mono.compact());
    let rebuilt = sharded.compact();
    assert!(
        rebuilt >= 1 && rebuilt < sharded.shard_count(),
        "dirty-only: {rebuilt}"
    );
    assert_eq!(sharded.compact(), 0, "second compact finds nothing dirty");
    assert_eq!(mono.n_rows(), sharded.n_rows());
    for q in &queries {
        assert_eq!(
            sharded.execute(q).unwrap(),
            mono.execute(q).unwrap(),
            "post-compact"
        );
    }
}

#[test]
fn aggressive_tombstones_never_underflow_row_accounting() {
    // The oracle generator never deletes; this battery tombstones far more
    // aggressively — every base row *and* every delta row, plus repeated
    // and out-of-range ids — and `n_rows` must stay total (the historical
    // `base + delta − deleted` underflow) while answers stay correct.
    for idx in [0, 1, 2, 8] {
        let case = gen_case(91, idx);
        if case.dataset.n_rows() == 0 || case.dataset.n_attrs() == 0 {
            continue;
        }
        let n = case.dataset.n_rows();
        let mut mono = IncompleteDb::new(case.dataset.clone());
        let mut sharded = ShardedDb::new(case.dataset.clone(), shard_capacity(n, 3));
        let missing_row: Vec<Cell> = vec![m(); case.dataset.n_attrs()];
        for _ in 0..3 {
            mono.insert(&missing_row).unwrap();
            sharded.insert(&missing_row).unwrap();
        }
        // Tombstone every id, twice, plus ids beyond the live range.
        for pass in 0..2 {
            for id in 0..(n as u32 + 8) {
                assert_eq!(
                    mono.delete(id),
                    sharded.delete(id),
                    "case {idx} pass {pass} id {id}"
                );
            }
        }
        assert_eq!(mono.n_rows(), 0, "case {idx}");
        assert_eq!(sharded.n_rows(), 0, "case {idx}");
        for raw in &case.queries {
            let Ok(q) = raw.to_query() else { continue };
            let Ok(rows) = mono.execute(&q) else { continue };
            assert!(rows.is_empty(), "case {idx}: everything is tombstoned");
            assert!(sharded.execute(&q).unwrap().is_empty(), "case {idx}");
        }
        mono.compact();
        sharded.compact();
        assert_eq!(mono.n_rows(), 0);
        assert_eq!(sharded.n_rows(), 0);
        // The emptied databases still accept appends and answer them.
        mono.insert(&missing_row).unwrap();
        sharded.insert(&missing_row).unwrap();
        assert_eq!(mono.n_rows(), 1);
        assert_eq!(sharded.n_rows(), 1);
    }
}

#[test]
fn shard_capacity_one_degenerates_to_row_per_shard_and_still_agrees() {
    let case = gen_case(13, 1);
    if case.dataset.n_rows() == 0 || case.dataset.n_attrs() == 0 {
        return;
    }
    let mono = IncompleteDb::new(case.dataset.clone());
    let sharded = ShardedDb::new(case.dataset.clone(), 1);
    assert_eq!(sharded.shard_count(), case.dataset.n_rows());
    for raw in &case.queries {
        let Ok(q) = raw.to_query() else { continue };
        let (Ok(want), Ok(got)) = (mono.execute(&q), sharded.execute(&q)) else {
            continue;
        };
        assert_eq!(got, want);
    }
}
