//! Engine-layer conformance suite: every [`AccessMethod`] registered in the
//! workspace runs the same randomized query matrix — both missing-data
//! semantics × {0, 10, 30, 50}% missing × MAR/MNAR mechanisms — and must
//! return exactly the scan ground truth. This replaces the old per-index
//! differential tests: indexes are exercised only through the common trait,
//! so a method that joins the registry is conformance-tested for free.

use ibis::bitmap::rejected::{InBandMatchEquality, InBandNotMatchEquality};
use ibis::core::gen::missingness::{impose_mar, impose_mnar};
use ibis::core::gen::{census_scaled, uniform_column, workload, QuerySpec};
use ibis::core::scan;
use ibis::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

/// Every access method in the workspace, bound where binding is needed.
/// The in-band match encoder can refuse datasets it cannot represent
/// (cardinality-1 attributes with missing data), so it joins when it can.
fn registry(d: &Arc<Dataset>) -> Vec<Box<dyn AccessMethod>> {
    let mut methods: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(EqualityBitmapIndex::<Wah>::build(d)),
        Box::new(EqualityBitmapIndex::<BitVec64>::build(d)),
        Box::new(EqualityBitmapIndex::<Bbc>::build(d)),
        Box::new(RangeBitmapIndex::<Wah>::build(d)),
        Box::new(RangeBitmapIndex::<Bbc>::build(d)),
        Box::new(IntervalBitmapIndex::<Wah>::build(d)),
        Box::new(DecomposedBitmapIndex::<Wah>::build(d)),
        Box::new(InBandNotMatchEquality::<Wah>::build(d)),
        Box::new(VaFile::build(d).bind(Arc::clone(d))),
        Box::new(VaPlusFile::build(d).bind(Arc::clone(d))),
        Box::new(Mosaic::build(d)),
        Box::new(RTreeIncomplete::build(d)),
        Box::new(BitstringAugmented::build(d)),
        Box::new(SequentialScan.bind(Arc::clone(d))),
    ];
    if let Ok(im) = InBandMatchEquality::<Wah>::try_build(d) {
        methods.push(Box::new(im));
    }
    methods
}

/// A complete uniform relation, small enough in dimensionality that the
/// `2^k`-expanding tree baselines stay tractable.
fn complete_base(n_rows: usize, n_attrs: usize, cardinality: u16, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::new(
        (0..n_attrs)
            .map(|i| uniform_column(&format!("a{i}"), n_rows, cardinality, 0.0, &mut rng))
            .collect(),
    )
    .unwrap()
}

/// Imposes roughly `rate` missingness on every attribute through a
/// non-ignorable mechanism: MAR (driven by the next attribute's observed
/// value) or MNAR (driven by the cell's own value).
fn impose(base: &Dataset, mechanism: &str, rate: f64, seed: u64) -> Dataset {
    if rate == 0.0 {
        return base.clone();
    }
    let n = base.n_attrs();
    let mut d = base.clone();
    for target in 0..n {
        d = match mechanism {
            "mar" => {
                let driver = (target + 1) % n;
                impose_mar(
                    &d,
                    target,
                    driver,
                    (rate * 0.5).min(1.0),
                    (rate * 1.5).min(1.0),
                    seed + target as u64,
                )
            }
            "mnar" => impose_mnar(&d, target, (rate * 2.0).min(1.0), seed + target as u64),
            other => panic!("unknown mechanism {other}"),
        };
    }
    d
}

/// One dataset's worth of the matrix: every method × both policies × a
/// randomized workload, checked against the scan, plus the batch and count
/// entry points.
fn conformance_pass(d: &Arc<Dataset>, ctx: &str, seed: u64) {
    let methods = registry(d);
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 4,
            k: 3,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        let queries = workload(d, &spec, seed);
        for m in &methods {
            for (qi, q) in queries.iter().enumerate() {
                if !m.supports(q) {
                    // The rejected in-band encoders hardwire one policy and
                    // must refuse (not mis-answer) the other.
                    assert!(
                        m.execute(q).is_err(),
                        "{} claims no support for {policy} yet answered ({ctx})",
                        m.name()
                    );
                    continue;
                }
                let truth = scan::execute(d, q);
                assert_eq!(
                    m.execute(q).unwrap(),
                    truth,
                    "{} {policy} q{qi} ({ctx})",
                    m.name()
                );
                assert_eq!(
                    m.execute_count(q).unwrap(),
                    truth.len(),
                    "{} count {policy} q{qi} ({ctx})",
                    m.name()
                );
                // Parallel execution is an implementation detail: for every
                // degree, both the rows AND the merged work counters must be
                // bit-identical to the sequential run.
                let (seq_rows, seq_cost) = m.execute_with_cost(q).unwrap();
                for threads in [2usize, 8] {
                    let (par_rows, par_cost) = m.execute_with_cost_threads(q, threads).unwrap();
                    assert_eq!(
                        par_rows,
                        seq_rows,
                        "{} rows diverge at t={threads} {policy} q{qi} ({ctx})",
                        m.name()
                    );
                    assert_eq!(
                        par_cost,
                        seq_cost,
                        "{} counters diverge at t={threads} {policy} q{qi} ({ctx})",
                        m.name()
                    );
                }
            }
            // Batch execution must agree with the sequential loop, at the
            // default and at an explicit fan-out degree.
            if queries.iter().all(|q| m.supports(q)) {
                let sequential: Vec<RowSet> =
                    queries.iter().map(|q| m.execute(q).unwrap()).collect();
                let batch = m.execute_batch(&queries).unwrap();
                assert_eq!(batch, sequential, "{} batch ({ctx})", m.name());
                let fanned = m.execute_batch_threads(&queries, 4).unwrap();
                assert_eq!(fanned, sequential, "{} batch t=4 ({ctx})", m.name());
            }
        }
    }
}

#[test]
fn matrix_mar() {
    let base = complete_base(400, 5, 12, 301);
    for (i, rate) in [0.0, 0.10, 0.30, 0.50].into_iter().enumerate() {
        let d = Arc::new(impose(&base, "mar", rate, 310 + i as u64));
        conformance_pass(&d, &format!("mar {rate}"), 320 + i as u64);
    }
}

#[test]
fn matrix_mnar() {
    let base = complete_base(400, 5, 12, 401);
    for (i, rate) in [0.0, 0.10, 0.30, 0.50].into_iter().enumerate() {
        let d = Arc::new(impose(&base, "mnar", rate, 410 + i as u64));
        conformance_pass(&d, &format!("mnar {rate}"), 420 + i as u64);
    }
}

#[test]
fn census_skew_conformance() {
    // The skewed census stand-in exercises high-cardinality and
    // high-missing attributes; 5 low-dimensional columns keep the
    // 2^k tree baselines tractable.
    let full = census_scaled(500, 103);
    let cols: Vec<Column> = (0..5).map(|a| full.column(a * 9 + 1).clone()).collect();
    let d = Arc::new(Dataset::new(cols).unwrap());
    conformance_pass(&d, "census", 501);
}

#[test]
fn extreme_ranges_across_methods() {
    let d = Arc::new(complete_base(300, 4, 9, 601));
    let d = Arc::new(impose(&d, "mnar", 0.25, 602));
    let methods = registry(&d);
    for policy in MissingPolicy::ALL {
        for attr in 0..2usize {
            let c = d.column(attr).cardinality();
            // Full domain, prefix, suffix, singleton-at-max.
            for (lo, hi) in [(1, c), (1, 1.max(c / 2)), (c.div_ceil(2).max(1), c), (c, c)] {
                let q = RangeQuery::new(vec![Predicate::range(attr, lo, hi)], policy).unwrap();
                let truth = scan::execute(&d, &q);
                for m in &methods {
                    if !m.supports(&q) {
                        continue;
                    }
                    assert_eq!(
                        m.execute(&q).unwrap(),
                        truth,
                        "{} {policy} a{attr} [{lo},{hi}]",
                        m.name()
                    );
                }
            }
        }
    }
}

#[test]
fn reordered_rows_preserve_answers_across_methods() {
    use ibis::bitmap::reorder;
    let d = census_scaled(350, 111);
    let order = reorder::cardinality_ascending_order(&d);
    let perm = reorder::lexicographic(&d, &order[..6]);
    let p = Arc::new(d.permute_rows(&perm));
    let methods: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(EqualityBitmapIndex::<Wah>::build(&p)),
        Box::new(VaFile::build(&p).bind(Arc::clone(&p))),
    ];
    for policy in MissingPolicy::ALL {
        let spec = QuerySpec {
            n_queries: 5,
            k: 3,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        for q in workload(&d, &spec, 212) {
            let truth = scan::execute(&d, &q);
            for m in &methods {
                let got = reorder::map_rows(&m.execute(&q).unwrap(), &perm);
                assert_eq!(got, truth, "{} {policy} after reorder", m.name());
            }
        }
    }
}

#[test]
fn lossy_va_files_stay_exact() {
    let d = Arc::new(census_scaled(600, 113));
    for bits in [1u8, 2, 3] {
        let widths = vec![bits; d.n_attrs()];
        let methods: Vec<Box<dyn AccessMethod>> = vec![
            Box::new(VaFile::with_bits(&d, &widths).bind(Arc::clone(&d))),
            Box::new(VaPlusFile::with_bits(&d, &widths).bind(Arc::clone(&d))),
        ];
        for policy in MissingPolicy::ALL {
            let spec = QuerySpec {
                n_queries: 4,
                k: 3,
                global_selectivity: 0.05,
                policy,
                candidate_attrs: vec![],
            };
            for q in workload(&d, &spec, 214 + bits as u64) {
                let truth = scan::execute(&d, &q);
                for m in &methods {
                    assert_eq!(
                        m.execute(&q).unwrap(),
                        truth,
                        "{policy} {} {bits}b",
                        m.name()
                    );
                }
            }
        }
    }
}

#[test]
fn interval_split_metamorphic_property() {
    // result([v1, v2]) == result([v1, m]) ∪ result([m+1, v2]) for every
    // split point, on every bitmap encoding — a metamorphic check that
    // interval evaluation composes.
    let d = Arc::new(census_scaled(300, 121));
    let attr = (0..d.n_attrs())
        .find(|&a| d.column(a).cardinality() >= 8)
        .unwrap();
    let c = d.column(attr).cardinality();
    let (v1, v2) = (2u16, c - 1);
    let methods: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(EqualityBitmapIndex::<Wah>::build(&d)),
        Box::new(RangeBitmapIndex::<Wah>::build(&d)),
        Box::new(IntervalBitmapIndex::<Wah>::build(&d)),
    ];
    for policy in MissingPolicy::ALL {
        let whole = RangeQuery::new(vec![Predicate::range(attr, v1, v2)], policy).unwrap();
        for m in v1..v2 {
            let left = RangeQuery::new(vec![Predicate::range(attr, v1, m)], policy).unwrap();
            let right = RangeQuery::new(vec![Predicate::range(attr, m + 1, v2)], policy).unwrap();
            for method in &methods {
                let union = method
                    .execute(&left)
                    .unwrap()
                    .union(&method.execute(&right).unwrap());
                assert_eq!(
                    union,
                    method.execute(&whole).unwrap(),
                    "{} {policy} split at {m}",
                    method.name()
                );
            }
        }
    }
}

#[test]
fn policy_difference_is_exactly_the_missing_rows() {
    // match-results \ not-match-results must be precisely the rows with at
    // least one missing queried attribute that otherwise match.
    let d = census_scaled(400, 123);
    let bre = RangeBitmapIndex::<Wah>::build(&d);
    let spec = QuerySpec {
        n_queries: 10,
        k: 3,
        global_selectivity: 0.05,
        policy: MissingPolicy::IsMatch,
        candidate_attrs: vec![],
    };
    for q in workload(&d, &spec, 124) {
        let loose = bre.execute(&q).unwrap();
        let strict = bre
            .execute(&q.with_policy(MissingPolicy::IsNotMatch))
            .unwrap();
        let extra = loose.difference(&strict);
        for r in extra.iter() {
            let has_missing_queried = q
                .predicates()
                .iter()
                .any(|p| d.cell(r as usize, p.attr).is_missing());
            assert!(
                has_missing_queried,
                "row {r} gained by match semantics without a missing cell"
            );
        }
        for r in strict.iter() {
            let all_present = q
                .predicates()
                .iter()
                .all(|p| !d.cell(r as usize, p.attr).is_missing());
            assert!(all_present, "strict row {r} has a missing queried cell");
        }
    }
}
