//! Query profiling: run one query under the [`ibis_obs`] recorder and
//! package the result as a [`QueryProfile`] — the answer, the final
//! [`WorkCounters`], and the span tree whose per-phase counter deltas sum
//! back to those finals.
//!
//! This is the engine behind `ibis query --profile` / `--profile-json`, and
//! usable directly:
//!
//! ```
//! use ibis::prelude::*;
//! use std::sync::Arc;
//!
//! let data = ibis::core::gen::census_scaled(500, 42);
//! let bee = EqualityBitmapIndex::<Wah>::build(&data);
//! let q = RangeQuery::new(
//!     vec![Predicate::range(0, 1, 2), Predicate::point(1, 1)],
//!     MissingPolicy::IsMatch,
//! )
//! .unwrap();
//!
//! let prof = ibis::profile::profile_method(&bee, &q, 2).unwrap();
//! assert_eq!(prof.method, "bitmap-equality");
//! // The span tree's counter deltas account for every counted unit.
//! assert_eq!(prof.span_counter_sum(), prof.counters);
//! let _ = Arc::new(prof.to_json()); // machine-readable form
//! ```

use crate::db::ShardedDb;
use ibis_core::{AccessMethod, RangeQuery, Result, RowSet, WorkCounters};
use ibis_obs as obs;

/// The name of the root span a profile opens around the query.
pub const ROOT_SPAN: &str = "query";

/// One profiled query execution.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Name of the access method that answered the query.
    pub method: &'static str,
    /// The query's answer.
    pub rows: RowSet,
    /// Final work counters, as reported by the access method.
    pub counters: WorkCounters,
    /// Id of the root span (named [`ROOT_SPAN`]) in [`Self::snapshot`].
    pub root: u64,
    /// The spans of this query only (subtree of the root), plus whatever
    /// metrics the recorder held at snapshot time.
    pub snapshot: obs::Snapshot,
}

impl QueryProfile {
    /// Sums the counter-valued span fields over every span *below* the
    /// root. When the instrumentation's invariant holds — each phase
    /// records exactly its share — this equals [`Self::counters`].
    pub fn span_counter_sum(&self) -> WorkCounters {
        let mut sum = WorkCounters::zero();
        for span in &self.snapshot.spans {
            if span.id == self.root {
                continue;
            }
            sum +=
                WorkCounters::from_fields(span.fields.iter().map(|(name, v)| (name.as_str(), *v)));
        }
        sum
    }

    /// Per-phase totals: `(span name, spans, total ns, counter deltas)`
    /// aggregated over the tree below the root, by descending total time.
    pub fn phases(&self) -> Vec<(String, u64, u64, WorkCounters)> {
        self.snapshot
            .phase_totals()
            .into_iter()
            .filter(|p| p.name != ROOT_SPAN)
            .map(|p| {
                let counters =
                    WorkCounters::from_fields(p.fields.iter().map(|(name, v)| (name.as_str(), *v)));
                (p.name, p.count, p.total_ns, counters)
            })
            .collect()
    }

    /// Human-readable report: method, hits, final counters, span tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} ({} hits)\nwork counters:\n{}\n",
            self.method,
            self.rows.len(),
            self.counters
        ));
        out.push_str("span tree (inclusive, self):\n");
        out.push_str(&self.snapshot.render_tree(self.root));
        out
    }

    /// Machine-readable profile (the [`obs::Snapshot`] JSON schema);
    /// [`obs::Snapshot::from_json`] parses it back.
    pub fn to_json(&self) -> String {
        self.snapshot.to_json()
    }
}

/// Executes `query` on `method` with `threads` workers under the recorder,
/// returning the answer plus its isolated span tree.
///
/// If the global recorder is disabled it is enabled for the duration and
/// disabled again afterwards (recording already in progress is left alone —
/// the profile's subtree isolation keeps concurrent spans out).
pub fn profile_method(
    method: &dyn AccessMethod,
    query: &RangeQuery,
    threads: usize,
) -> Result<QueryProfile> {
    profile_with(method.name(), || {
        method.execute_with_cost_threads(query, threads)
    })
}

/// [`profile_method`] for a sharded database: executes `query` over
/// [`ShardedDb`] under the recorder, so the profile's span tree carries the
/// per-shard `db.shard` spans and its snapshot the `shards.pruned` counter.
///
/// ```
/// use ibis::prelude::*;
///
/// let data = ibis::core::gen::census_scaled(400, 42);
/// let db = ShardedDb::new(data, 100);
/// let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
/// let prof = ibis::profile::profile_sharded(&db, &q, 2).unwrap();
/// assert_eq!(prof.method, "sharded-db");
/// assert!(prof.snapshot.spans.iter().any(|s| s.name == "db.shard"));
/// ```
pub fn profile_sharded(db: &ShardedDb, query: &RangeQuery, threads: usize) -> Result<QueryProfile> {
    profile_with("sharded-db", || {
        db.execute_with_cost_threads(query, threads)
    })
}

/// The shared recorder dance: enable recording if needed, run `exec` under
/// a fresh [`ROOT_SPAN`], and package the isolated subtree.
fn profile_with(
    method: &'static str,
    exec: impl FnOnce() -> Result<(RowSet, WorkCounters)>,
) -> Result<QueryProfile> {
    let was_enabled = obs::is_enabled();
    if !was_enabled {
        obs::Recorder::enabled().install();
    }
    let mut root_span = obs::span(ROOT_SPAN);
    let root = root_span.id();
    let result = exec();
    let (rows, counters) = match result {
        Ok(ok) => ok,
        Err(e) => {
            drop(root_span);
            if !was_enabled {
                obs::Recorder::disabled().install();
            }
            return Err(e);
        }
    };
    counters.record_into(&mut root_span);
    drop(root_span);
    let snapshot = obs::snapshot().subtree(root);
    if !was_enabled {
        obs::Recorder::disabled().install();
    }
    Ok(QueryProfile {
        method,
        rows,
        counters,
        root,
        snapshot,
    })
}
