//! `ibis` — command-line front end for the incomplete-database toolkit.
//!
//! ```text
//! ibis generate --kind synthetic --rows 20000 --seed 7 --out data.ibds
//! ibis stats data.ibds
//! ibis index data.ibds --encoding bre --out data.bre
//! ibis query data.ibds "age between 2 and 5 and income = 3" --not-match
//! ibis query data.ibds "q5 = 1" --index data.bre --count
//! ibis race data.ibds --queries 50 --k 4
//! ```
//!
//! Queries use the textual language of [`ibis::core::parse`]; missing-data
//! semantics default to *missing-is-match* (`--not-match` flips it), the
//! same two modes the paper defines.

use ibis::core::csv::{export_csv, import_csv, load_dictionaries, save_dictionaries, CsvOptions};
use ibis::core::gen::{census_scaled, synthetic_scaled, workload, QuerySpec};
use ibis::core::parse::{parse_query, parse_query_with_dictionaries};
use ibis::core::stats::{column_stats, CompositionTable};
use ibis::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;

/// A CLI failure, split by who is at fault: a bad invocation (malformed
/// flag value, missing argument, unknown command — exit 2, the
/// conventional usage-error code) versus a failure while carrying out a
/// well-formed command (exit 1).
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

/// Plain `format!`/`to_string` errors are runtime failures…
impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Runtime(m)
    }
}

/// …while every `&str` literal in this file is a usage message.
impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("import") => import(&args[1..]),
        Some("export") => export(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("index") => index(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("race") => race(&args[1..]),
        Some("stress") => stress(&args[1..]),
        Some("oracle") => oracle(&args[1..]),
        Some("init") => init(&args[1..]),
        Some("checkpoint") => checkpoint(&args[1..]),
        Some("backup") => backup(&args[1..]),
        Some("restore") => restore(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("crash") => crash(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("top") => top(&args[1..]),
        Some("help") | None => {
            print!("{HELP}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}; try `ibis help`"
        ))),
    }
}

const HELP: &str = "\
ibis — indexing incomplete databases (EDBT 2006 reproduction)

commands:
  generate --kind synthetic|census --rows N [--seed S] --out FILE
      write a generated dataset (binary .ibds format)
  import FILE.csv --out FILE.ibds [--delimiter C] [--no-header]
      dictionary-encode a CSV (blank/NA/?/NULL cells become missing)
  export FILE.ibds --out FILE.csv
      write a dataset back out as CSV (numeric codes, missing = empty)
  stats FILE
      per-column stats and the Table-7 composition cross-tab
  stats --addr HOST:PORT [--json | --prom | --slow]
      one STATS request against a running `ibis serve`: by default a
      human-readable summary (queue, workers, windowed throughput and
      latency quantiles, shed/expired counts); --json prints the metric
      registry as canonical JSON, --prom as Prometheus text exposition,
      --slow the server's slow-query log (worst requests with queue/exec
      split and per-phase work-counter deltas); the slow view is fed by
      request tracing, so against a server running --trace-sample 0 it
      is permanently empty
  index FILE --encoding bee|bre|bie|dec|va|adaptive
        [--backend wah|bbc|plain|adaptive] --out FILE
      build and save an index (va ignores --backend; encoding adaptive
      is the roaring-style container index with container-exact
      counters and also ignores --backend, while backend adaptive
      stores any bitmap encoding in adaptive containers)
  query FILE QUERY [--index IDXFILE] [--not-match] [--count] [--limit N]
        [--threads N] [--shard-rows N] [--profile] [--profile-json FILE]
        [--addr HOST:PORT [--deadline-ms MS]]
      run a textual query (e.g. \"age between 2 and 5 and q5 = 1\");
      uses a saved index when given, otherwise scans; --threads sets the
      parallel degree (default: IBIS_THREADS or the machine's cores);
      --addr sends the parsed query to a running `ibis serve` over IBQP
      instead of executing locally (FILE still supplies the schema;
      --deadline-ms caps the request, 0 = the server's default);
      --shard-rows partitions the data into shards of N rows (per-shard
      indexes; synopsis pruning skips shards that cannot match);
      --profile prints the span tree with per-phase work-counter deltas,
      --profile-json also writes the machine-readable profile
  query --data-dir DIR QUERY [--not-match] [--count] [--limit N]
        [--threads N] [--profile]
      recover the durable database in DIR (snapshot + WAL replay) and
      query it through a lock-free serving snapshot; prints the snapshot
      watermark and shard pruning stats alongside the answer
  race FILE [--queries N] [--k K] [--seed S] [--threads N] [--profile]
      time BEE/BRE/VA on a generated workload over FILE at the given
      parallel degree; --profile adds a per-method phase table (spans,
      time, counters — timings then include recorder overhead)
  race FILE --live N [--shard-rows R] [--queries Q] [--k K] [--seed S]
        [--threads T]
      serve FILE under snapshot isolation and race T lock-free readers
      (each looping the generated workload over fresh snapshots) against
      one writer streaming N inserts/deletes/compactions; reports reader
      throughput and the watermark span each reader observed
  stress [--seed S] [--rows N] [--readers N] [--mutations N]
         [--threads A,B] [--durable] [--checkpoint-every N] [--no-writer]
      run the snapshot-isolation stress harness: N reader threads race
      one writer through a precomputed mutation schedule; every acquired
      snapshot is differentially checked (rows, work counters, shard
      stats) against a twin replay of its exact watermark prefix, at
      every thread degree, under both semantics; --durable serves
      through the WAL-backed engine, --no-writer freezes the database
  oracle [--cases N] [--seed S] [--corpus DIR] [--max-failures N]
         [--case-budget-ms MS]
      run the differential + metamorphic correctness oracle: N generated
      adversarial cases through every access method (all stores, thread
      degrees 1/3/8, persistence round-trip, row appends) against the
      scan ground truth; failing cases are shrunk to minimal repros in
      DIR (default tests/regressions); a case slower than the wall-clock
      budget (default 10000 ms) is itself reported as a failure
  init DIR --from FILE.ibds [--shard-rows N]
      initialize a durable data directory (WAL + snapshot + MANIFEST)
      from a dataset; `query --data-dir DIR` then recovers and queries it
  checkpoint DIR
      open (recover) DIR, then roll its WAL into a fresh snapshot and
      truncate the log
  backup DIR --out FILE.ibbk
      write DIR's logical state as one checksummed backup file
      (deterministic: backup → restore → backup is byte-identical)
  restore FILE.ibbk --into DIR
      initialize a fresh data directory from a backup file
  validate DIR
      verify checksums, parse the snapshot, scan the WAL; prints the
      generation, watermark, replayable records, and torn-tail bytes
  crash [--seed S] [--rows N] [--kill-points N] [--bit-flips N]
        [--threads A,B]
      run the crash-recovery harness: one seeded workload killed at
      every WAL frame boundary, mid-frame, inside the header, at random
      offsets, and under single-bit corruption; every mangled copy must
      recover exactly its durable prefix (rows and work counters, both
      semantics, each thread degree)
  serve FILE.ibds [--addr HOST:PORT] [--shard-rows N] [--workers N]
        [--max-batch N] [--queue-high-water N] [--deadline-ms MS]
        [--duration-secs N] [--addr-file PATH] [--trace-sample N]
        [--slow-log N]
  serve --data-dir DIR [same flags except --shard-rows]
      expose the database over the IBQP binary wire protocol (default
      address 127.0.0.1:7431; --addr-file records the bound address,
      which is how scripts learn the port under --addr HOST:0): requests
      execute against lock-free snapshots on a fixed worker pool,
      compatible queued queries are coalesced into batches, each request
      carries a deadline (default: the oracle's per-case budget), and a
      queue past the high-water mark sheds with an explicit Overloaded
      error; runs until killed unless --duration-secs is given;
      --trace-sample N traces every Nth admitted request into the
      slow-query log (0 disables tracing — `stats --slow` and the top
      dashboard's slow view then stay permanently empty, so an explicit
      --slow-log alongside --trace-sample 0 is rejected as a usage
      error), --slow-log N keeps the N worst traced requests
      (default 16)
  top --addr HOST:PORT [--interval-ms MS] [--iterations N]
      live dashboard over the STATS protocol: polls a running server
      and redraws throughput, windowed p50/p99 latency, queue and
      worker gauges, shed/expired counts, the missing-policy split, and
      the worst slow queries; Ctrl-C to exit (or --iterations N to
      stop after N polls); the slow-query panel mirrors `stats --slow`
      and stays empty against a server running --trace-sample 0

exit status: 0 on success, 1 on a command failure, 2 on a usage error
(unknown command or flag value that does not parse)
";

/// Pulls `--name value` out of `args`; returns the remaining positionals.
fn parse_flags(args: &[String]) -> (Vec<String>, std::collections::BTreeMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // Boolean flags take no value; detect by lookahead.
            let boolean = matches!(
                name,
                "count"
                    | "not-match"
                    | "match"
                    | "no-header"
                    | "profile"
                    | "durable"
                    | "no-writer"
                    | "json"
                    | "prom"
                    | "slow"
            );
            if boolean || i + 1 >= args.len() || args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn req<'a>(
    flags: &'a std::collections::BTreeMap<String, String>,
    name: &str,
) -> Result<&'a str, CliError> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
}

fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("invalid {what}: {s:?}")))
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    Dataset::load(path).map_err(|e| format!("cannot load dataset {path:?}: {e}"))
}

/// `--threads N` if given (must be ≥ 1), else the configured degree
/// (`IBIS_THREADS` or the machine default).
fn parse_threads(flags: &std::collections::BTreeMap<String, String>) -> Result<usize, CliError> {
    match flags.get("threads") {
        Some(s) => {
            let n: usize = num(s, "thread count")?;
            if n == 0 {
                return Err("--threads must be at least 1".into());
            }
            Ok(n)
        }
        None => Ok(ibis::core::parallel::configured_threads()),
    }
}

fn generate(args: &[String]) -> Result<(), CliError> {
    let (_, flags) = parse_flags(args);
    let rows: usize = num(req(&flags, "rows")?, "row count")?;
    let seed: u64 = flags.get("seed").map_or(Ok(42), |s| num(s, "seed"))?;
    let out = req(&flags, "out")?;
    let d = match req(&flags, "kind")? {
        "synthetic" => synthetic_scaled(rows, seed),
        "census" => census_scaled(rows, seed),
        other => {
            return Err(CliError::Usage(format!(
                "unknown kind {other:?} (synthetic|census)"
            )))
        }
    };
    d.save(out)
        .map_err(|e| format!("cannot write {out:?}: {e}"))?;
    println!(
        "wrote {} rows × {} attrs ({:.1} MB raw) to {out}",
        d.n_rows(),
        d.n_attrs(),
        d.raw_bytes() as f64 / 1e6
    );
    Ok(())
}

fn import(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    let path = pos
        .first()
        .ok_or("usage: ibis import FILE.csv --out FILE.ibds")?;
    let out = req(&flags, "out")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut opts = CsvOptions::default();
    if let Some(d) = flags.get("delimiter") {
        let mut chars = d.chars();
        opts.delimiter = chars.next().ok_or("empty --delimiter")?;
        if chars.next().is_some() {
            return Err("--delimiter must be a single character".into());
        }
    }
    if flags.contains_key("no-header") {
        opts.has_header = false;
    }
    let report = import_csv(&text, &opts).map_err(|e| e.to_string())?;
    report.dataset.save(out).map_err(|e| e.to_string())?;
    let dict_path = format!("{out}.dict");
    save_dictionaries(&report.dictionaries, &dict_path).map_err(|e| e.to_string())?;
    println!(
        "imported {} rows × {} attrs → {out} (+ {dict_path})",
        report.dataset.n_rows(),
        report.dataset.n_attrs()
    );
    for (col, dict) in report.dataset.columns().iter().zip(&report.dictionaries) {
        println!(
            "  {:>20}: {} distinct values, {:.1}% missing",
            col.name(),
            dict.len(),
            col.missing_rate() * 100.0
        );
    }
    Ok(())
}

fn export(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    let path = pos
        .first()
        .ok_or("usage: ibis export FILE.ibds --out FILE.csv")?;
    let out = req(&flags, "out")?;
    let d = load_dataset(path)?;
    // Use the dictionary sidecar when present (written by `ibis import`)
    // so import → export round-trips the original string values.
    let dicts = load_dictionaries(format!("{path}.dict")).ok().filter(|dd| {
        dd.len() == d.n_attrs()
            && dd
                .iter()
                .zip(d.columns())
                .all(|(dict, col)| dict.len() == col.cardinality() as usize)
    });
    std::fs::write(out, export_csv(&d, dicts.as_deref())).map_err(|e| e.to_string())?;
    println!(
        "wrote {} rows to {out}{}",
        d.n_rows(),
        if dicts.is_some() {
            " (original tokens via .dict sidecar)"
        } else {
            ""
        }
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    if let Some(addr) = flags.get("addr") {
        if !pos.is_empty() {
            return Err("--addr asks a running server; it cannot be combined \
                        with a dataset file"
                .into());
        }
        return server_stats(addr, &flags);
    }
    let path = pos
        .first()
        .ok_or("usage: ibis stats FILE | ibis stats --addr HOST:PORT [--json|--prom|--slow]")?;
    let d = load_dataset(path)?;
    println!("{}: {} rows × {} attrs\n", path, d.n_rows(), d.n_attrs());
    println!(
        "{:>20} {:>6} {:>9} {:>9}",
        "attribute", "card", "distinct", "missing%"
    );
    for s in column_stats(&d) {
        println!(
            "{:>20} {:>6} {:>9} {:>8.1}%",
            s.name,
            s.cardinality,
            s.distinct_present,
            s.missing_rate * 100.0
        );
    }
    println!("\n{}", CompositionTable::census_buckets(&d).render());
    Ok(())
}

fn index(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    let path = pos
        .first()
        .ok_or("usage: ibis index FILE --encoding … --out …")?;
    let out = req(&flags, "out")?;
    let backend = flags.get("backend").map_or("wah", String::as_str);
    let d = load_dataset(path)?;
    let encoding = req(&flags, "encoding")?;
    macro_rules! save_bitmap {
        ($ty:ident) => {
            match backend {
                "wah" => save_index(&$ty::<Wah>::build(&d), out),
                "bbc" => save_index(&$ty::<Bbc>::build(&d), out),
                "plain" => save_index(&$ty::<BitVec64>::build(&d), out),
                "adaptive" => save_index(&$ty::<Adaptive>::build(&d), out),
                other => Err(CliError::Usage(format!(
                    "unknown backend {other:?} (wah|bbc|plain|adaptive)"
                ))),
            }
        };
    }
    let (n_bitmaps, bytes) = match encoding {
        "va" => {
            let va = VaFile::build(&d);
            va.save(out).map_err(|e| e.to_string())?;
            (0, va.size_bytes())
        }
        "bee" => save_bitmap!(EqualityBitmapIndex)?,
        "bre" => save_bitmap!(RangeBitmapIndex)?,
        "bie" => save_bitmap!(IntervalBitmapIndex)?,
        "dec" => save_bitmap!(DecomposedBitmapIndex)?,
        "adaptive" => {
            let idx = AdaptiveBitmapIndex::build(&d);
            idx.save(out).map_err(|e| e.to_string())?;
            (idx.n_bitmaps(), idx.size_bytes())
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown encoding {other:?} (bee|bre|bie|dec|va|adaptive)"
            )))
        }
    };
    if n_bitmaps > 0 {
        // Adaptive encoding carries its own container substrate; naming the
        // (ignored) --backend default would mislabel the file.
        let backend = if encoding == "adaptive" {
            "containers"
        } else {
            backend
        };
        println!(
            "wrote {encoding}/{backend} index: {n_bitmaps} bitmaps, {:.1} KB → {out}",
            bytes as f64 / 1024.0
        );
    } else {
        println!("wrote va index: {:.1} KB → {out}", bytes as f64 / 1024.0);
    }
    Ok(())
}

/// The save surface every bitmap index shares; lets `index` handle all
/// (encoding, backend) pairs through one code path.
trait SavableIndex {
    fn n_bitmaps(&self) -> usize;
    fn size_bytes(&self) -> usize;
    fn save(&self, path: &str) -> std::io::Result<()>;
}

macro_rules! savable {
    ($ty:ident) => {
        impl<B: ibis::bitvec::BitStore> SavableIndex for $ty<B> {
            fn n_bitmaps(&self) -> usize {
                $ty::n_bitmaps(self)
            }
            fn size_bytes(&self) -> usize {
                $ty::size_bytes(self)
            }
            fn save(&self, path: &str) -> std::io::Result<()> {
                $ty::save(self, path)
            }
        }
    };
}
savable!(EqualityBitmapIndex);
savable!(RangeBitmapIndex);
savable!(IntervalBitmapIndex);
savable!(DecomposedBitmapIndex);

fn save_index(idx: &dyn SavableIndex, out: &str) -> Result<(usize, usize), CliError> {
    idx.save(out)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    Ok((idx.n_bitmaps(), idx.size_bytes()))
}

/// Sniffs a saved index file by magic and loads it as an engine-layer
/// [`AccessMethod`], so the query path downstream is encoding-agnostic.
fn load_access_method(path: &str, d: &Arc<Dataset>) -> Result<Box<dyn AccessMethod>, String> {
    // Sniff the header — 4-byte magic, u16 version, then (for bitmap
    // indexes) the length-prefixed backend name — so load errors come from
    // the one true (magic, backend) pair instead of a trial sequence.
    let mut head = [0u8; 64];
    let n = std::fs::File::open(path)
        .and_then(|mut f| f.read(&mut head))
        .map_err(|e| format!("cannot read index {path:?}: {e}"))?;
    if n < 6 {
        return Err(format!("index file {path:?} too short"));
    }
    let magic = &head[..4];
    let backend = if n >= 15 {
        // magic(4) + version(2) + u64 length + backend bytes.
        let len = u64::from_le_bytes(head[6..14].try_into().expect("slice of 8")) as usize;
        std::str::from_utf8(&head[14..(14 + len).min(n)]).unwrap_or("")
    } else {
        ""
    };
    let check_rows = |idx_rows: usize| -> Result<(), String> {
        if idx_rows != d.n_rows() {
            return Err(format!(
                "index {path:?} covers {idx_rows} rows but the dataset has {} — \
                 rebuild the index with `ibis index`",
                d.n_rows()
            ));
        }
        Ok(())
    };
    macro_rules! dispatch {
        ($ty:ident, $backend:ty) => {{
            let idx = $ty::<$backend>::load(path).map_err(|e| e.to_string())?;
            check_rows(idx.n_rows())?;
            Ok(Box::new(idx) as Box<dyn AccessMethod>)
        }};
        ($ty:ident) => {{
            match backend {
                "wah" => dispatch!($ty, Wah),
                "bbc" => dispatch!($ty, Bbc),
                "plain" => dispatch!($ty, BitVec64),
                "adaptive" => dispatch!($ty, Adaptive),
                other => Err(format!("unknown backend {other:?} recorded in {path:?}")),
            }
        }};
    }
    match magic {
        b"IBEE" => dispatch!(EqualityBitmapIndex),
        b"IBRE" => dispatch!(RangeBitmapIndex),
        b"IBIE" => dispatch!(IntervalBitmapIndex),
        b"IBDX" => dispatch!(DecomposedBitmapIndex),
        b"IBAD" => {
            let idx = AdaptiveBitmapIndex::load(path).map_err(|e| e.to_string())?;
            check_rows(idx.n_rows())?;
            Ok(Box::new(idx) as Box<dyn AccessMethod>)
        }
        b"IBVA" => {
            let va = VaFile::load(path).map_err(|e| e.to_string())?;
            check_rows(va.n_rows())?;
            Ok(Box::new(va.bind(Arc::clone(d))))
        }
        other => Err(format!("unrecognized index magic {other:02x?} in {path:?}")),
    }
}

fn query(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    if flags.contains_key("data-dir") {
        if flags.contains_key("addr") {
            return Err(
                "--addr sends the query to a running server; it cannot be combined \
                 with --data-dir"
                    .into(),
            );
        }
        return query_durable(&pos, &flags);
    }
    if flags.contains_key("addr") {
        for local in ["index", "shard-rows", "profile", "profile-json", "threads"] {
            if flags.contains_key(local) {
                return Err(CliError::Usage(format!(
                    "--addr sends the query to a running server; it cannot be \
                     combined with --{local}"
                )));
            }
        }
    }
    let (path, text) = match pos.as_slice() {
        [p, q] => (p, q),
        _ => return Err("usage: ibis query FILE \"QUERY\" [flags]".into()),
    };
    let d = Arc::new(load_dataset(path)?);
    let policy = if flags.contains_key("not-match") {
        MissingPolicy::IsNotMatch
    } else {
        MissingPolicy::IsMatch
    };
    // Use the dictionary sidecar (written by `ibis import`) when present
    // and shape-consistent with the dataset, enabling string literals like
    // city = "london". A stale/mismatched sidecar is ignored.
    let dicts = load_dictionaries(format!("{path}.dict")).ok().filter(|dd| {
        dd.len() == d.n_attrs()
            && dd
                .iter()
                .zip(d.columns())
                .all(|(dict, col)| dict.len() == col.cardinality() as usize)
    });
    let q = match &dicts {
        Some(dicts) => parse_query_with_dictionaries(&d, dicts, text, policy),
        None => parse_query(&d, text, policy),
    }
    .map_err(|e| e.to_string())?;
    if let Some(addr) = flags.get("addr") {
        let deadline_ms: u32 = flags
            .get("deadline-ms")
            .map_or(Ok(0), |s| num(s, "deadline"))?;
        return server_query(addr, &q, deadline_ms, &flags);
    }
    let threads = parse_threads(&flags)?;
    let shard_rows: Option<usize> = match flags.get("shard-rows") {
        Some(s) => {
            let n: usize = num(s, "shard rows")?;
            if n == 0 {
                return Err("--shard-rows must be at least 1".into());
            }
            if flags.contains_key("index") {
                return Err(
                    "--shard-rows builds per-shard indexes; it cannot be combined with --index"
                        .into(),
                );
            }
            Some(n)
        }
        None => None,
    };
    let profile_json = flags.get("profile-json");
    let rows = if flags.contains_key("profile") || profile_json.is_some() {
        // Profile through the engine trait; without a saved index the scan
        // baseline is the method (its chunks are spans too). With
        // --shard-rows the whole sharded pipeline is profiled instead:
        // per-shard `db.shard` spans plus the `shards.pruned` counter.
        let prof = match shard_rows {
            Some(n) => {
                let db = ShardedDb::new(Dataset::clone(&d), n);
                ibis::profile::profile_sharded(&db, &q, threads)
            }
            None => {
                let method: Box<dyn AccessMethod> = match flags.get("index") {
                    Some(idx) => load_access_method(idx, &d)?,
                    None => Box::new(SequentialScan.bind(Arc::clone(&d))),
                };
                ibis::profile::profile_method(method.as_ref(), &q, threads)
            }
        }
        .map_err(|e| e.to_string())?;
        print!("{}", prof.render());
        println!("per-phase totals (spans, time, counter deltas):");
        for (name, count, total_ns, counters) in prof.phases() {
            println!("  {name:<20} ×{count:<5} {:>9.3} ms", total_ns as f64 / 1e6);
            if !counters.is_zero() {
                for line in counters.to_string().lines() {
                    println!("  {line}");
                }
            }
        }
        if shard_rows.is_some() {
            let pruned = prof.snapshot.counters.get("shards.pruned").copied();
            println!("shards pruned: {}", pruned.unwrap_or(0));
        }
        if let Some(path) = profile_json {
            std::fs::write(path, prof.to_json())
                .map_err(|e| format!("cannot write profile {path:?}: {e}"))?;
            println!("profile JSON written to {path}");
        }
        prof.rows
    } else if let Some(n) = shard_rows {
        let db = ShardedDb::new(Dataset::clone(&d), n);
        let exec = db
            .execute_with_stats_threads(&q, threads)
            .map_err(|e| e.to_string())?;
        println!(
            "shards: {} total, {} pruned, {} executed",
            exec.shards_total,
            exec.shards_pruned,
            exec.shards_executed()
        );
        exec.rows
    } else {
        match flags.get("index") {
            Some(idx) => load_access_method(idx, &d)?
                .execute_threads(&q, threads)
                .map_err(|e| e.to_string())?,
            None => ibis::core::scan::execute_partitioned(&d, &q, threads),
        }
    };
    println!(
        "{} rows match under {policy} (selectivity {:.3}%)",
        rows.len(),
        rows.selectivity(d.n_rows()) * 100.0
    );
    if !flags.contains_key("count") {
        let limit: usize = flags.get("limit").map_or(Ok(20), |s| num(s, "limit"))?;
        for r in rows.iter().take(limit) {
            let cells: Vec<String> = q
                .predicates()
                .iter()
                .map(|p| {
                    let cell = d.cell(r as usize, p.attr);
                    let shown = match (&dicts, cell.value()) {
                        // Stale/mismatched sidecar → fall back to the code.
                        (Some(dicts), Some(v)) => dicts
                            .get(p.attr)
                            .and_then(|dict| dict.get(v as usize - 1))
                            .cloned()
                            .unwrap_or_else(|| cell.to_string()),
                        _ => cell.to_string(),
                    };
                    format!("{}={shown}", d.column(p.attr).name())
                })
                .collect();
            println!("  row {r}: {}", cells.join(" "));
        }
        if rows.len() > limit {
            println!("  … {} more (use --limit)", rows.len() - limit);
        }
    }
    Ok(())
}

/// `ibis query --data-dir DIR "QUERY"` — recover the durable database,
/// acquire a lock-free serving snapshot, and query it through the sharded
/// executor (pruning stats included).
fn query_durable(
    pos: &[String],
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<(), CliError> {
    let dir = req(flags, "data-dir")?;
    let text = pos
        .first()
        .ok_or("usage: ibis query --data-dir DIR \"QUERY\" [flags]")?;
    if flags.contains_key("index") || flags.contains_key("shard-rows") {
        return Err("--data-dir queries the directory's own per-shard indexes; \
                    it cannot be combined with --index or --shard-rows"
            .into());
    }
    let db = ConcurrentDb::open_durable(std::path::Path::new(dir))
        .map_err(|e| format!("cannot open data directory {dir:?}: {e}"))?;
    let replayed = db.with_durable(|d| d.replayed_on_open()).unwrap_or(0);
    if replayed > 0 {
        println!("recovered {dir}: replayed {replayed} WAL record(s) past the checkpoint");
    }
    let snap = db.snapshot();
    let policy = if flags.contains_key("not-match") {
        MissingPolicy::IsNotMatch
    } else {
        MissingPolicy::IsMatch
    };
    let q = parse_query(snap.db().schema(), text, policy).map_err(|e| e.to_string())?;
    let threads = parse_threads(flags)?;
    let rows = if flags.contains_key("profile") {
        let prof =
            ibis::profile::profile_sharded(snap.db(), &q, threads).map_err(|e| e.to_string())?;
        print!("{}", prof.render());
        let pruned = prof.snapshot.counters.get("shards.pruned").copied();
        println!("shards pruned: {}", pruned.unwrap_or(0));
        prof.rows
    } else {
        let exec = snap
            .execute_with_stats_threads(&q, threads)
            .map_err(|e| e.to_string())?;
        println!(
            "snapshot watermark {}; shards: {} total, {} pruned, {} executed",
            snap.watermark(),
            exec.shards_total,
            exec.shards_pruned,
            exec.shards_executed()
        );
        exec.rows
    };
    println!(
        "{} rows match under {policy} (selectivity {:.3}%)",
        rows.len(),
        rows.selectivity(snap.n_rows()) * 100.0
    );
    if !flags.contains_key("count") {
        let limit: usize = flags.get("limit").map_or(Ok(20), |s| num(s, "limit"))?;
        for r in rows.iter().take(limit) {
            println!("  row {r}");
        }
        if rows.len() > limit {
            println!("  … {} more (use --limit)", rows.len() - limit);
        }
    }
    Ok(())
}

fn init(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    let dir = pos
        .first()
        .ok_or("usage: ibis init DIR --from FILE.ibds [--shard-rows N]")?;
    let from = req(&flags, "from")?;
    let shard_rows: usize = flags
        .get("shard-rows")
        .map_or(Ok(4096), |s| num(s, "shard rows"))?;
    if shard_rows == 0 {
        return Err("--shard-rows must be at least 1".into());
    }
    let d = load_dataset(from)?;
    let db = DurableDb::create(
        std::path::Path::new(dir),
        d,
        shard_rows,
        DbConfig::default(),
    )
    .map_err(|e| format!("cannot initialize {dir:?}: {e}"))?;
    println!(
        "initialized {dir}: generation {}, {} rows × {} attrs in {} shard(s)",
        db.generation(),
        db.n_rows(),
        db.n_attrs(),
        db.shard_count()
    );
    Ok(())
}

fn checkpoint(args: &[String]) -> Result<(), CliError> {
    let (pos, _) = parse_flags(args);
    let dir = pos.first().ok_or("usage: ibis checkpoint DIR")?;
    let mut db = DurableDb::open(std::path::Path::new(dir))
        .map_err(|e| format!("cannot open data directory {dir:?}: {e}"))?;
    let replayed = db.replayed_on_open();
    db.checkpoint().map_err(|e| e.to_string())?;
    println!(
        "checkpointed {dir}: generation {}, {replayed} WAL record(s) folded in, \
         log truncated to {} bytes",
        db.generation(),
        db.wal_bytes()
    );
    Ok(())
}

fn backup(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    let dir = pos
        .first()
        .ok_or("usage: ibis backup DIR --out FILE.ibbk")?;
    let out = req(&flags, "out")?;
    let db = DurableDb::open(std::path::Path::new(dir))
        .map_err(|e| format!("cannot open data directory {dir:?}: {e}"))?;
    db.backup(std::path::Path::new(out))
        .map_err(|e| format!("cannot write backup {out:?}: {e}"))?;
    println!(
        "backed up {dir} ({} rows, generation {}) → {out}",
        db.n_rows(),
        db.generation()
    );
    Ok(())
}

fn restore(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    let file = pos
        .first()
        .ok_or("usage: ibis restore FILE.ibbk --into DIR")?;
    let into = req(&flags, "into")?;
    let db = DurableDb::restore(std::path::Path::new(file), std::path::Path::new(into))
        .map_err(|e| format!("cannot restore {file:?} into {into:?}: {e}"))?;
    println!(
        "restored {file} → {into}: {} rows × {} attrs, generation {}",
        db.n_rows(),
        db.n_attrs(),
        db.generation()
    );
    Ok(())
}

fn validate(args: &[String]) -> Result<(), CliError> {
    let (pos, _) = parse_flags(args);
    let dir = pos.first().ok_or("usage: ibis validate DIR")?;
    let r = DurableDb::validate(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    println!(
        "{dir}: generation {}, watermark {}",
        r.generation, r.watermark
    );
    println!(
        "  snapshot: {} shard(s), {} row(s)",
        r.snapshot_shards, r.snapshot_rows
    );
    println!(
        "  wal: {} replayable record(s) in {} well-formed byte(s), {} torn byte(s)",
        r.wal_records, r.wal_bytes, r.torn_tail_bytes
    );
    if r.torn_tail_bytes > 0 {
        println!("  note: the torn tail will be repaired by the next open");
    }
    Ok(())
}

fn crash(args: &[String]) -> Result<(), CliError> {
    let (_, flags) = parse_flags(args);
    let threads = match flags.get("threads") {
        Some(s) => s
            .split(',')
            .map(|t| num::<usize>(t.trim(), "thread degree"))
            .collect::<Result<Vec<_>, _>>()?,
        None => vec![1, 8],
    };
    if threads.is_empty() || threads.contains(&0) {
        return Err("--threads must be a comma-separated list of degrees ≥ 1".into());
    }
    let cfg = ibis::oracle::CrashConfig {
        seed: flags.get("seed").map_or(Ok(1), |s| num(s, "seed"))?,
        rows: flags.get("rows").map_or(Ok(96), |s| num(s, "row count"))?,
        kill_points: flags
            .get("kill-points")
            .map_or(Ok(24), |s| num(s, "kill-point count"))?,
        bit_flips: flags
            .get("bit-flips")
            .map_or(Ok(8), |s| num(s, "bit-flip count"))?,
        threads,
        ..ibis::oracle::CrashConfig::default()
    };
    println!(
        "crash harness: seed {}, {} rows, {} extra kill points, {} bit flips, threads {:?}",
        cfg.seed, cfg.rows, cfg.kill_points, cfg.bit_flips, cfg.threads
    );
    let start = std::time::Instant::now();
    let report =
        ibis::oracle::crash::run(&cfg).map_err(|e| format!("harness scaffolding failed: {e}"))?;
    println!(
        "{} in {:.1}s",
        report.summary(),
        start.elapsed().as_secs_f64()
    );
    if report.ok() {
        println!("every recovery matched its durable prefix exactly");
        return Ok(());
    }
    for f in report.failures.iter().take(10) {
        println!(
            "FAILED {}: {}",
            f.check,
            f.detail.lines().next().unwrap_or("")
        );
    }
    Err(CliError::Runtime(format!(
        "{} failing check(s)",
        report.failures.len()
    )))
}

fn race(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    let path = pos
        .first()
        .ok_or("usage: ibis race FILE [--queries N] [--k K]")?;
    let d = load_dataset(path)?;
    let n: usize = flags
        .get("queries")
        .map_or(Ok(50), |s| num(s, "query count"))?;
    let k: usize = flags.get("k").map_or(Ok(4), |s| num(s, "dimensionality"))?;
    let seed: u64 = flags.get("seed").map_or(Ok(7), |s| num(s, "seed"))?;
    let spec = QuerySpec {
        n_queries: n,
        k,
        global_selectivity: 0.01,
        policy: MissingPolicy::IsMatch,
        candidate_attrs: vec![],
    };
    let queries = workload(&d, &spec, seed);
    let threads = parse_threads(&flags)?;
    if let Some(live) = flags.get("live") {
        let mutations: usize = num(live, "live mutation count")?;
        let shard_rows: usize = flags
            .get("shard-rows")
            .map_or(Ok(4096), |s| num(s, "shard rows"))?;
        if shard_rows == 0 {
            return Err("--shard-rows must be at least 1".into());
        }
        return race_live(d, &queries, threads, mutations, shard_rows);
    }
    let d = Arc::new(d);
    // The contenders, all through the one engine-layer trait (the scan
    // rides along as the index-free baseline).
    let methods: Vec<Box<dyn AccessMethod>> = vec![
        Box::new(EqualityBitmapIndex::<Wah>::build(&d)),
        Box::new(RangeBitmapIndex::<Wah>::build(&d)),
        Box::new(VaFile::build(&d).bind(Arc::clone(&d))),
        Box::new(SequentialScan.bind(Arc::clone(&d))),
    ];
    println!(
        "{n} queries, k={k}, missing-is-match, {threads} thread(s) over {} rows:",
        d.n_rows()
    );
    let profile = flags.contains_key("profile");
    if profile {
        println!("  (profiling on: timings include recorder overhead)");
    }
    let mut hit_totals = Vec::new();
    for m in &methods {
        if profile {
            Recorder::enabled().install();
        }
        let start = std::time::Instant::now();
        let hits: usize = queries
            .iter()
            .map(|q| {
                m.execute_threads(q, threads)
                    .expect("valid workload query")
                    .len()
            })
            .sum();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        hit_totals.push(hits);
        println!(
            "  {:<16} {ms:>9.2} ms   ({:.1} KB)",
            m.name(),
            m.size_bytes() as f64 / 1024.0
        );
        if profile {
            let snap = ibis::obs::snapshot();
            Recorder::disabled().install();
            for p in snap.phase_totals() {
                let counters =
                    WorkCounters::from_fields(p.fields.iter().map(|(n, v)| (n.as_str(), *v)));
                println!(
                    "      {:<20} ×{:<6} {:>9.2} ms",
                    p.name,
                    p.count,
                    p.total_ns as f64 / 1e6
                );
                if !counters.is_zero() {
                    for line in counters.to_string().lines() {
                        println!("      {line}");
                    }
                }
            }
        }
    }
    assert!(
        hit_totals.windows(2).all(|w| w[0] == w[1]),
        "access methods disagree: {hit_totals:?}"
    );
    Ok(())
}

/// `ibis race FILE --live N` — readers loop the workload over lock-free
/// snapshots while one writer streams mutations; throughput per reader.
fn race_live(
    d: Dataset,
    queries: &[RangeQuery],
    threads: usize,
    mutations: usize,
    shard_rows: usize,
) -> Result<(), CliError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let n_attrs = d.n_attrs();
    let cards: Vec<u16> = (0..n_attrs).map(|a| d.column(a).cardinality()).collect();
    let base_rows = d.n_rows();
    let db = ConcurrentDb::from_sharded(ShardedDb::new(d, shard_rows));
    println!(
        "live race: {threads} reader(s) × {} queries/loop vs 1 writer × {mutations} mutation(s), \
         {} shard(s) of {shard_rows}",
        queries.len(),
        db.snapshot().shard_count()
    );
    let done = AtomicBool::new(false);
    let start = std::time::Instant::now();
    std::thread::scope(|s| -> Result<(), String> {
        let writer = s.spawn(|| -> Result<(), String> {
            // A deterministic mutation stream: mostly appends, a steady
            // trickle of deletes, an occasional compaction.
            for i in 0..mutations {
                match i % 16 {
                    3 | 11 => {
                        db.delete((i % (base_rows.max(1) + i / 2)) as u32)
                            .map_err(|e| format!("writer delete: {e}"))?;
                    }
                    15 if i % 256 == 255 => {
                        db.compact().map_err(|e| format!("writer compact: {e}"))?;
                    }
                    _ => {
                        let row: Vec<Cell> = cards
                            .iter()
                            .enumerate()
                            .map(|(a, &c)| {
                                if (i + a) % 7 == 0 {
                                    Cell::MISSING
                                } else {
                                    Cell::present(((i + a) % c as usize) as u16 + 1)
                                }
                            })
                            .collect();
                        db.insert(&row).map_err(|e| format!("writer insert: {e}"))?;
                    }
                }
            }
            done.store(true, Ordering::SeqCst);
            Ok(())
        });
        // Each reader loops the whole workload over a fresh snapshot per
        // pass until the writer finishes (at least one pass always runs).
        let tallies = ibis::core::parallel::ExecPool::new(threads).broadcast(|r| {
            let mut passes = 0u64;
            let mut rows_seen = 0u64;
            let (mut w_lo, mut w_hi) = (u64::MAX, 0u64);
            loop {
                let snap = db.snapshot();
                let w = snap.watermark();
                w_lo = w_lo.min(w);
                w_hi = w_hi.max(w);
                for q in queries {
                    match snap.execute(q) {
                        Ok(rows) => rows_seen += rows.len() as u64,
                        Err(e) => return Err(format!("reader {r}: {e}")),
                    }
                }
                passes += 1;
                if done.load(Ordering::SeqCst) {
                    return Ok((passes, rows_seen, w_lo, w_hi));
                }
            }
        });
        writer.join().expect("writer thread panicked")?;
        let secs = start.elapsed().as_secs_f64();
        let mut total_q = 0u64;
        for (r, t) in tallies.into_iter().enumerate() {
            let (passes, rows_seen, w_lo, w_hi) = t?;
            total_q += passes * queries.len() as u64;
            println!(
                "  reader {r}: {passes} workload pass(es), {rows_seen} rows read, \
                 watermarks {w_lo}..={w_hi}"
            );
        }
        println!(
            "{} queries answered in {secs:.2}s ({:.0} q/s) while the writer applied {} mutations \
             ({:.0} mut/s); final watermark {}",
            total_q,
            total_q as f64 / secs,
            mutations,
            mutations as f64 / secs,
            db.snapshot().watermark()
        );
        Ok(())
    })
    .map_err(CliError::from)
}

/// `ibis stress` — the snapshot-isolation stress harness (differentially
/// checked; see [`ibis::oracle::stress`]).
fn stress(args: &[String]) -> Result<(), CliError> {
    let (_, flags) = parse_flags(args);
    let threads = match flags.get("threads") {
        Some(s) => s
            .split(',')
            .map(|t| num::<usize>(t.trim(), "thread degree"))
            .collect::<Result<Vec<_>, _>>()?,
        None => vec![1, 8],
    };
    if threads.is_empty() || threads.contains(&0) {
        return Err("--threads must be a comma-separated list of degrees ≥ 1".into());
    }
    let readers: usize = flags
        .get("readers")
        .map_or(Ok(8), |s| num(s, "reader count"))?;
    if readers == 0 {
        return Err("--readers must be at least 1".into());
    }
    let cfg = ibis::oracle::StressConfig {
        seed: flags.get("seed").map_or(Ok(1), |s| num(s, "seed"))?,
        rows: flags.get("rows").map_or(Ok(96), |s| num(s, "row count"))?,
        readers,
        mutations: if flags.contains_key("no-writer") {
            0
        } else {
            flags
                .get("mutations")
                .map_or(Ok(10_000), |s| num(s, "mutation count"))?
        },
        checkpoint_every: flags
            .get("checkpoint-every")
            .map_or(Ok(0), |s| num(s, "checkpoint interval"))?,
        threads,
        durable: flags.contains_key("durable"),
        ..ibis::oracle::StressConfig::default()
    };
    println!(
        "stress harness: seed {}, {} rows, {} reader(s) vs {}, {} backend, degrees {:?}",
        cfg.seed,
        cfg.rows,
        cfg.readers,
        if cfg.mutations == 0 {
            "no writer".to_string()
        } else {
            format!("1 writer × {} mutation(s)", cfg.mutations)
        },
        if cfg.durable { "durable" } else { "in-memory" },
        cfg.threads
    );
    let start = std::time::Instant::now();
    let report =
        ibis::oracle::stress::run(&cfg).map_err(|e| format!("harness scaffolding failed: {e}"))?;
    println!(
        "{} in {:.1}s",
        report.summary(),
        start.elapsed().as_secs_f64()
    );
    if report.ok() {
        println!("every snapshot matched its schedule prefix exactly");
        return Ok(());
    }
    for f in report.failures.iter().take(10) {
        println!(
            "FAILED {}: {}",
            f.check,
            f.detail.lines().next().unwrap_or("")
        );
    }
    Err(CliError::Runtime(format!(
        "{} failing check(s)",
        report.failures.len()
    )))
}

fn oracle(args: &[String]) -> Result<(), CliError> {
    let (_, flags) = parse_flags(args);
    let cfg = ibis::oracle::OracleConfig {
        cases: flags
            .get("cases")
            .map_or(Ok(200), |s| num(s, "case count"))?,
        seed: flags.get("seed").map_or(Ok(1), |s| num(s, "seed"))?,
        corpus_dir: Some(
            flags
                .get("corpus")
                .map_or_else(|| "tests/regressions".into(), std::path::PathBuf::from),
        ),
        max_failures: flags
            .get("max-failures")
            .map_or(Ok(3), |s| num(s, "failure cap"))?,
        case_budget_ms: flags
            .get("case-budget-ms")
            .map_or(Ok(10_000), |s| num(s, "case budget"))?,
        ..ibis::oracle::OracleConfig::default()
    };
    println!(
        "oracle: {} cases, seed {}, repros → {}",
        cfg.cases,
        cfg.seed,
        cfg.corpus_dir
            .as_deref()
            .unwrap_or_else(|| std::path::Path::new("-"))
            .display()
    );
    let start = std::time::Instant::now();
    let report = ibis::oracle::run(&cfg);
    println!(
        "ran {} cases / {} checks in {:.1}s",
        report.cases_run,
        report.checks_run,
        start.elapsed().as_secs_f64()
    );
    println!("{}", report.timing_summary());
    if let Some(&(idx, ms)) = report.slowest.first() {
        println!("slowest case: #{idx} at {ms} ms");
    }
    if report.ok() {
        println!("all checks passed");
        return Ok(());
    }
    for bug in &report.bugs {
        println!("FAILED case {}: {}", bug.case_idx, bug.failure.check);
        println!("  {}", bug.failure.detail.lines().next().unwrap_or(""));
        println!(
            "  minimized to {} rows × {} attrs, {} queries{}",
            bug.minimized.dataset.n_rows(),
            bug.minimized.dataset.n_attrs(),
            bug.minimized.queries.len(),
            match &bug.repro_path {
                Some(p) => format!(" — repro written to {}", p.display()),
                None => String::new(),
            }
        );
    }
    Err(CliError::Runtime(format!(
        "{} failing case(s)",
        report.bugs.len()
    )))
}

/// `ibis serve` — expose a database over the `IBQP` wire protocol (see
/// `ibis::server`): lock-free snapshot reads on a fixed worker pool with
/// batching, per-request deadlines, and admission control.
fn serve(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        workers: {
            let n: usize = flags
                .get("workers")
                .map_or(Ok(defaults.workers), |s| num(s, "worker count"))?;
            if n == 0 {
                return Err("--workers must be at least 1".into());
            }
            n
        },
        max_batch: {
            let n: usize = flags
                .get("max-batch")
                .map_or(Ok(defaults.max_batch), |s| num(s, "batch size"))?;
            if n == 0 {
                return Err("--max-batch must be at least 1".into());
            }
            n
        },
        queue_high_water: flags
            .get("queue-high-water")
            .map_or(Ok(defaults.queue_high_water), |s| {
                num(s, "queue high-water mark")
            })?,
        default_deadline_ms: flags
            .get("deadline-ms")
            .map_or(Ok(defaults.default_deadline_ms), |s| {
                num(s, "deadline milliseconds")
            })?,
        trace_sample: flags
            .get("trace-sample")
            .map_or(Ok(defaults.trace_sample), |s| num(s, "trace sample rate"))?,
        slow_log_size: {
            let n: usize = flags
                .get("slow-log")
                .map_or(Ok(defaults.slow_log_size), |s| num(s, "slow log size"))?;
            if n == 0 {
                return Err("--slow-log must be at least 1".into());
            }
            n
        },
    };
    if config.trace_sample == 0 && flags.contains_key("slow-log") {
        return Err(
            "--trace-sample 0 disables request tracing, so the slow-query \
             log never fills and --slow-log is useless; drop --slow-log or \
             use a non-zero --trace-sample"
                .into(),
        );
    }
    let db = if let Some(dir) = flags.get("data-dir") {
        if !pos.is_empty() {
            return Err("--data-dir serves the durable directory; \
                        it cannot be combined with a dataset file"
                .into());
        }
        ConcurrentDb::open_durable(std::path::Path::new(dir))
            .map_err(|e| format!("cannot open data directory {dir:?}: {e}"))?
    } else {
        let path = pos
            .first()
            .ok_or("usage: ibis serve FILE.ibds [flags] | ibis serve --data-dir DIR [flags]")?;
        let shard_rows: usize = flags
            .get("shard-rows")
            .map_or(Ok(4096), |s| num(s, "shard rows"))?;
        if shard_rows == 0 {
            return Err("--shard-rows must be at least 1".into());
        }
        ConcurrentDb::from_sharded(ShardedDb::new(load_dataset(path)?, shard_rows))
    };
    let addr = flags.get("addr").map_or("127.0.0.1:7431", String::as_str);
    let snap = db.snapshot();
    let handle = Server::start(Arc::new(db), addr, config.clone())
        .map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
    println!(
        "serving {} rows × {} attrs on {} ({} worker(s), batch ≤ {}, \
         queue high-water {}, default deadline {} ms)",
        snap.n_rows(),
        snap.n_attrs(),
        handle.addr(),
        config.workers,
        config.max_batch,
        config.queue_high_water,
        config.default_deadline_ms
    );
    drop(snap);
    // Scripts and tests read the bound address from this file; with
    // `--addr 127.0.0.1:0` it is the only way to learn the chosen port.
    if let Some(path) = flags.get("addr-file") {
        std::fs::write(path, handle.addr().to_string())
            .map_err(|e| format!("cannot write address file {path:?}: {e}"))?;
    }
    match flags.get("duration-secs") {
        Some(s) => {
            let secs: u64 = num(s, "duration")?;
            std::thread::sleep(std::time::Duration::from_secs(secs));
            handle.shutdown();
            println!("served for {secs}s, shut down cleanly");
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    Ok(())
}

/// `ibis query … --addr` — send an already-parsed query to a running
/// server over IBQP. The local FILE supplies only the schema; answers
/// come from (and are labelled with) the server's snapshot watermark, so
/// row ids are printed without re-reading cells from the possibly-stale
/// local file.
fn server_query(
    addr: &str,
    q: &RangeQuery,
    deadline_ms: u32,
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<(), CliError> {
    let mut client = ibis::server::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr:?}: {e}"))?;
    let response = if flags.contains_key("count") {
        client.count(q, deadline_ms)
    } else {
        client.query(q, deadline_ms)
    }
    .map_err(|e| format!("query request to {addr:?} failed: {e}"))?;
    match response {
        ibis::server::Response::Count { watermark, count } => {
            println!(
                "{count} rows match under {} (server watermark {watermark})",
                q.policy()
            );
        }
        ibis::server::Response::Rows { watermark, rows } => {
            println!(
                "{} rows match under {} (server watermark {watermark})",
                rows.len(),
                q.policy()
            );
            let limit: usize = flags.get("limit").map_or(Ok(20), |s| num(s, "limit"))?;
            for r in rows.iter().take(limit) {
                println!("  row {r}");
            }
            if rows.len() > limit {
                println!("  … {} more (use --limit)", rows.len() - limit);
            }
        }
        ibis::server::Response::Error { code, message } => {
            return Err(CliError::Runtime(format!(
                "server refused the query ({code:?}): {message}"
            )));
        }
        other => {
            return Err(CliError::Runtime(format!(
                "unexpected response from {addr:?}: {other:?}"
            )));
        }
    }
    Ok(())
}

/// `ibis stats --addr` — one `STATS` request against a running server,
/// rendered in the requested view (summary, `--json`, `--prom`, `--slow`).
fn server_stats(
    addr: &str,
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<(), CliError> {
    let mut client = ibis::server::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr:?}: {e}"))?;
    let want_slow = flags.contains_key("slow");
    let report = client
        .stats(want_slow)
        .map_err(|e| format!("STATS request to {addr:?} failed: {e}"))?;
    if flags.contains_key("json") {
        println!("{}", report.metrics_json);
        return Ok(());
    }
    let snap = ibis::obs::Snapshot::from_json(&report.metrics_json)
        .map_err(|e| format!("malformed metrics from {addr:?}: {e}"))?;
    if flags.contains_key("prom") {
        print!("{}", snap.to_prometheus());
        return Ok(());
    }
    if want_slow {
        print!("{}", render_slow_queries(&report.slow_queries));
        return Ok(());
    }
    print!("{}", render_server_stats(addr, &report, &snap));
    Ok(())
}

/// `ibis top` — poll `STATS` and redraw a terminal dashboard.
fn top(args: &[String]) -> Result<(), CliError> {
    let (pos, flags) = parse_flags(args);
    if !pos.is_empty() {
        return Err("usage: ibis top --addr HOST:PORT [--interval-ms MS] [--iterations N]".into());
    }
    let addr = req(&flags, "addr")?;
    let interval_ms: u64 = flags
        .get("interval-ms")
        .map_or(Ok(1000), |s| num(s, "interval milliseconds"))?;
    if interval_ms == 0 {
        return Err("--interval-ms must be at least 1".into());
    }
    let iterations: Option<u64> = flags
        .get("iterations")
        .map(|s| num(s, "iteration count"))
        .transpose()?;
    if iterations == Some(0) {
        return Err("--iterations must be at least 1".into());
    }
    let mut client = ibis::server::Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr:?}: {e}"))?;
    let mut drawn = 0u64;
    loop {
        let report = client
            .stats(true)
            .map_err(|e| format!("STATS request to {addr:?} failed: {e}"))?;
        let snap = ibis::obs::Snapshot::from_json(&report.metrics_json)
            .map_err(|e| format!("malformed metrics from {addr:?}: {e}"))?;
        // Clear the screen and park the cursor before every frame; a
        // dumb-terminal consumer just sees frames separated by escapes.
        print!("\x1b[2J\x1b[H{}", render_top(addr, &report, &snap));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        drawn += 1;
        if iterations.is_some_and(|n| drawn >= n) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    println!();
    Ok(())
}

/// `12345` µs → `"12.3 ms"`; sub-millisecond values keep µs resolution.
fn fmt_us(us: u64) -> String {
    if us >= 1000 {
        format!("{:.1} ms", us as f64 / 1000.0)
    } else {
        format!("{us} µs")
    }
}

/// The `ibis stats --addr` summary view: headline serving gauges plus the
/// windowed (rolling) throughput and latency quantiles.
fn render_server_stats(
    addr: &str,
    report: &ibis::server::StatsReport,
    snap: &ibis::obs::Snapshot,
) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "stats for {addr} — watermark {}, uptime {:.1}s",
        report.watermark,
        report.uptime_ms as f64 / 1000.0
    );
    let _ = writeln!(
        out,
        "queue {} (high-water {})   workers {}/{} busy",
        report.queue_depth, report.queue_high_water, report.workers_busy, report.workers
    );
    let rate = snap
        .window_counters
        .get("server.responses")
        .map_or(0.0, |w| w.rate_per_sec());
    if let Some(w) = snap.windows.get("server.request_us") {
        let h = w.merged();
        let _ = writeln!(
            out,
            "window (last ~{}s): {rate:.1} req/s, p50 {}, p99 {}",
            w.bucket_ms * u64::from(w.capacity) / 1000,
            fmt_us(h.p50()),
            fmt_us(h.p99()),
        );
    } else {
        let _ = writeln!(out, "window: no requests yet ({rate:.1} req/s)");
    }
    let c = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let _ = writeln!(
        out,
        "lifetime: {} requests, {} admitted, {} shed, {} expired, {} traced",
        c("server.requests"),
        c("server.admitted"),
        c("server.shed_overload"),
        c("server.shed_deadline"),
        c("server.traced"),
    );
    let wc = |name: &str| snap.window_counters.get(name).map_or(0, |w| w.total());
    let (m, nm) = (
        wc("server.policy_is_match"),
        wc("server.policy_is_not_match"),
    );
    if m + nm > 0 {
        let _ = writeln!(
            out,
            "policy split (window): is-match {:.1}%, is-not-match {:.1}%",
            100.0 * m as f64 / (m + nm) as f64,
            100.0 * nm as f64 / (m + nm) as f64,
        );
    }
    out
}

/// The `ibis stats --addr --slow` view: the server's slow-query log,
/// worst-first, with the queue/execute split and per-phase counter deltas.
fn render_slow_queries(slow: &[ibis::server::SlowQuery]) -> String {
    use std::fmt::Write as _;
    if slow.is_empty() {
        return "slow-query log is empty (is the server tracing? see serve --trace-sample)\n"
            .to_string();
    }
    let mut out = String::new();
    for (i, s) in slow.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>2}. request {}  total {} (queue {} + exec {})  watermark {}",
            i + 1,
            s.request_id,
            fmt_us(s.total_us),
            fmt_us(s.queue_us),
            fmt_us(s.exec_us),
            s.watermark
        );
        let _ = writeln!(out, "    plan: {}", s.plan);
        let counters: Vec<String> = s.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(out, "    counters: {}", counters.join(" "));
        for p in &s.phases {
            let pc: Vec<String> = p.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(
                out,
                "      {:<12} ×{:<4} {:>10}  {}",
                p.name,
                p.spans,
                fmt_us(p.total_ns / 1000),
                pc.join(" ")
            );
        }
    }
    out
}

/// One `ibis top` frame: the stats summary plus the worst slow queries.
fn render_top(
    addr: &str,
    report: &ibis::server::StatsReport,
    snap: &ibis::obs::Snapshot,
) -> String {
    use std::fmt::Write as _;
    let mut out = format!("ibis top — {addr}\n\n");
    out.push_str(&render_server_stats(addr, report, snap));
    if !report.slow_queries.is_empty() {
        let _ = writeln!(out, "\nslow queries (worst {}):", report.slow_queries.len());
        for s in report.slow_queries.iter().take(5) {
            let _ = writeln!(
                out,
                "  {:>10}  (queue {} + exec {})  {}",
                fmt_us(s.total_us),
                fmt_us(s.queue_us),
                fmt_us(s.exec_us),
                s.plan
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["data.ibds", "--rows", "100", "--count", "--out", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (pos, flags) = parse_flags(&args);
        assert_eq!(pos, vec!["data.ibds"]);
        assert_eq!(flags.get("rows").unwrap(), "100");
        assert_eq!(flags.get("count").unwrap(), "true");
        assert_eq!(flags.get("out").unwrap(), "x");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_ok()); // help
    }

    #[test]
    fn malformed_flags_are_usage_errors_with_exit_code_2() {
        let s = |x: &str| x.to_string();
        // Malformed numeric values, missing required flags, unknown
        // commands and enum values: all usage errors → exit code 2.
        let usage_cases: Vec<Vec<String>> = vec![
            vec![
                s("generate"),
                s("--rows"),
                s("abc"),
                s("--kind"),
                s("census"),
                s("--out"),
                s("x"),
            ],
            vec![
                s("generate"),
                s("--rows"),
                s("-4"),
                s("--kind"),
                s("census"),
                s("--out"),
                s("x"),
            ],
            vec![
                s("generate"),
                s("--rows"),
                s("10"),
                s("--kind"),
                s("census"),
            ],
            vec![
                s("generate"),
                s("--rows"),
                s("10"),
                s("--kind"),
                s("martian"),
                s("--out"),
                s("x"),
            ],
            vec![s("stress"), s("--mutations"), s("1e5")],
            vec![s("stress"), s("--threads"), s("1,x")],
            vec![s("oracle"), s("--cases"), s("many")],
            vec![s("crash"), s("--bit-flips"), s("2.5")],
            vec![s("serve"), s("--workers"), s("zero")],
            vec![s("serve")],
            vec![s("serve"), s("x.ibds"), s("--slow-log"), s("0")],
            vec![s("serve"), s("x.ibds"), s("--trace-sample"), s("often")],
            // Tracing disabled + an explicit slow-log size: the log could
            // never fill, so the combination is rejected up front.
            vec![
                s("serve"),
                s("x.ibds"),
                s("--trace-sample"),
                s("0"),
                s("--slow-log"),
                s("4"),
            ],
            vec![s("top")],
            vec![s("top"), s("--addr"), s("h:1"), s("--interval-ms"), s("0")],
            vec![s("top"), s("--addr"), s("h:1"), s("--iterations"), s("0")],
            vec![s("top"), s("stray"), s("--addr"), s("h:1")],
            vec![s("stats"), s("x.ibds"), s("--addr"), s("h:1")],
            vec![
                s("query"),
                s("x.ibds"),
                s("a = 1"),
                s("--addr"),
                s("h:1"),
                s("--index"),
                s("x.bre"),
            ],
            vec![
                s("query"),
                s("x.ibds"),
                s("a = 1"),
                s("--addr"),
                s("h:1"),
                s("--profile"),
            ],
            vec![
                s("query"),
                s("--data-dir"),
                s("d"),
                s("a = 1"),
                s("--addr"),
                s("h:1"),
            ],
            vec![s("frobnicate")],
        ];
        for args in usage_cases {
            let err = run(&args).unwrap_err();
            assert!(
                matches!(err, CliError::Usage(_)),
                "{args:?} should be a usage error, got {err:?}"
            );
            assert_eq!(err.exit_code(), 2, "{args:?}");
        }
        // A well-formed command that fails while running exits with 1.
        let err = run(&[s("stats"), s("/no/such/file.ibds")]).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "got {err:?}");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn serve_subcommand_answers_queries_over_loopback() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.ibds").to_string_lossy().into_owned();
        let addr_file = dir.join("addr.txt").to_string_lossy().into_owned();
        let s = |x: &str| x.to_string();
        run(&[
            s("generate"),
            s("--kind"),
            s("census"),
            s("--rows"),
            s("300"),
            s("--out"),
            data.clone(),
        ])
        .unwrap();
        let serve_args: Vec<String> = vec![
            s("serve"),
            data.clone(),
            s("--addr"),
            s("127.0.0.1:0"),
            s("--addr-file"),
            addr_file.clone(),
            s("--shard-rows"),
            s("64"),
            s("--workers"),
            s("2"),
            s("--duration-secs"),
            s("3"),
        ];
        let server = std::thread::spawn(move || run(&serve_args));
        // The server writes its bound address once the listener is up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&addr_file) {
                if !a.is_empty() {
                    break a;
                }
            }
            assert!(std::time::Instant::now() < deadline, "no address file");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let mut client = ibis::server::Client::connect(&addr).unwrap();
        assert_eq!(client.ping().unwrap(), ibis::server::Response::Pong);
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 2)], MissingPolicy::IsMatch).unwrap();
        match client.query(&q, 0).unwrap() {
            ibis::server::Response::Rows { rows, .. } => assert!(!rows.is_empty()),
            other => panic!("expected rows, got {other:?}"),
        }
        drop(client);
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_views_and_top_poll_a_live_server() {
        let s = |x: &str| x.to_string();
        let data = census_scaled(500, 11);
        let db = ConcurrentDb::from_sharded(ShardedDb::new(data.clone(), 128));
        let config = ibis::server::ServerConfig {
            workers: 2,
            trace_sample: 1,
            ..Default::default()
        };
        let handle = ibis::server::Server::start(Arc::new(db), "127.0.0.1:0", config).unwrap();
        let addr = handle.addr().to_string();
        let mut client = ibis::server::Client::connect(&addr).unwrap();
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 2)], MissingPolicy::IsMatch).unwrap();
        for _ in 0..5 {
            client.count(&q, 10_000).unwrap();
        }
        // `ibis query --addr` sends traffic through the CLI path: FILE
        // supplies the schema, the answer comes from the server.
        let dir = std::env::temp_dir().join(format!("ibis_cli_netq_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("d.ibds");
        data.save(&file).unwrap();
        let fpath = file.to_str().unwrap().to_string();
        let query_text = format!("{} between 1 and 2", data.column(0).name());
        run(&[
            s("query"),
            fpath.clone(),
            query_text.clone(),
            s("--addr"),
            addr.clone(),
            s("--count"),
        ])
        .unwrap();
        run(&[
            s("query"),
            fpath,
            query_text,
            s("--addr"),
            addr.clone(),
            s("--limit"),
            s("2"),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        for view in [None, Some("--json"), Some("--prom"), Some("--slow")] {
            let mut args = vec![s("stats"), s("--addr"), addr.clone()];
            if let Some(v) = view {
                args.push(s(v));
            }
            run(&args).unwrap_or_else(|e| panic!("stats {view:?} failed: {e:?}"));
        }
        run(&[
            s("top"),
            s("--addr"),
            addr.clone(),
            s("--interval-ms"),
            s("5"),
            s("--iterations"),
            s("2"),
        ])
        .unwrap();
        handle.shutdown();
    }

    #[test]
    fn server_stat_views_render_the_wire_report() {
        let report = ibis::server::StatsReport {
            watermark: 42,
            queue_depth: 3,
            queue_high_water: 64,
            workers: 4,
            workers_busy: 2,
            uptime_ms: 34_200,
            metrics_json: String::new(),
            slow_queries: vec![ibis::server::SlowQuery {
                request_id: 17,
                watermark: 42,
                plan: "a0∈[1,3] (IsNotMatch)".into(),
                queue_us: 120,
                exec_us: 3400,
                total_us: 3520,
                counters: vec![("bitmaps_accessed".into(), 8)],
                phases: vec![ibis::server::SlowPhase {
                    name: "db.shard".into(),
                    spans: 4,
                    total_ns: 3_200_000,
                    counters: vec![("bitmaps_accessed".into(), 8)],
                }],
            }],
        };
        let mut snap = ibis::obs::Snapshot::default();
        snap.counters.insert("server.requests".into(), 100);
        snap.counters.insert("server.admitted".into(), 95);
        snap.counters.insert("server.shed_overload".into(), 5);
        let summary = render_server_stats("h:1", &report, &snap);
        assert!(summary.contains("watermark 42"), "{summary}");
        assert!(summary.contains("queue 3 (high-water 64)"), "{summary}");
        assert!(summary.contains("95 admitted, 5 shed"), "{summary}");
        let slow = render_slow_queries(&report.slow_queries);
        assert!(slow.contains("request 17"), "{slow}");
        assert!(slow.contains("queue 120 µs + exec 3.4 ms"), "{slow}");
        assert!(slow.contains("db.shard"), "{slow}");
        assert!(slow.contains("bitmaps_accessed=8"), "{slow}");
        let frame = render_top("h:1", &report, &snap);
        assert!(frame.starts_with("ibis top — h:1"), "{frame}");
        assert!(frame.contains("slow queries (worst 1):"), "{frame}");
        assert!(render_slow_queries(&[]).contains("log is empty"));
    }

    #[test]
    fn oracle_subcommand_runs_a_small_clean_batch() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_oracle_{}", std::process::id()));
        let s = |x: &str| x.to_string();
        run(&[
            s("oracle"),
            s("--cases"),
            s("4"),
            s("--seed"),
            s("99"),
            s("--corpus"),
            dir.to_string_lossy().into_owned(),
        ])
        .unwrap();
        // A clean run writes nothing into the corpus directory.
        assert!(!dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_generate_index_query() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.ibds").to_string_lossy().into_owned();
        let idx = dir.join("d.bre").to_string_lossy().into_owned();
        let s = |x: &str| x.to_string();
        run(&[
            s("generate"),
            s("--kind"),
            s("census"),
            s("--rows"),
            s("300"),
            s("--out"),
            data.clone(),
        ])
        .unwrap();
        run(&[s("stats"), data.clone()]).unwrap();
        run(&[
            s("index"),
            data.clone(),
            s("--encoding"),
            s("bre"),
            s("--out"),
            idx.clone(),
        ])
        .unwrap();
        // Query through the saved index and by scan; the printed counts are
        // not captured here, but both paths must succeed.
        let d = Dataset::load(&data).unwrap();
        let attr = d.column(0).name().to_string();
        let text = format!("{attr} = 1");
        run(&[s("query"), data.clone(), text.clone(), s("--count")]).unwrap();
        run(&[
            s("query"),
            data.clone(),
            text.clone(),
            s("--index"),
            idx,
            s("--not-match"),
            s("--threads"),
            s("2"),
        ])
        .unwrap();
        assert!(
            run(&[s("query"), data.clone(), text, s("--threads"), s("0")]).is_err(),
            "zero threads rejected"
        );
        run(&[
            s("race"),
            data,
            s("--queries"),
            s("5"),
            s("--k"),
            s("2"),
            s("--threads"),
            s("2"),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adaptive_index_round_trips_through_the_cli() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_adaptive_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.ibds").to_string_lossy().into_owned();
        let s = |x: &str| x.to_string();
        run(&[
            s("generate"),
            s("--kind"),
            s("census"),
            s("--rows"),
            s("300"),
            s("--out"),
            data.clone(),
        ])
        .unwrap();
        let d = Dataset::load(&data).unwrap();
        let text = format!("{} = 1", d.column(0).name());
        // Both adaptive surfaces: the container-exact index (its own IBAD
        // magic) and a paper encoding stored in adaptive containers (the
        // generic bitmap format with backend name "adaptive").
        for (encoding, backend) in [("adaptive", None), ("bre", Some("adaptive"))] {
            let idx = dir
                .join(format!("d.{encoding}.ad"))
                .to_string_lossy()
                .into_owned();
            let mut args = vec![
                s("index"),
                data.clone(),
                s("--encoding"),
                s(encoding),
                s("--out"),
                idx.clone(),
            ];
            if let Some(b) = backend {
                args.extend([s("--backend"), s(b)]);
            }
            run(&args).unwrap();
            run(&[
                s("query"),
                data.clone(),
                text.clone(),
                s("--index"),
                idx,
                s("--count"),
                s("--profile"),
            ])
            .unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_flags_render_and_write_parseable_json() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_prof_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.ibds").to_string_lossy().into_owned();
        let idx = dir.join("d.bee").to_string_lossy().into_owned();
        let json = dir.join("prof.json").to_string_lossy().into_owned();
        let s = |x: &str| x.to_string();
        run(&[
            s("generate"),
            s("--kind"),
            s("census"),
            s("--rows"),
            s("250"),
            s("--out"),
            data.clone(),
        ])
        .unwrap();
        run(&[
            s("index"),
            data.clone(),
            s("--encoding"),
            s("bee"),
            s("--out"),
            idx.clone(),
        ])
        .unwrap();
        let d = Dataset::load(&data).unwrap();
        let text = format!("{} = 1", d.column(0).name());
        // Span tree + phase table through a saved index, and the JSON file
        // must parse back through the snapshot parser.
        run(&[
            s("query"),
            data.clone(),
            text.clone(),
            s("--index"),
            idx,
            s("--profile"),
            s("--profile-json"),
            json.clone(),
            s("--threads"),
            s("2"),
        ])
        .unwrap();
        let written = std::fs::read_to_string(&json).unwrap();
        let snap = ibis::obs::Snapshot::from_json(&written).unwrap();
        assert!(snap.spans.iter().any(|sp| sp.name == "query"));
        assert!(snap.spans.iter().any(|sp| sp.name == "bitmap.fetch"));
        // --profile with no index profiles the scan baseline.
        run(&[s("query"), data.clone(), text, s("--profile")]).unwrap();
        // And the race phase table.
        run(&[
            s("race"),
            data,
            s("--queries"),
            s("3"),
            s("--k"),
            s("2"),
            s("--threads"),
            s("2"),
            s("--profile"),
        ])
        .unwrap();
        assert!(!ibis::obs::is_enabled(), "recorder left enabled");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_export_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_csv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv_in = dir.join("in.csv").to_string_lossy().into_owned();
        let ibds = dir.join("d.ibds").to_string_lossy().into_owned();
        let csv_out = dir.join("out.csv").to_string_lossy().into_owned();
        std::fs::write(&csv_in, "age,city\n30,london\nNA,paris\n41,?\n").unwrap();
        let s = |x: &str| x.to_string();
        run(&[s("import"), csv_in, s("--out"), ibds.clone()]).unwrap();
        let d = Dataset::load(&ibds).unwrap();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.column(0).missing_count(), 1);
        run(&[s("query"), ibds.clone(), s("age between 1 and 2")]).unwrap();
        run(&[s("query"), ibds.clone(), s("city = \"london\"")]).unwrap();
        assert!(run(&[s("query"), ibds.clone(), s("city = \"atlantis\"")]).is_err());
        run(&[s("export"), ibds, s("--out"), csv_out.clone()]).unwrap();
        assert!(std::fs::read_to_string(&csv_out)
            .unwrap()
            .starts_with("age,city"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_cli_cycle() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_durable_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.ibds").to_string_lossy().into_owned();
        let db_dir = dir.join("db").to_string_lossy().into_owned();
        let db_dir2 = dir.join("db2").to_string_lossy().into_owned();
        let bak = dir.join("d.ibbk").to_string_lossy().into_owned();
        let s = |x: &str| x.to_string();
        run(&[
            s("generate"),
            s("--kind"),
            s("census"),
            s("--rows"),
            s("200"),
            s("--out"),
            data.clone(),
        ])
        .unwrap();
        run(&[
            s("init"),
            db_dir.clone(),
            s("--from"),
            data.clone(),
            s("--shard-rows"),
            s("64"),
        ])
        .unwrap();
        // Initializing over an existing database is refused.
        assert!(run(&[s("init"), db_dir.clone(), s("--from"), data.clone()]).is_err());
        let d = Dataset::load(&data).unwrap();
        let text = format!("{} = 1", d.column(0).name());
        run(&[
            s("query"),
            s("--data-dir"),
            db_dir.clone(),
            text.clone(),
            s("--count"),
            s("--threads"),
            s("2"),
        ])
        .unwrap();
        assert!(
            run(&[
                s("query"),
                s("--data-dir"),
                db_dir.clone(),
                text.clone(),
                s("--shard-rows"),
                s("8"),
            ])
            .is_err(),
            "--data-dir excludes --shard-rows"
        );
        run(&[s("validate"), db_dir.clone()]).unwrap();
        run(&[s("checkpoint"), db_dir.clone()]).unwrap();
        run(&[s("backup"), db_dir.clone(), s("--out"), bak.clone()]).unwrap();
        run(&[s("restore"), bak.clone(), s("--into"), db_dir2.clone()]).unwrap();
        run(&[
            s("query"),
            s("--data-dir"),
            db_dir2.clone(),
            text,
            s("--not-match"),
            s("--profile"),
        ])
        .unwrap();
        // Restoring over the now-populated directory is refused.
        assert!(run(&[s("restore"), bak, s("--into"), db_dir2]).is_err());
        assert!(run(&[s("validate"), s("/no/such/dir")]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stress_subcommand_runs_a_small_schedule() {
        let s = |x: &str| x.to_string();
        run(&[
            s("stress"),
            s("--seed"),
            s("3"),
            s("--rows"),
            s("40"),
            s("--readers"),
            s("2"),
            s("--mutations"),
            s("120"),
            s("--threads"),
            s("1,2"),
        ])
        .unwrap();
        // Durable backend with interleaved checkpoints, and the
        // writer-off mode (readers race each other over watermark 0).
        run(&[
            s("stress"),
            s("--rows"),
            s("40"),
            s("--readers"),
            s("2"),
            s("--mutations"),
            s("80"),
            s("--durable"),
            s("--checkpoint-every"),
            s("32"),
            s("--threads"),
            s("1,2"),
        ])
        .unwrap();
        run(&[
            s("stress"),
            s("--rows"),
            s("30"),
            s("--readers"),
            s("2"),
            s("--no-writer"),
            s("--threads"),
            s("1"),
        ])
        .unwrap();
        assert!(
            run(&[s("stress"), s("--readers"), s("0")]).is_err(),
            "zero readers rejected"
        );
        assert!(
            run(&[s("stress"), s("--threads"), s("0")]).is_err(),
            "zero thread degree rejected"
        );
    }

    #[test]
    fn race_live_serves_under_a_streaming_writer() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_live_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.ibds").to_string_lossy().into_owned();
        let s = |x: &str| x.to_string();
        run(&[
            s("generate"),
            s("--kind"),
            s("census"),
            s("--rows"),
            s("200"),
            s("--out"),
            data.clone(),
        ])
        .unwrap();
        run(&[
            s("race"),
            data,
            s("--live"),
            s("400"),
            s("--shard-rows"),
            s("64"),
            s("--queries"),
            s("4"),
            s("--k"),
            s("2"),
            s("--threads"),
            s("2"),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_subcommand_runs_a_small_schedule() {
        let s = |x: &str| x.to_string();
        run(&[
            s("crash"),
            s("--seed"),
            s("11"),
            s("--rows"),
            s("40"),
            s("--kill-points"),
            s("4"),
            s("--bit-flips"),
            s("2"),
            s("--threads"),
            s("1,2"),
        ])
        .unwrap();
        assert!(
            run(&[s("crash"), s("--threads"), s("0")]).is_err(),
            "zero thread degree rejected"
        );
    }

    #[test]
    fn query_errors_are_reported() {
        let dir = std::env::temp_dir().join(format!("ibis_cli_err_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.ibds").to_string_lossy().into_owned();
        let s = |x: &str| x.to_string();
        run(&[
            s("generate"),
            s("--kind"),
            s("synthetic"),
            s("--rows"),
            s("50"),
            s("--out"),
            data.clone(),
        ])
        .unwrap();
        assert!(run(&[s("query"), data.clone(), s("nonexistent_attr = 1")]).is_err());
        assert!(run(&[s("query"), s("/no/such/file.ibds"), s("a = 1")]).is_err());
        assert!(run(&[
            s("index"),
            data,
            s("--encoding"),
            s("zzz"),
            s("--out"),
            s("/tmp/x")
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
