//! A small database layer over the paper's indexes: index selection per
//! query (the paper's §6 insights, made executable) plus append support via
//! a delta store.
//!
//! The paper's conclusions give a decision rule:
//!
//! * equality encoding is "optimal for point queries" and wins for very
//!   narrow ranges (cost `min(AS, 1−AS)·C + 1` bitmaps per dimension);
//! * range encoding "typically offers the best time performance" for
//!   range queries (≤ 3 bitmaps per dimension);
//! * VA-files trade query time for by-far-the-smallest index, so they are
//!   the fallback when memory is constrained.
//!
//! [`IncompleteDb`] keeps whichever indexes its [`DbConfig`] enables, plans
//! each query with exactly that rule ([`IncompleteDb::explain`] shows the
//! decision), and merges results from an unindexed *delta store* so rows
//! can be appended without rebuilding — the update scenario the paper
//! raises when it notes index size "becomes important as database updates
//! become more frequent". [`IncompleteDb::compact`] folds the delta back
//! into the indexes.

use ibis_bitmap::{EqualityBitmapIndex, RangeBitmapIndex};
use ibis_bitvec::Wah;
use ibis_core::{Cell, Dataset, RangeQuery, Result, RowSet};
use ibis_vafile::VaFile;

/// Which indexes an [`IncompleteDb`] maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbConfig {
    /// Maintain an equality-encoded bitmap index (point-query specialist).
    pub bee: bool,
    /// Maintain a range-encoded bitmap index (range-query specialist).
    pub bre: bool,
    /// Maintain a VA-file (smallest footprint).
    pub va: bool,
}

impl Default for DbConfig {
    /// Everything on — the planner always has its preferred index.
    fn default() -> DbConfig {
        DbConfig {
            bee: true,
            bre: true,
            va: true,
        }
    }
}

impl DbConfig {
    /// Memory-constrained profile: VA-file only (the paper's
    /// smallest-index regime).
    pub fn compact_profile() -> DbConfig {
        DbConfig {
            bee: false,
            bre: false,
            va: true,
        }
    }
}

/// The access path the planner chose for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Equality-encoded bitmap index.
    Bee,
    /// Range-encoded bitmap index.
    Bre,
    /// VA-file scan + refine.
    Va,
    /// Sequential scan (no suitable index enabled).
    Scan,
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPath::Bee => write!(f, "bitmap-equality"),
            AccessPath::Bre => write!(f, "bitmap-range"),
            AccessPath::Va => write!(f, "va-file"),
            AccessPath::Scan => write!(f, "sequential-scan"),
        }
    }
}

/// The planner's decision and its cost model inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Chosen access path for the indexed (base) rows.
    pub path: AccessPath,
    /// Estimated bitmap reads under BEE (`Σ min(w, C−w) + 1`).
    pub bee_bitmap_estimate: usize,
    /// Estimated bitmap reads under BRE (≤ 3 per dimension).
    pub bre_bitmap_estimate: usize,
    /// Rows the delta store will scan on top of the index.
    pub delta_rows: usize,
    /// Histogram-based estimate of matching base rows (independence
    /// assumption across attributes; exact for one-attribute keys).
    pub estimated_rows: f64,
}

/// An incomplete relation with maintained indexes and an append delta.
#[derive(Clone, Debug)]
pub struct IncompleteDb {
    config: DbConfig,
    base: Dataset,
    bee: Option<EqualityBitmapIndex<Wah>>,
    bre: Option<RangeBitmapIndex<Wah>>,
    va: Option<VaFile>,
    /// Appended rows not yet folded into the indexes, row-major.
    delta: Vec<Vec<Cell>>,
    /// Tombstoned row ids (base or delta numbering), applied as a result
    /// filter until the next compaction renumbers the survivors.
    deleted: std::collections::BTreeSet<u32>,
    /// Per-column value histograms of the base dataset, cached so the
    /// planner's cardinality estimates don't rescan columns on every query.
    histograms: Vec<Vec<usize>>,
}

impl IncompleteDb {
    /// Builds over `dataset` with the default (all-indexes) config.
    pub fn new(dataset: Dataset) -> IncompleteDb {
        IncompleteDb::with_config(dataset, DbConfig::default())
    }

    /// Builds over `dataset`, maintaining only the configured indexes.
    pub fn with_config(dataset: Dataset, config: DbConfig) -> IncompleteDb {
        IncompleteDb {
            config,
            bee: config.bee.then(|| EqualityBitmapIndex::build(&dataset)),
            bre: config.bre.then(|| RangeBitmapIndex::build(&dataset)),
            va: config.va.then(|| VaFile::build(&dataset)),
            histograms: dataset.columns().iter().map(|c| c.value_counts()).collect(),
            base: dataset,
            delta: Vec::new(),
            deleted: std::collections::BTreeSet::new(),
        }
    }

    /// Total live rows (indexed base + unindexed delta − tombstones).
    pub fn n_rows(&self) -> usize {
        self.base.n_rows() + self.delta.len() - self.deleted.len()
    }

    /// Tombstoned rows awaiting compaction.
    pub fn deleted_len(&self) -> usize {
        self.deleted.len()
    }

    /// Deletes a row by id. Returns `true` if the row existed and was
    /// alive. Deleted rows disappear from query results immediately; their
    /// storage is reclaimed (and surviving rows are **renumbered**) at the
    /// next [`compact`](IncompleteDb::compact).
    pub fn delete(&mut self, row: u32) -> bool {
        if (row as usize) < self.base.n_rows() + self.delta.len() {
            self.deleted.insert(row)
        } else {
            false
        }
    }

    /// Rows awaiting compaction.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// The schema width.
    pub fn n_attrs(&self) -> usize {
        self.base.n_attrs()
    }

    /// Total bytes held by the maintained indexes.
    pub fn index_bytes(&self) -> usize {
        self.bee.as_ref().map_or(0, |i| i.size_bytes())
            + self.bre.as_ref().map_or(0, |i| i.size_bytes())
            + self.va.as_ref().map_or(0, |i| i.size_bytes())
    }

    /// Appends one row (validated against the schema). The row lands in the
    /// delta store; queries see it immediately, indexes pick it up at the
    /// next [`compact`](IncompleteDb::compact).
    pub fn insert(&mut self, row: &[Cell]) -> Result<()> {
        ibis_core::validate_row(
            row,
            |a| self.base.column(a).cardinality(),
            self.base.n_attrs(),
        )?;
        self.delta.push(row.to_vec());
        Ok(())
    }

    /// Folds the delta store into the base dataset, drops tombstoned rows
    /// (renumbering the survivors), and rebuilds the maintained indexes.
    pub fn compact(&mut self) {
        if self.delta.is_empty() && self.deleted.is_empty() {
            return;
        }
        let base_rows = self.base.n_rows();
        let columns = self
            .base
            .columns()
            .iter()
            .enumerate()
            .map(|(attr, col)| {
                let mut raw: Vec<u16> = col
                    .raw()
                    .iter()
                    .enumerate()
                    .filter(|(row, _)| !self.deleted.contains(&(*row as u32)))
                    .map(|(_, &v)| v)
                    .collect();
                raw.extend(self.delta.iter().enumerate().filter_map(|(i, row)| {
                    let id = (base_rows + i) as u32;
                    (!self.deleted.contains(&id)).then(|| row[attr].raw())
                }));
                ibis_core::Column::from_raw(col.name(), col.cardinality(), raw)
                    .expect("delta rows validated on insert")
            })
            .collect();
        self.base = Dataset::new(columns).expect("equal lengths by construction");
        self.histograms = self
            .base
            .columns()
            .iter()
            .map(|c| c.value_counts())
            .collect();
        self.delta.clear();
        self.deleted.clear();
        if self.config.bee {
            self.bee = Some(EqualityBitmapIndex::build(&self.base));
        }
        if self.config.bre {
            self.bre = Some(RangeBitmapIndex::build(&self.base));
        }
        if self.config.va {
            self.va = Some(VaFile::build(&self.base));
        }
    }

    /// Estimated matching base rows from the cached histograms (product of
    /// exact per-attribute selectivities; the independence assumption of the
    /// paper's GS formula).
    fn estimate_rows(&self, query: &RangeQuery) -> f64 {
        let n = self.base.n_rows();
        if n == 0 {
            return 0.0;
        }
        let sel: f64 = query
            .predicates()
            .iter()
            .map(|p| {
                let counts = &self.histograms[p.attr];
                let mut hits: usize = counts[p.interval.lo as usize..=p.interval.hi as usize]
                    .iter()
                    .sum();
                if query.policy() == ibis_core::MissingPolicy::IsMatch {
                    hits += counts[0];
                }
                hits as f64 / n as f64
            })
            .product();
        sel * n as f64
    }

    /// Plans a query: which access path, at what estimated bitmap cost.
    pub fn explain(&self, query: &RangeQuery) -> Result<Plan> {
        query.validate(&self.base)?;
        let mut bee_cost = 0usize;
        let mut bre_cost = 0usize;
        for p in query.predicates() {
            let c = self.base.column(p.attr).cardinality() as usize;
            let w = p.interval.width() as usize;
            bee_cost += w.min(c - w) + 1;
            bre_cost += 3;
        }
        let path = if self.config.bee && (query.is_point() || bee_cost < bre_cost) {
            AccessPath::Bee
        } else if self.config.bre {
            AccessPath::Bre
        } else if self.config.bee {
            AccessPath::Bee
        } else if self.config.va {
            AccessPath::Va
        } else {
            AccessPath::Scan
        };
        Ok(Plan {
            path,
            bee_bitmap_estimate: bee_cost,
            bre_bitmap_estimate: bre_cost,
            delta_rows: self.delta.len(),
            estimated_rows: self.estimate_rows(query),
        })
    }

    /// Executes a query over base + delta, via the planned access path.
    pub fn execute(&self, query: &RangeQuery) -> Result<RowSet> {
        let plan = self.explain(query)?;
        let base_rows = match plan.path {
            AccessPath::Bee => self
                .bee
                .as_ref()
                .expect("planned => enabled")
                .execute(query)?,
            AccessPath::Bre => self
                .bre
                .as_ref()
                .expect("planned => enabled")
                .execute(query)?,
            AccessPath::Va => self
                .va
                .as_ref()
                .expect("planned => enabled")
                .execute(&self.base, query)?,
            AccessPath::Scan => ibis_core::scan::execute(&self.base, query),
        };
        // Delta rows are scanned with the semantic definition directly.
        let offset = self.base.n_rows() as u32;
        let policy = query.policy();
        let delta_hits = self.delta.iter().enumerate().filter_map(|(i, row)| {
            let ok = query
                .predicates()
                .iter()
                .all(|p| policy.cell_matches(row[p.attr], p.interval));
            ok.then_some(offset + i as u32)
        });
        let combined = base_rows.union(&RowSet::from_sorted(delta_hits.collect()));
        if self.deleted.is_empty() {
            return Ok(combined);
        }
        Ok(RowSet::from_sorted(
            combined
                .iter()
                .filter(|r| !self.deleted.contains(r))
                .collect(),
        ))
    }

    /// Counts matching rows.
    pub fn count(&self, query: &RangeQuery) -> Result<usize> {
        Ok(self.execute(query)?.len())
    }

    /// The cell at (`row`, `attr`), addressing base then delta.
    pub fn cell(&self, row: usize, attr: usize) -> Cell {
        if row < self.base.n_rows() {
            self.base.cell(row, attr)
        } else {
            self.delta[row - self.base.n_rows()][attr]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::gen::{census_scaled, workload, QuerySpec};
    use ibis_core::{scan, MissingPolicy, Predicate};

    fn v(x: u16) -> Cell {
        Cell::present(x)
    }
    fn m() -> Cell {
        Cell::MISSING
    }

    fn db() -> IncompleteDb {
        IncompleteDb::new(census_scaled(400, 401))
    }

    #[test]
    fn planner_prefers_bee_for_points_and_bre_for_ranges() {
        let d = db();
        let point = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(d.explain(&point).unwrap().path, AccessPath::Bee);
        // A wide range on a high-cardinality attribute.
        let attr = (0..d.n_attrs())
            .find(|&a| d.base.column(a).cardinality() >= 50)
            .unwrap();
        let c = d.base.column(attr).cardinality();
        let range = RangeQuery::new(
            vec![Predicate::range(attr, 5, c - 4)],
            MissingPolicy::IsMatch,
        )
        .unwrap();
        assert_eq!(d.explain(&range).unwrap().path, AccessPath::Bre);
    }

    #[test]
    fn planner_respects_config() {
        let data = census_scaled(200, 402);
        let vonly = IncompleteDb::with_config(data.clone(), DbConfig::compact_profile());
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(vonly.explain(&q).unwrap().path, AccessPath::Va);
        let none = IncompleteDb::with_config(
            data,
            DbConfig {
                bee: false,
                bre: false,
                va: false,
            },
        );
        assert_eq!(none.explain(&q).unwrap().path, AccessPath::Scan);
        assert_eq!(none.index_bytes(), 0);
        // All paths agree regardless of config.
        assert_eq!(vonly.execute(&q).unwrap(), none.execute(&q).unwrap());
    }

    #[test]
    fn execute_matches_scan_on_workloads() {
        let data = census_scaled(500, 403);
        let d = IncompleteDb::new(data.clone());
        for policy in MissingPolicy::ALL {
            let spec = QuerySpec {
                n_queries: 10,
                k: 4,
                global_selectivity: 0.03,
                policy,
                candidate_attrs: vec![],
            };
            for q in workload(&data, &spec, 404) {
                assert_eq!(d.execute(&q).unwrap(), scan::execute(&data, &q), "{policy}");
            }
        }
    }

    #[test]
    fn inserts_are_visible_before_and_after_compaction() {
        let data = Dataset::from_rows(&[("a", 5), ("b", 5)], &[vec![v(1), v(2)], vec![v(3), m()]])
            .unwrap();
        let mut d = IncompleteDb::new(data);
        d.insert(&[v(5), v(5)]).unwrap();
        d.insert(&[m(), v(1)]).unwrap();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.delta_len(), 2);

        let q = RangeQuery::new(vec![Predicate::range(0, 4, 5)], MissingPolicy::IsMatch).unwrap();
        // Row 2 (value 5) and row 3 (missing, match policy).
        assert_eq!(d.execute(&q).unwrap().rows(), &[2, 3]);
        assert_eq!(d.explain(&q).unwrap().delta_rows, 2);

        d.compact();
        assert_eq!(d.delta_len(), 0);
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.execute(&q).unwrap().rows(), &[2, 3]);
        assert_eq!(d.cell(2, 0), v(5));
        assert_eq!(d.cell(3, 0), m());
    }

    #[test]
    fn insert_validates_schema() {
        let mut d = db();
        assert!(d.insert(&[v(1)]).is_err(), "wrong width");
        let card0 = d.base.column(0).cardinality();
        let mut row = vec![m(); d.n_attrs()];
        row[0] = v(card0 + 1);
        assert!(d.insert(&row).is_err(), "out of domain");
        assert_eq!(d.delta_len(), 0, "failed inserts leave no residue");
    }

    #[test]
    fn heavy_insert_then_compact_differential() {
        let data = census_scaled(200, 405);
        let mut d = IncompleteDb::new(data.clone());
        // Append 100 rows sampled (shifted) from the same distribution.
        for i in 0..100usize {
            let src = i % data.n_rows();
            let row: Vec<Cell> = (0..data.n_attrs()).map(|a| data.cell(src, a)).collect();
            d.insert(&row).unwrap();
        }
        let spec = QuerySpec {
            n_queries: 8,
            k: 3,
            global_selectivity: 0.05,
            policy: MissingPolicy::IsNotMatch,
            candidate_attrs: vec![],
        };
        let queries = workload(&data, &spec, 406);
        let before: Vec<RowSet> = queries.iter().map(|q| d.execute(q).unwrap()).collect();
        d.compact();
        let after: Vec<RowSet> = queries.iter().map(|q| d.execute(q).unwrap()).collect();
        assert_eq!(before, after, "compaction must not change answers");
    }

    #[test]
    fn count_matches_execute() {
        let d = db();
        let q = RangeQuery::new(vec![Predicate::point(1, 1)], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(d.count(&q).unwrap(), d.execute(&q).unwrap().len());
    }
}

#[cfg(test)]
mod estimate_tests {
    use super::*;
    use ibis_core::gen::census_scaled;
    use ibis_core::{MissingPolicy, Predicate};

    #[test]
    fn plan_carries_cardinality_estimate() {
        let data = census_scaled(1_000, 410);
        let db = IncompleteDb::new(data.clone());
        // One-attribute estimates are exact.
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsNotMatch).unwrap();
        let plan = db.explain(&q).unwrap();
        let actual = db.execute(&q).unwrap().len() as f64;
        assert!(
            (plan.estimated_rows - actual).abs() < 1e-9,
            "{plan:?} vs {actual}"
        );
    }
}

#[cfg(test)]
mod delete_tests {
    use super::*;
    use ibis_core::{scan, MissingPolicy, Predicate};

    fn v(x: u16) -> Cell {
        Cell::present(x)
    }
    fn m() -> Cell {
        Cell::MISSING
    }

    fn small_db() -> IncompleteDb {
        let data = Dataset::from_rows(
            &[("a", 5)],
            &[vec![v(1)], vec![v(3)], vec![m()], vec![v(3)], vec![v(5)]],
        )
        .unwrap();
        IncompleteDb::new(data)
    }

    #[test]
    fn deletes_hide_rows_immediately() {
        let mut d = small_db();
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(d.execute(&q).unwrap().rows(), &[1, 2, 3]);
        assert!(d.delete(1));
        assert!(!d.delete(1), "double delete is a no-op");
        assert!(!d.delete(99), "unknown row");
        assert_eq!(d.execute(&q).unwrap().rows(), &[2, 3]);
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.deleted_len(), 1);
    }

    #[test]
    fn deletes_apply_to_delta_rows_too() {
        let mut d = small_db();
        d.insert(&[v(3)]).unwrap(); // row id 5
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(d.execute(&q).unwrap().rows(), &[1, 3, 5]);
        assert!(d.delete(5));
        assert_eq!(d.execute(&q).unwrap().rows(), &[1, 3]);
    }

    #[test]
    fn compaction_renumbers_and_preserves_answers() {
        let mut d = small_db();
        d.insert(&[v(2)]).unwrap(); // id 5
        d.delete(0); // value 1
        d.delete(3); // one of the 3s
        let q =
            RangeQuery::new(vec![Predicate::range(0, 1, 5)], MissingPolicy::IsNotMatch).unwrap();
        let live_before = d.count(&q).unwrap();
        d.compact();
        assert_eq!(d.deleted_len(), 0);
        assert_eq!(d.delta_len(), 0);
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.count(&q).unwrap(), live_before);
        // Survivors renumbered 0..4: values 3, ∅, 5, 2 in original order.
        assert_eq!(d.cell(0, 0), v(3));
        assert_eq!(d.cell(1, 0), m());
        assert_eq!(d.cell(2, 0), v(5));
        assert_eq!(d.cell(3, 0), v(2));
        // And the rebuilt index agrees with a scan over the new base.
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(d.execute(&q).unwrap(), scan::execute(&d.base, &q));
    }

    #[test]
    fn delete_everything() {
        let mut d = small_db();
        for r in 0..5 {
            assert!(d.delete(r));
        }
        assert_eq!(d.n_rows(), 0);
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 5)], MissingPolicy::IsMatch).unwrap();
        assert!(d.execute(&q).unwrap().is_empty());
        d.compact();
        assert_eq!(d.n_rows(), 0);
        assert!(d.execute(&q).unwrap().is_empty());
    }
}
