//! # ibis — Indexing Incomplete Databases
//!
//! A reproduction of *"Indexing Incomplete Databases"* (Canahuate, Gibas,
//! Ferhatosmanoglu, EDBT 2006): bitmap indexes (equality- and range-encoded,
//! WAH-compressed) and VA-files adapted to answer range and point queries
//! over relations with **missing data**, under both of the paper's query
//! semantics (*missing-is-match* and *missing-is-not-match*), plus the
//! baselines the paper compares against (R-tree, MOSAIC, bitstring-augmented
//! index, sequential scan).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — data model ([`Dataset`](ibis_core::Dataset), [`RangeQuery`](ibis_core::RangeQuery), [`MissingPolicy`](ibis_core::MissingPolicy)),
//!   scan ground truth, selectivity algebra, workload generators;
//! * [`bitvec`] — uncompressed, WAH- and BBC-compressed bit vectors;
//! * [`bitmap`] — the paper's BEE and BRE bitmap indexes;
//! * [`vafile`] — the paper's VA-file and the VA+-file extension;
//! * [`baseline`] — R-tree, B+-tree, MOSAIC, bitstring-augmented index.
//!
//! ## Quickstart
//!
//! ```
//! use ibis::prelude::*;
//!
//! // A tiny incomplete relation: two attributes with domain 1..=5.
//! let data = Dataset::from_rows(
//!     &[("age_band", 5), ("income_band", 5)],
//!     &[
//!         vec![Cell::present(2), Cell::present(4)],
//!         vec![Cell::MISSING, Cell::present(3)],
//!         vec![Cell::present(5), Cell::MISSING],
//!     ],
//! )
//! .unwrap();
//!
//! // Index it three ways.
//! let bee = EqualityBitmapIndex::<Wah>::build(&data);
//! let bre = RangeBitmapIndex::<Wah>::build(&data);
//! let va = VaFile::build(&data);
//!
//! // One query, both semantics.
//! let key = vec![Predicate::range(0, 2, 3), Predicate::range(1, 3, 5)];
//! for policy in MissingPolicy::ALL {
//!     let q = RangeQuery::new(key.clone(), policy).unwrap();
//!     let truth = ibis::core::scan::execute(&data, &q);
//!     assert_eq!(bee.execute(&q).unwrap(), truth);
//!     assert_eq!(bre.execute(&q).unwrap(), truth);
//!     assert_eq!(va.execute(&data, &q).unwrap(), truth);
//! }
//! ```

pub mod db;

pub use ibis_baseline as baseline;
pub use ibis_bitmap as bitmap;
pub use ibis_bitvec as bitvec;
pub use ibis_core as core;
pub use ibis_vafile as vafile;

/// Commonly used items in one import.
pub mod prelude {
    pub use ibis_baseline::{
        BPlusTree, BitstringAugmented, Mosaic, RTree, RTreeIncomplete, SequentialScan,
    };
    pub use ibis_bitmap::{
        DecomposedBitmapIndex, EqualityBitmapIndex, IntervalBitmapIndex, RangeBitmapIndex,
    };
    pub use ibis_bitvec::{Bbc, BitVec64, Wah};
    pub use ibis_core::{
        Cell, Column, Dataset, DatasetBuilder, Interval, MissingPolicy, Predicate, RangeQuery,
        RowSet,
    };
    pub use ibis_vafile::{VaFile, VaPlusFile};

    pub use crate::db::{AccessPath, DbConfig, IncompleteDb, Plan};
}
