//! # ibis — Indexing Incomplete Databases
//!
//! A reproduction of *"Indexing Incomplete Databases"* (Canahuate, Gibas,
//! Ferhatosmanoglu, EDBT 2006): bitmap indexes (equality- and range-encoded,
//! WAH-compressed) and VA-files adapted to answer range and point queries
//! over relations with **missing data**, under both of the paper's query
//! semantics (*missing-is-match* and *missing-is-not-match*), plus the
//! baselines the paper compares against (R-tree, MOSAIC, bitstring-augmented
//! index, sequential scan).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — data model ([`Dataset`](ibis_core::Dataset), [`RangeQuery`](ibis_core::RangeQuery), [`MissingPolicy`](ibis_core::MissingPolicy)),
//!   scan ground truth, selectivity algebra, workload generators;
//! * [`bitvec`] — uncompressed, WAH- and BBC-compressed bit vectors;
//! * [`bitmap`] — the paper's BEE and BRE bitmap indexes;
//! * [`vafile`] — the paper's VA-file and the VA+-file extension;
//! * [`baseline`] — R-tree, B+-tree, MOSAIC, bitstring-augmented index;
//! * [`storage`] — the database layer ([`db::IncompleteDb`],
//!   [`db::ShardedDb`]), the durable engine
//!   ([`DurableDb`](storage::DurableDb)): write-ahead log, checkpoints,
//!   atomic MANIFEST, backup/restore, crash recovery — and the
//!   snapshot-isolated serving layer
//!   ([`ConcurrentDb`](storage::ConcurrentDb)): lock-free reader
//!   snapshots under streaming writes;
//! * [`server`] — networked query serving ([`Server`](server::Server),
//!   the `IBQP` wire protocol, the blocking [`Client`](server::Client)):
//!   CRC-framed requests executed in coalesced batches on lock-free
//!   snapshots, with per-request deadlines and admission control (see the
//!   `ibis serve` CLI subcommand and the `loadgen` bin);
//! * [`oracle`] — seeded differential + metamorphic correctness oracle over
//!   every access method (see the `ibis oracle` CLI subcommand);
//! * [`obs`] — zero-dependency observability (tracing spans, metrics,
//!   profile snapshots) behind `ibis query --profile` and
//!   [`profile::profile_method`].
//!
//! ## Quickstart
//!
//! Every index family implements the engine-layer
//! [`AccessMethod`](ibis_core::AccessMethod) trait, and [`db::IncompleteDb`]
//! plans across whichever methods it maintains:
//!
//! ```
//! use ibis::prelude::*;
//!
//! // A tiny incomplete relation: two attributes with domain 1..=5.
//! let data = Dataset::from_rows(
//!     &[("age_band", 5), ("income_band", 5)],
//!     &[
//!         vec![Cell::present(2), Cell::present(4)],
//!         vec![Cell::MISSING, Cell::present(3)],
//!         vec![Cell::present(5), Cell::MISSING],
//!     ],
//! )
//! .unwrap();
//!
//! // A database maintaining the default index trio (BEE + BRE + VA).
//! let db = IncompleteDb::new(data.clone());
//!
//! // One query, both semantics.
//! let key = vec![Predicate::range(0, 2, 3), Predicate::range(1, 3, 5)];
//! for policy in MissingPolicy::ALL {
//!     let q = RangeQuery::new(key.clone(), policy).unwrap();
//!     let truth = ibis::core::scan::execute(&data, &q);
//!     assert_eq!(db.execute(&q).unwrap(), truth);
//!
//!     // The planner explains its choice: every candidate with its cost
//!     // (on a 3-row relation the VA-file's few words of codes win).
//!     let plan = db.explain(&q).unwrap();
//!     assert_eq!(plan.chosen, "va-file");
//!     assert_eq!(plan.candidates.len(), 4); // bee, bre, va, seqscan
//!
//!     // Or drive one index directly through the common trait.
//!     let bee = EqualityBitmapIndex::<Wah>::build(&data);
//!     let (rows, cost) = bee.execute_with_cost(&q).unwrap();
//!     assert_eq!(rows, truth);
//!     assert!(cost.bitmaps_accessed > 0);
//! }
//! ```

pub mod profile;

/// The database layer (planner registry + sharded store), re-exported from
/// [`ibis_storage`] where it lives alongside the durable engine.
pub mod db {
    pub use ibis_storage::db::*;
}

pub use ibis_baseline as baseline;
pub use ibis_bitmap as bitmap;
pub use ibis_bitvec as bitvec;
pub use ibis_core as core;
pub use ibis_obs as obs;
pub use ibis_oracle as oracle;
pub use ibis_server as server;
pub use ibis_storage as storage;
pub use ibis_vafile as vafile;

/// Commonly used items in one import.
pub mod prelude {
    pub use ibis_baseline::{
        BPlusTree, BitstringAugmented, Mosaic, RTree, RTreeIncomplete, SequentialScan,
    };
    pub use ibis_bitmap::{
        AdaptiveBitmapIndex, DecomposedBitmapIndex, EqualityBitmapIndex, IntervalBitmapIndex,
        RangeBitmapIndex,
    };
    pub use ibis_bitvec::{Adaptive, Bbc, BitVec64, Wah};
    pub use ibis_core::{
        Cell, Column, Dataset, DatasetBuilder, Interval, MissingPolicy, Predicate, RangeQuery,
        RowSet,
    };
    pub use ibis_vafile::{VaFile, VaPlusFile};

    pub use ibis_core::{AccessMethod, WorkCounters};
    pub use ibis_obs::{Recorder, Snapshot};

    pub use crate::db::{CandidatePlan, DbConfig, IncompleteDb, Plan, ShardExecution, ShardedDb};
    pub use crate::profile::{profile_method, profile_sharded, QueryProfile};
    pub use ibis_server::{Server, ServerConfig, ServerHandle};
    pub use ibis_storage::{ConcurrentDb, DbSnapshot, DurableDb, ValidateReport};
}
