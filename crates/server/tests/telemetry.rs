//! The telemetry plane, proven over real loopback sockets:
//!
//! * `STATS`/`HEALTH` answer **off the worker pool** — they return while a
//!   deliberately saturated pool still has a deep backlog queued;
//! * `requests.admitted` is monotone across consecutive `STATS` reads, and
//!   the queue gauge is nonzero at overload;
//! * the server-side `server.request_us` histogram p99 agrees with the
//!   client's own exact per-request measurement within the log-linear
//!   histogram's ≤12.5% error (plus a little framing slack);
//! * the slow-query log's per-phase span counter deltas sum **exactly** to
//!   each logged query's final `WorkCounters` — the PR 4 profile
//!   invariant, extended across the wire.
//!
//! The obs recorder is process-global, so every test here serializes on
//! one lock and installs a fresh recorder before starting its server.

use ibis_core::gen::census_scaled;
use ibis_core::{MissingPolicy, Predicate, RangeQuery, WorkCounters};
use ibis_server::{Client, Request, Response, Server, ServerConfig};
use ibis_storage::ConcurrentDb;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn fresh_recorder() {
    ibis_obs::Recorder::enabled().install();
}

/// A deliberately expensive query (wide IsNotMatch range on the widest
/// attribute) so execution dominates framing overhead.
fn slow_query(db: &ConcurrentDb) -> RangeQuery {
    let snap = db.snapshot();
    let schema = snap.db().schema();
    let attr = (0..schema.n_attrs())
        .max_by_key(|&a| schema.column(a).cardinality())
        .unwrap();
    let c = schema.column(attr).cardinality();
    RangeQuery::new(
        vec![Predicate::range(attr, 1, c - 1)],
        MissingPolicy::IsNotMatch,
    )
    .unwrap()
}

fn metrics(report: &ibis_server::StatsReport) -> ibis_obs::Snapshot {
    ibis_obs::Snapshot::from_json(&report.metrics_json).expect("STATS metrics_json parses")
}

#[test]
fn stats_and_health_answer_off_pool_while_workers_are_saturated() {
    let _serial = serial();
    fresh_recorder();
    // One slow worker, no batching, a deep queue: the pool saturates and a
    // long backlog builds while we probe telemetry from the side.
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(4000, 901), 512));
    let config = ServerConfig {
        workers: 1,
        max_batch: 1,
        queue_high_water: 1024,
        trace_sample: 0,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", config).unwrap();
    let req = Request::Query {
        query: slow_query(&db),
        count_only: true,
        deadline_ms: 120_000,
    };
    let (mut tx, mut rx) = Client::connect(handle.addr()).unwrap().into_split();
    let n = 80;
    for _ in 0..n {
        tx.send(&req).unwrap();
    }

    // The single worker is busy for the whole burst; STATS and HEALTH on a
    // second connection must answer long before the backlog drains.
    let mut probe = Client::connect(handle.addr()).unwrap();
    let mut prev_admitted = 0u64;
    let mut saw_backlog = false;
    let mut saw_busy = false;
    for _ in 0..10 {
        let s = probe.stats(false).unwrap();
        let m = metrics(&s);
        let admitted = m.counters.get("server.admitted").copied().unwrap_or(0);
        assert!(
            admitted >= prev_admitted,
            "requests.admitted regressed: {admitted} < {prev_admitted}"
        );
        prev_admitted = admitted;
        saw_backlog |= s.queue_depth > 0;
        saw_busy |= s.workers_busy > 0;
        let h = probe.health().unwrap();
        assert_eq!(h.workers, 1);
        assert_eq!(h.queue_high_water, 1024);
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        saw_backlog,
        "queue gauge stayed zero under an 80-deep burst"
    );
    assert!(saw_busy, "workers_busy never observed nonzero");
    assert!(prev_admitted > 0, "admitted counter never moved");

    // The backlog still drains to completion afterwards.
    for _ in 0..n {
        match rx.recv().unwrap().1 {
            Response::Count { .. } | Response::Error { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn stats_shows_monotone_admitted_shed_at_overload_and_valid_prometheus() {
    let _serial = serial();
    fresh_recorder();
    // A 2-deep queue against a single slow worker: a burst must shed, and
    // STATS must expose the shed count, a (transiently) nonzero queue
    // gauge, and a Prometheus export that validates.
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(4000, 902), 512));
    let config = ServerConfig {
        workers: 1,
        max_batch: 1,
        queue_high_water: 2,
        trace_sample: 0,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", config).unwrap();
    let req = Request::Query {
        query: slow_query(&db),
        count_only: true,
        deadline_ms: 120_000,
    };
    let (mut tx, mut rx) = Client::connect(handle.addr()).unwrap().into_split();
    let n = 120;
    for _ in 0..n {
        tx.send(&req).unwrap();
    }
    let mut shed_seen = 0;
    for _ in 0..n {
        if let Response::Error { .. } = rx.recv().unwrap().1 {
            shed_seen += 1;
        }
    }
    assert!(shed_seen > 0, "a 2-deep queue must shed a 120-burst");

    let mut probe = Client::connect(handle.addr()).unwrap();
    let s = probe.stats(false).unwrap();
    let m = metrics(&s);
    let admitted = m.counters["server.admitted"];
    let shed = m.counters["server.shed_overload"];
    assert_eq!(m.counters["server.requests"], admitted + shed);
    assert_eq!(
        shed, shed_seen as u64,
        "server-side shed matches client view"
    );
    assert!(admitted > 0);
    // The same registry exports as valid Prometheus text.
    let prom = m.to_prometheus();
    ibis_obs::validate_prometheus(&prom).unwrap_or_else(|e| panic!("{e}\n{prom}"));
    assert!(prom.contains("ibis_server_admitted"), "{prom}");
    handle.shutdown();
}

#[test]
fn server_p99_matches_client_measurement_within_histogram_error() {
    let _serial = serial();
    fresh_recorder();
    // Closed-loop: one request outstanding, so server request_us (enqueue →
    // done) and the client's send → recv wall time measure the same event,
    // differing only by framing overhead — negligible against an
    // execution-dominated ms-scale query. The histogram may then add at
    // most its ≤12.5% bucket error.
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(4000, 903), 512));
    let config = ServerConfig {
        workers: 2,
        trace_sample: 0,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", config).unwrap();
    let q = slow_query(&db);
    let mut client = Client::connect(handle.addr()).unwrap();
    // Warm both sides (snapshot faulting, allocator, connection), then
    // reset the recorder so the histogram holds exactly the measured set.
    for _ in 0..5 {
        client.count(&q, 120_000).unwrap();
    }
    // A co-scheduled test suite can steal the CPU between the server's
    // `done` stamp and the client's `recv`, inflating one client-side
    // sample past the histogram-error bound — so a disagreeing round is
    // retried on a fresh recorder rather than trusted blindly.
    let mut last = String::new();
    let agreed = (0..3).any(|_| {
        fresh_recorder();
        let rounds = 40;
        let mut lat_us: Vec<u64> = Vec::new();
        for _ in 0..rounds {
            let t0 = Instant::now();
            match client.count(&q, 120_000).unwrap() {
                Response::Count { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
            lat_us.push(t0.elapsed().as_micros() as u64);
        }
        lat_us.sort_unstable();
        let client_p99 = lat_us[(lat_us.len() * 99).div_ceil(100).min(lat_us.len()) - 1] as f64;

        let s = client.stats(false).unwrap();
        let h = &metrics(&s).histograms["server.request_us"];
        assert_eq!(h.count, rounds);
        let server_p99 = h.p99() as f64;
        let rel = (client_p99 - server_p99).abs() / client_p99;
        last = format!("client={client_p99}µs server={server_p99}µs rel={rel:.3}");
        rel <= 0.15
    });
    assert!(agreed, "p99 disagrees beyond histogram error: {last}");
    handle.shutdown();
}

#[test]
fn slow_query_log_phase_deltas_sum_exactly_to_work_counters() {
    let _serial = serial();
    fresh_recorder();
    // Trace every query; the slow log then carries span trees whose
    // per-phase counter deltas must reproduce each query's WorkCounters.
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(800, 904), 128));
    let config = ServerConfig {
        workers: 2,
        trace_sample: 1,
        slow_log_size: 8,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", config).unwrap();
    let q = slow_query(&db);
    let mut client = Client::connect(handle.addr()).unwrap();
    for _ in 0..10 {
        assert!(matches!(
            client.count(&q, 120_000).unwrap(),
            Response::Count { .. }
        ));
    }
    let s = client.stats(true).unwrap();
    assert!(!s.slow_queries.is_empty(), "tracing every query must log");
    assert!(s.slow_queries.len() <= 8, "slow log is bounded");
    let mut prev_total = u64::MAX;
    for slow in &s.slow_queries {
        assert!(slow.total_us <= prev_total, "slow log is worst-first");
        prev_total = slow.total_us;
        assert!(slow.plan.contains('∈'), "plan is rendered: {:?}", slow.plan);
        assert!(!slow.phases.is_empty(), "traced request has phases");
        // Queue wait + execution account for the whole request (±1µs
        // truncation per duration split).
        assert!(
            slow.total_us.abs_diff(slow.queue_us + slow.exec_us) <= 2,
            "total {} != queue {} + exec {}",
            slow.total_us,
            slow.queue_us,
            slow.exec_us
        );
        // The wire invariant: per-phase span counter deltas sum exactly
        // to the final WorkCounters.
        let final_counters =
            WorkCounters::from_fields(slow.counters.iter().map(|(k, v)| (k.as_str(), *v)));
        let mut phase_sum = WorkCounters::zero();
        for p in &slow.phases {
            phase_sum.merge(WorkCounters::from_fields(
                p.counters.iter().map(|(k, v)| (k.as_str(), *v)),
            ));
        }
        assert!(!final_counters.is_zero(), "query did real work");
        assert_eq!(
            phase_sum, final_counters,
            "span deltas must sum to WorkCounters for request {}",
            slow.request_id
        );
    }
    // STATS without the flag omits the log but keeps the metrics.
    let lean = client.stats(false).unwrap();
    assert!(lean.slow_queries.is_empty());
    assert!(metrics(&lean).counters["server.traced"] >= 10);
    handle.shutdown();
}
