//! End-to-end serving tests over real loopback sockets: differential
//! correctness against direct snapshot execution, admission control under
//! deliberate overload, deadline enforcement, and protocol-error handling.

use ibis_core::gen::{census_scaled, workload, QuerySpec};
use ibis_core::{MissingPolicy, Predicate, RangeQuery};
use ibis_server::protocol::{read_frame, read_handshake, write_handshake};
use ibis_server::{Client, ErrorCode, Request, Response, Server, ServerConfig};
use ibis_storage::ConcurrentDb;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

/// A deliberately expensive query: a wide range on a high-cardinality
/// attribute under IsNotMatch semantics.
fn slow_query(db: &ConcurrentDb) -> RangeQuery {
    let snap = db.snapshot();
    let schema = snap.db().schema();
    let attr = (0..schema.n_attrs())
        .max_by_key(|&a| schema.column(a).cardinality())
        .unwrap();
    let c = schema.column(attr).cardinality();
    RangeQuery::new(
        vec![Predicate::range(attr, 1, c - 1)],
        MissingPolicy::IsNotMatch,
    )
    .unwrap()
}

fn mixed_workload(db: &ConcurrentDb, seed: u64, per_spec: usize) -> Vec<RangeQuery> {
    let schema = db.snapshot().db().schema().clone();
    let mut queries = Vec::new();
    for (i, (k, policy)) in [
        (1, MissingPolicy::IsMatch),
        (1, MissingPolicy::IsNotMatch),
        (3, MissingPolicy::IsMatch),
        (3, MissingPolicy::IsNotMatch),
    ]
    .into_iter()
    .enumerate()
    {
        let spec = QuerySpec {
            n_queries: per_spec,
            k,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        queries.extend(workload(&schema, &spec, seed + i as u64));
    }
    queries
}

#[test]
fn served_answers_are_bit_identical_to_direct_snapshot_execution() {
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(400, 601), 96));
    let queries = mixed_workload(&db, 602, 6);
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let snap = db.snapshot();
    for q in &queries {
        let direct = snap.execute_threads(q, 2).unwrap();
        match client.query(q, 0).unwrap() {
            Response::Rows { watermark, rows } => {
                assert_eq!(watermark, snap.watermark());
                assert_eq!(rows, direct.rows().to_vec(), "query {q:?}");
            }
            other => panic!("expected rows, got {other:?}"),
        }
        match client.count(q, 0).unwrap() {
            Response::Count { count, .. } => assert_eq!(count as usize, direct.len()),
            other => panic!("expected count, got {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn writes_are_visible_to_later_requests_at_a_higher_watermark() {
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(120, 603), 48));
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let q = RangeQuery::new(vec![Predicate::range(0, 1, 2)], MissingPolicy::IsMatch).unwrap();
    let Response::Rows { watermark: w0, .. } = client.query(&q, 0).unwrap() else {
        panic!("expected rows");
    };
    assert_eq!(w0, 0);
    db.delete(0).unwrap();
    let Response::Rows {
        watermark: w1,
        rows,
    } = client.query(&q, 0).unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(w1, 1, "later requests see the published mutation");
    assert_eq!(rows, db.snapshot().execute(&q).unwrap().rows().to_vec());
    handle.shutdown();
}

#[test]
fn ping_answers_and_bad_requests_keep_the_connection() {
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(60, 604), 32));
    let n_attrs = db.snapshot().n_attrs();
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.ping().unwrap(), Response::Pong);

    // Wire-valid but out of schema: attribute beyond the width.
    let bad = RangeQuery::new(
        vec![Predicate::range(n_attrs + 5, 1, 1)],
        MissingPolicy::IsMatch,
    )
    .unwrap();
    match client.query(&bad, 0).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad request, got {other:?}"),
    }
    // The connection survives the rejection.
    let good = RangeQuery::new(vec![Predicate::range(0, 1, 2)], MissingPolicy::IsMatch).unwrap();
    assert!(matches!(
        client.query(&good, 0).unwrap(),
        Response::Rows { .. }
    ));
    handle.shutdown();
}

#[test]
fn overload_sheds_explicitly_and_answers_every_request() {
    // One slow worker, a 2-deep queue: an open-loop burst must overflow
    // admission, and every overflowed request must still get an explicit
    // `Overloaded` answer rather than unbounded queueing.
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(4000, 605), 512));
    let config = ServerConfig {
        workers: 1,
        max_batch: 1,
        queue_high_water: 2,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", config).unwrap();
    let req = Request::Query {
        query: slow_query(&db),
        count_only: false,
        deadline_ms: 60_000,
    };
    let (mut tx, mut rx) = Client::connect(handle.addr()).unwrap().into_split();
    let n = 200;
    for _ in 0..n {
        tx.send(&req).unwrap();
    }
    let mut served = 0;
    let mut shed = 0;
    for _ in 0..n {
        match rx.recv().unwrap().1 {
            Response::Rows { .. } => served += 1,
            Response::Error {
                code: ErrorCode::Overloaded,
                ..
            } => shed += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(served + shed, n, "every request is answered exactly once");
    assert!(shed > 0, "a 2-deep queue must shed a 200-request burst");
    assert!(served > 0, "admitted requests are still served");
    handle.shutdown();
}

#[test]
fn expired_deadlines_never_return_rows() {
    // A 1 ms deadline against a backlogged single worker: late queries are
    // shed while queued (or answered DeadlineExceeded after execution) —
    // an expired request never gets rows.
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(4000, 606), 512));
    let config = ServerConfig {
        workers: 1,
        max_batch: 4,
        queue_high_water: 1024,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", config).unwrap();
    let req = Request::Query {
        query: slow_query(&db),
        count_only: false,
        deadline_ms: 1,
    };
    let (mut tx, mut rx) = Client::connect(handle.addr()).unwrap().into_split();
    let n = 60;
    for _ in 0..n {
        tx.send(&req).unwrap();
    }
    let mut expired = 0;
    for _ in 0..n {
        match rx.recv().unwrap().1 {
            Response::Rows { .. } => {}
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                ..
            } => expired += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(
        expired > 0,
        "a 1 ms budget against a 60-deep backlog must expire somewhere"
    );
    handle.shutdown();
}

#[test]
fn frame_corruption_gets_a_clean_protocol_error_then_disconnect() {
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(60, 607), 32));
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    write_handshake(&mut stream).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    read_handshake(&mut reader).unwrap();
    // A frame head claiming a liar's length: the server must answer with a
    // protocol error and drop the connection — never hang, never panic.
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.write_all(&0u32.to_le_bytes()).unwrap();
    let frame = read_frame(&mut reader).unwrap();
    assert_eq!(frame.request_id, 0);
    match Response::decode(&frame).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("protocol error"), "{message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    // The server closed its side: the next read hits EOF.
    assert!(read_frame(&mut reader).is_err());
    handle.shutdown();
}

#[test]
fn garbage_handshake_is_dropped_without_serving() {
    let db = Arc::new(ConcurrentDb::new_mem(census_scaled(60, 608), 32));
    let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    // No handshake comes back; the connection just closes.
    assert!(read_handshake(&mut reader).is_err());
    // A fresh, well-behaved client is unaffected.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.ping().unwrap(), Response::Pong);
    handle.shutdown();
}
