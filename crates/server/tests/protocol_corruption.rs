//! Failure-injection battery for the `IBQP` wire format, mirroring the
//! repo-level `tests/corruption.rs` discipline: truncated, bit-flipped,
//! and lying-length frames must yield a clean protocol error — never a
//! panic, a hang, or a huge allocation.

use ibis_core::{MissingPolicy, Predicate, RangeQuery};
use ibis_server::protocol::{read_frame, write_frame, Request, Response};
use ibis_server::{SlowPhase, SlowQuery, StatsReport};
use proptest::prelude::*;
use std::sync::LazyLock;

fn request_image() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let query = RangeQuery::new(
            vec![Predicate::range(0, 1, 3), Predicate::range(4, 2, 2)],
            MissingPolicy::IsNotMatch,
        )
        .unwrap();
        let (kind, body) = Request::Query {
            query,
            count_only: false,
            deadline_ms: 500,
        }
        .encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, kind, &body).unwrap();
        buf
    });
    BYTES.clone()
}

fn response_image() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let (kind, body) = Response::Rows {
            watermark: 12,
            rows: (0..200).collect(),
        }
        .encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, kind, &body).unwrap();
        buf
    });
    BYTES.clone()
}

/// A populated STATS response — the richest message on the wire (nested
/// slow-query list, counter pairs, embedded JSON), so the best fuzz bait.
fn stats_image() -> Vec<u8> {
    static BYTES: LazyLock<Vec<u8>> = LazyLock::new(|| {
        let (kind, body) = Response::Stats(Box::new(StatsReport {
            watermark: 42,
            queue_depth: 3,
            queue_high_water: 64,
            workers: 4,
            workers_busy: 2,
            uptime_ms: 9000,
            metrics_json: "{\"counters\":{}}".into(),
            slow_queries: vec![SlowQuery {
                request_id: 17,
                watermark: 42,
                plan: "a0∈[1,3] (IsNotMatch)".into(),
                queue_us: 120,
                exec_us: 3400,
                total_us: 3520,
                counters: vec![("bitmaps_accessed".into(), 8)],
                phases: vec![SlowPhase {
                    name: "db.shard".into(),
                    spans: 4,
                    total_ns: 3_200_000,
                    counters: vec![("bitmaps_accessed".into(), 8)],
                }],
            }],
        }))
        .encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, kind, &body).unwrap();
        buf
    });
    BYTES.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutated_request_frames_never_panic(pos in 0usize..4096, byte in any::<u8>()) {
        let mut buf = request_image();
        let i = pos % buf.len();
        buf[i] ^= byte;
        // Either the frame tears (io error) or — for a benign flip that
        // dodges the CRC — it decodes; both without panicking.
        if let Ok(frame) = read_frame(&mut buf.as_slice()) {
            let _ = Request::decode(&frame);
        }
    }

    #[test]
    fn mutated_response_frames_never_panic(pos in 0usize..4096, byte in any::<u8>()) {
        let mut buf = response_image();
        let i = pos % buf.len();
        buf[i] ^= byte;
        if let Ok(frame) = read_frame(&mut buf.as_slice()) {
            let _ = Response::decode(&frame);
        }
    }

    #[test]
    fn mutated_stats_frames_never_panic(pos in 0usize..4096, byte in any::<u8>()) {
        let mut buf = stats_image();
        let i = pos % buf.len();
        buf[i] ^= byte;
        if let Ok(frame) = read_frame(&mut buf.as_slice()) {
            let _ = Response::decode(&frame);
        }
    }

    #[test]
    fn truncated_frames_always_error(cut_frac in 0.0f64..0.999) {
        // The frame is length-prefixed and checksummed: every strict
        // truncation must be rejected, never mis-parsed or blocked on.
        for image in [request_image(), response_image(), stats_image()] {
            let cut = ((image.len() as f64) * cut_frac) as usize;
            prop_assert!(read_frame(&mut &image[..cut]).is_err());
        }
    }

    #[test]
    fn lying_slow_query_counts_stay_capped(n in any::<u16>()) {
        // Stamp an arbitrary slow-query count over a STATS body holding
        // exactly one entry: decode must fail on the missing bytes, never
        // reserve n entries up front.
        let image = stats_image();
        let frame = read_frame(&mut image.as_slice()).unwrap();
        // Body layout: watermark u64, 4×u32, uptime u64, metrics string
        // (u64 len + bytes), then the u16 slow-query count.
        let json_len =
            u64::from_le_bytes(frame.body[32..40].try_into().unwrap()) as usize;
        let count_at = 40 + json_len;
        let mut body = frame.body.clone();
        body[count_at..count_at + 2].copy_from_slice(&n.to_le_bytes());
        let mut buf = Vec::new();
        write_frame(&mut buf, frame.request_id, frame.kind, &body).unwrap();
        let reread = read_frame(&mut buf.as_slice()).unwrap();
        let decoded = Response::decode(&reread);
        if n == 1 {
            prop_assert!(decoded.is_ok());
        } else {
            prop_assert!(decoded.is_err(), "count {n} must not parse one entry");
        }
    }

    #[test]
    fn lying_length_fields_never_allocate(word in any::<u32>()) {
        // Stamp an arbitrary u32 over the length prefix: the reader must
        // fail cleanly (cap check or EOF or CRC) without reserving the
        // claimed amount.
        for image in [request_image(), response_image()] {
            let true_len = image.len() - 8;
            let mut buf = image;
            buf[..4].copy_from_slice(&word.to_le_bytes());
            let parsed = read_frame(&mut buf.as_slice());
            if word as usize != true_len {
                // Cap check, EOF, or CRC mismatch — always a clean error.
                prop_assert!(parsed.is_err(), "lying length {word} parsed");
            } else {
                prop_assert!(parsed.is_ok());
            }
        }
    }

    #[test]
    fn lying_predicate_counts_stay_capped(n in any::<u16>()) {
        // Rebuild a query body whose predicate count lies: decode must
        // fail cleanly on the missing bytes, never reserve n predicates.
        let mut body = Vec::new();
        body.push(0u8); // policy
        body.push(0u8); // count flag
        body.extend_from_slice(&100u32.to_le_bytes()); // deadline
        body.extend_from_slice(&n.to_le_bytes()); // lying predicate count
        body.extend_from_slice(&1u32.to_le_bytes()); // one real predicate…
        body.extend_from_slice(&1u16.to_le_bytes());
        body.extend_from_slice(&2u16.to_le_bytes());
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 1, &body).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        let decoded = Request::decode(&frame);
        if n != 1 {
            prop_assert!(decoded.is_err(), "count {n} must not parse one predicate");
        }
    }
}

#[test]
fn unknown_kinds_are_soft_errors() {
    for kind in [0u8, 9, 200] {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, kind, b"").unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert!(Request::decode(&frame).unwrap_err().contains("unknown"));
        assert!(Response::decode(&frame).is_err());
    }
}
