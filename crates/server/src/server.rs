//! The serving loop: accept → handshake → decode → admit → batch →
//! execute on a snapshot → respond.
//!
//! Threading model (one [`Server::start`] call):
//!
//! * **accept thread** — polls a non-blocking listener, spawning one
//!   reader thread per connection;
//! * **per-connection reader** — validates the handshake, then decodes
//!   frames. A `Ping` or a protocol rejection is answered immediately;
//!   a `Query` passes **admission control**: if the shared work queue is
//!   at its high-water mark the request is refused with
//!   [`ErrorCode::Overloaded`] right here — load is shed at the door, so
//!   queueing latency for admitted work stays bounded instead of
//!   collapsing;
//! * **per-connection writer** — drains a channel of encoded responses,
//!   so workers and the reader never block on a slow client socket;
//! * **fixed worker pool** (`config.workers` threads) — each wake drains
//!   up to `config.max_batch` queued jobs, groups the compatible ones
//!   with [`ibis_core::coalesce_compatible`], acquires **one** lock-free
//!   [`ConcurrentDb::snapshot`] per drain, and runs each group through
//!   [`DbSnapshot::execute_batch_threads`](ibis_storage::DbSnapshot::execute_batch_threads)
//!   — one dispatch amortized over the whole batch.
//!
//! Deadlines are enforced at the two scheduling boundaries: a job whose
//! deadline expired while queued is shed *before* execution, and a job
//! whose deadline expired *during* execution gets
//! [`ErrorCode::DeadlineExceeded`] instead of rows — an expired request
//! never returns results, and the overrun is bounded by one batch
//! execution. The default deadline is fed from the oracle's
//! `case_budget_ms` (see [`ServerConfig::default`]).

use crate::protocol::{
    read_frame, read_handshake, write_frame, write_handshake, ErrorCode, Request, Response,
};
use ibis_core::{coalesce_compatible, RangeQuery};
use ibis_storage::ConcurrentDb;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one serving instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Fixed worker-pool size draining the shared queue.
    pub workers: usize,
    /// Most queries one worker wake may drain and coalesce into batches.
    /// `1` disables coalescing (one query per dispatch).
    pub max_batch: usize,
    /// Admission high-water mark: a query arriving while the queue holds
    /// this many jobs is refused with [`ErrorCode::Overloaded`].
    pub queue_high_water: usize,
    /// Deadline applied to requests that carry `deadline_ms = 0`.
    pub default_deadline_ms: u64,
}

impl Default for ServerConfig {
    /// Defaults: 4 workers, batches of 8, a 256-deep queue, and the
    /// oracle's per-case time budget as the request deadline.
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            max_batch: 8,
            queue_high_water: 256,
            default_deadline_ms: ibis_oracle::OracleConfig::default().case_budget_ms,
        }
    }
}

/// One admitted query waiting for a worker.
struct Job {
    request_id: u64,
    query: RangeQuery,
    count_only: bool,
    deadline: Instant,
    enqueued: Instant,
    reply: mpsc::Sender<(u64, Response)>,
}

/// State shared by the accept loop, readers, and the worker pool.
struct Shared {
    db: Arc<ConcurrentDb>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// The serving entry point; see the module docs for the thread layout.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `db`. Returns a handle owning every spawned thread; dropping it
    /// shuts the server down.
    pub fn start(
        db: Arc<ConcurrentDb>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            config: ServerConfig {
                workers: config.workers.max(1),
                max_batch: config.max_batch.max(1),
                queue_high_water: config.queue_high_water.max(1),
                ..config
            },
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let conns: Arc<Mutex<Vec<Option<TcpStream>>>> = Arc::new(Mutex::new(Vec::new()));

        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(listener, &shared, &conns))
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            conns,
            accept: Some(accept),
            workers,
        })
    }
}

/// Owns a running server; [`addr`](ServerHandle::addr) is where clients
/// connect. Dropping the handle stops the accept loop, severs every open
/// connection, and joins the worker pool.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<Option<TcpStream>>>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port chosen).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops serving: new connections are refused, open sockets are torn
    /// down (in-flight requests may go unanswered), queued-but-unstarted
    /// jobs are dropped, and every server thread is joined.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // Severing the sockets unblocks reader threads parked in
        // `read_frame`; their writer threads follow when the senders drop.
        for s in self.conns.lock().expect("conn registry").iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Unstarted jobs still hold reply senders; dropping them lets the
        // per-connection writer threads drain and exit.
        self.shared.queue.lock().expect("queue").clear();
    }
}

/// Polls the non-blocking listener, spawning a reader per connection.
fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<Option<TcpStream>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                ibis_obs::counter_add("server.connections", 1);
                // Register a clone so shutdown can sever the socket; the
                // slot is cleared when the connection ends, and the socket
                // is explicitly shut down there too (a registered clone
                // would otherwise hold it half-open).
                let slot = {
                    let mut reg = conns.lock().expect("conn registry");
                    reg.push(stream.try_clone().ok());
                    reg.len() - 1
                };
                let shared = Arc::clone(shared);
                let conns = Arc::clone(conns);
                std::thread::spawn(move || {
                    serve_connection(&shared, stream);
                    conns.lock().expect("conn registry")[slot] = None;
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Handshake, then the read → admit / answer loop for one connection.
fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    stream.set_nodelay(true).ok();
    let Ok(read_side) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_side);
    // A peer that cannot even present the magic gets dropped silently —
    // there is no frame alignment to answer within.
    if read_handshake(&mut reader).is_err() {
        return;
    }
    if write_handshake(&mut stream).is_err() {
        return;
    }
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, Response)>();
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(stream);
        while let Ok((id, resp)) = reply_rx.recv() {
            let (kind, body) = resp.encode();
            if write_frame(&mut w, id, kind, &body)
                .and_then(|_| w.flush())
                .is_err()
            {
                break;
            }
        }
    });

    while !shared.shutdown.load(Ordering::SeqCst) {
        match read_frame(&mut reader) {
            Ok(frame) => {
                let request_id = frame.request_id;
                match Request::decode(&frame) {
                    Ok(Request::Ping) => {
                        let _ = reply_tx.send((request_id, Response::Pong));
                    }
                    Ok(Request::Query {
                        query,
                        count_only,
                        deadline_ms,
                    }) => {
                        admit(
                            shared,
                            request_id,
                            query,
                            count_only,
                            deadline_ms,
                            &reply_tx,
                        );
                    }
                    Err(reason) => {
                        ibis_obs::counter_add("server.bad_requests", 1);
                        let _ = reply_tx.send((
                            request_id,
                            Response::Error {
                                code: ErrorCode::BadRequest,
                                message: reason,
                            },
                        ));
                    }
                }
            }
            Err(e) => {
                // Frame-level damage: the stream is no longer aligned.
                // Report it once (best effort) and drop the connection;
                // a clean client close (EOF) is not reported.
                if e.kind() == ErrorKind::InvalidData {
                    ibis_obs::counter_add("server.protocol_errors", 1);
                    let _ = reply_tx.send((
                        0,
                        Response::Error {
                            code: ErrorCode::BadRequest,
                            message: format!("protocol error: {e}"),
                        },
                    ));
                }
                break;
            }
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    // Sever the socket itself: the shutdown registry still holds a clone,
    // and without this the peer would never see EOF.
    let _ = reader.get_ref().shutdown(Shutdown::Both);
}

/// Admission control: refuse with `Overloaded` at the high-water mark,
/// otherwise enqueue for the worker pool.
fn admit(
    shared: &Shared,
    request_id: u64,
    query: RangeQuery,
    count_only: bool,
    deadline_ms: u32,
    reply: &mpsc::Sender<(u64, Response)>,
) {
    ibis_obs::counter_add("server.requests", 1);
    // Schema validation happens at the door, not in the worker: a query
    // naming an out-of-range attribute must get its own `BadRequest`, not
    // poison a batch it later shares with well-formed queries.
    if let Err(e) = query.validate(shared.db.snapshot().db().schema()) {
        ibis_obs::counter_add("server.bad_requests", 1);
        let _ = reply.send((
            request_id,
            Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("invalid search key: {e}"),
            },
        ));
        return;
    }
    let budget = if deadline_ms == 0 {
        shared.config.default_deadline_ms
    } else {
        deadline_ms as u64
    };
    let now = Instant::now();
    let job = Job {
        request_id,
        query,
        count_only,
        deadline: now + Duration::from_millis(budget),
        enqueued: now,
        reply: reply.clone(),
    };
    let mut q = shared.queue.lock().expect("work queue");
    if q.len() >= shared.config.queue_high_water {
        drop(q);
        ibis_obs::counter_add("server.shed_overload", 1);
        let _ = reply.send((
            request_id,
            Response::Error {
                code: ErrorCode::Overloaded,
                message: format!(
                    "queue at high-water mark ({}); retry later",
                    shared.config.queue_high_water
                ),
            },
        ));
        return;
    }
    q.push_back(job);
    ibis_obs::gauge_set("server.queue_depth", q.len() as f64);
    drop(q);
    shared.available.notify_one();
}

/// One worker: drain up to `max_batch` jobs per wake, coalesce, execute
/// each group on one snapshot, respond.
fn worker_loop(shared: &Shared) {
    loop {
        let jobs: Vec<Job> = {
            let mut q = shared.queue.lock().expect("work queue");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !q.is_empty() {
                    break;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("work queue");
                q = guard;
            }
            let take = q.len().min(shared.config.max_batch);
            let drained = q.drain(..take).collect();
            ibis_obs::gauge_set("server.queue_depth", q.len() as f64);
            drained
        };
        execute_jobs(shared, jobs);
    }
}

/// Deadline-checks, batches, executes, and answers one drained job set.
fn execute_jobs(shared: &Shared, jobs: Vec<Job>) {
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = jobs.into_iter().partition(|j| j.deadline > now);
    for j in expired {
        ibis_obs::counter_add("server.shed_deadline", 1);
        let _ = j.reply.send((
            j.request_id,
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired while queued".into(),
            },
        ));
    }
    if live.is_empty() {
        return;
    }
    // One lock-free snapshot serves the whole drain: every query in every
    // batch below answers at the same watermark.
    let snap = shared.db.snapshot();
    let queries: Vec<RangeQuery> = live.iter().map(|j| j.query.clone()).collect();
    for batch in coalesce_compatible(&queries, shared.config.max_batch) {
        let batch_queries: Vec<RangeQuery> = batch.iter().map(|&i| queries[i].clone()).collect();
        let started = Instant::now();
        // Degree 1 runs inline on this worker: the pool is the
        // parallelism; fanning out again would oversubscribe it.
        let result = snap.execute_batch_threads(&batch_queries, 1);
        let done = Instant::now();
        ibis_obs::counter_add("server.batches", 1);
        ibis_obs::counter_add("server.batched_queries", batch.len() as u64);
        ibis_obs::observe(
            "server.exec_us",
            done.duration_since(started).as_micros() as u64,
        );
        match result {
            Ok(rowsets) => {
                for (&idx, rows) in batch.iter().zip(rowsets) {
                    let j = &live[idx];
                    let resp = if done > j.deadline {
                        ibis_obs::counter_add("server.shed_deadline", 1);
                        Response::Error {
                            code: ErrorCode::DeadlineExceeded,
                            message: "deadline expired during execution".into(),
                        }
                    } else if j.count_only {
                        Response::Count {
                            watermark: snap.watermark(),
                            count: rows.len() as u64,
                        }
                    } else {
                        Response::Rows {
                            watermark: snap.watermark(),
                            rows: rows.rows().to_vec(),
                        }
                    };
                    ibis_obs::observe(
                        "server.queue_wait_us",
                        started.duration_since(j.enqueued).as_micros() as u64,
                    );
                    ibis_obs::observe(
                        "server.request_us",
                        done.duration_since(j.enqueued).as_micros() as u64,
                    );
                    ibis_obs::counter_add("server.responses", 1);
                    let _ = j.reply.send((j.request_id, resp));
                }
            }
            Err(_) => {
                // Batch execution is all-or-nothing; retry each query
                // alone so only the offender pays for the failure.
                for &idx in &batch {
                    let j = &live[idx];
                    let resp = match snap.execute(&j.query) {
                        Ok(rows) if j.count_only => Response::Count {
                            watermark: snap.watermark(),
                            count: rows.len() as u64,
                        },
                        Ok(rows) => Response::Rows {
                            watermark: snap.watermark(),
                            rows: rows.rows().to_vec(),
                        },
                        Err(e) => {
                            ibis_obs::counter_add("server.internal_errors", 1);
                            Response::Error {
                                code: ErrorCode::Internal,
                                message: format!("execution failed: {e}"),
                            }
                        }
                    };
                    ibis_obs::counter_add("server.responses", 1);
                    let _ = j.reply.send((j.request_id, resp));
                }
            }
        }
    }
}
