//! The serving loop: accept → handshake → decode → admit → batch →
//! execute on a snapshot → respond.
//!
//! Threading model (one [`Server::start`] call):
//!
//! * **accept thread** — polls a non-blocking listener, spawning one
//!   reader thread per connection;
//! * **per-connection reader** — validates the handshake, then decodes
//!   frames. A `Ping` or a protocol rejection is answered immediately;
//!   a `Query` passes **admission control**: if the shared work queue is
//!   at its high-water mark the request is refused with
//!   [`ErrorCode::Overloaded`] right here — load is shed at the door, so
//!   queueing latency for admitted work stays bounded instead of
//!   collapsing;
//! * **per-connection writer** — drains a channel of encoded responses,
//!   so workers and the reader never block on a slow client socket;
//! * **fixed worker pool** (`config.workers` threads) — each wake drains
//!   up to `config.max_batch` queued jobs, groups the compatible ones
//!   with [`ibis_core::coalesce_compatible`], acquires **one** lock-free
//!   [`ConcurrentDb::snapshot`] per drain, and runs each group through
//!   [`DbSnapshot::execute_batch_threads`](ibis_storage::DbSnapshot::execute_batch_threads)
//!   — one dispatch amortized over the whole batch.
//!
//! Deadlines are enforced at the two scheduling boundaries: a job whose
//! deadline expired while queued is shed *before* execution, and a job
//! whose deadline expired *during* execution gets
//! [`ErrorCode::DeadlineExceeded`] instead of rows — an expired request
//! never returns results, and the overrun is bounded by one batch
//! execution. The default deadline is fed from the oracle's
//! `case_budget_ms` (see [`ServerConfig::default`]).

use crate::protocol::{
    read_frame, read_handshake, write_frame, write_handshake, ErrorCode, HealthReport, Request,
    Response, SlowPhase, SlowQuery, StatsReport,
};
use ibis_core::{coalesce_compatible, RangeQuery, WorkCounters};
use ibis_storage::{ConcurrentDb, DbSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, BufWriter, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one serving instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Fixed worker-pool size draining the shared queue.
    pub workers: usize,
    /// Most queries one worker wake may drain and coalesce into batches.
    /// `1` disables coalescing (one query per dispatch).
    pub max_batch: usize,
    /// Admission high-water mark: a query arriving while the queue holds
    /// this many jobs is refused with [`ErrorCode::Overloaded`].
    pub queue_high_water: usize,
    /// Deadline applied to requests that carry `deadline_ms = 0`.
    pub default_deadline_ms: u64,
    /// Request tracing sample rate: every `trace_sample`-th admitted query
    /// executes solo under a `server.request` root span whose tree feeds
    /// the slow-query log. `0` disables tracing entirely; `1` traces every
    /// query (and therefore disables batching).
    pub trace_sample: u64,
    /// Capacity of the slow-query log: the N worst traced requests by
    /// total (queue + execute) latency are retained.
    pub slow_log_size: usize,
}

impl Default for ServerConfig {
    /// Defaults: 4 workers, batches of 8, a 256-deep queue, the oracle's
    /// per-case time budget as the request deadline, 1-in-8 request
    /// tracing, and a 16-entry slow-query log.
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            max_batch: 8,
            queue_high_water: 256,
            default_deadline_ms: ibis_oracle::OracleConfig::default().case_budget_ms,
            trace_sample: 8,
            slow_log_size: 16,
        }
    }
}

/// One admitted query waiting for a worker.
struct Job {
    request_id: u64,
    query: RangeQuery,
    count_only: bool,
    deadline: Instant,
    enqueued: Instant,
    /// Sampled for tracing: executes solo under a `server.request` root
    /// span and feeds the slow-query log.
    traced: bool,
    reply: mpsc::Sender<(u64, Response)>,
}

/// State shared by the accept loop, readers, and the worker pool.
struct Shared {
    db: Arc<ConcurrentDb>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// When the server started (feeds `uptime_ms` in reports).
    started: Instant,
    /// Workers currently executing a drained job set.
    busy: AtomicUsize,
    /// Admitted-query sequence number, drives trace sampling.
    admitted_seq: AtomicU64,
    /// The N worst traced requests, sorted worst-first.
    slow_log: Mutex<Vec<SlowQuery>>,
}

/// The serving entry point; see the module docs for the thread layout.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `db`. Returns a handle owning every spawned thread; dropping it
    /// shuts the server down.
    pub fn start(
        db: Arc<ConcurrentDb>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        // The telemetry plane (windowed metrics, latency histograms, span
        // tracing) runs on the process-global obs recorder. Turn it on if
        // the embedding process has not already — but never reset a
        // recording someone else (a load generator, a profiler) installed.
        if !ibis_obs::is_enabled() {
            ibis_obs::Recorder::enabled().install();
        }
        let shared = Arc::new(Shared {
            db,
            config: ServerConfig {
                workers: config.workers.max(1),
                max_batch: config.max_batch.max(1),
                queue_high_water: config.queue_high_water.max(1),
                ..config
            },
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            busy: AtomicUsize::new(0),
            admitted_seq: AtomicU64::new(0),
            slow_log: Mutex::new(Vec::new()),
        });
        let conns: Arc<Mutex<Vec<Option<TcpStream>>>> = Arc::new(Mutex::new(Vec::new()));

        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(listener, &shared, &conns))
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            conns,
            accept: Some(accept),
            workers,
        })
    }
}

/// Owns a running server; [`addr`](ServerHandle::addr) is where clients
/// connect. Dropping the handle stops the accept loop, severs every open
/// connection, and joins the worker pool.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<Option<TcpStream>>>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port chosen).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops serving: new connections are refused, open sockets are torn
    /// down (in-flight requests may go unanswered), queued-but-unstarted
    /// jobs are dropped, and every server thread is joined.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // Severing the sockets unblocks reader threads parked in
        // `read_frame`; their writer threads follow when the senders drop.
        for s in self.conns.lock().expect("conn registry").iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Unstarted jobs still hold reply senders; dropping them lets the
        // per-connection writer threads drain and exit.
        self.shared.queue.lock().expect("queue").clear();
    }
}

/// Polls the non-blocking listener, spawning a reader per connection.
fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<Option<TcpStream>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                ibis_obs::counter_add("server.connections", 1);
                // Register a clone so shutdown can sever the socket; the
                // slot is cleared when the connection ends, and the socket
                // is explicitly shut down there too (a registered clone
                // would otherwise hold it half-open).
                let slot = {
                    let mut reg = conns.lock().expect("conn registry");
                    reg.push(stream.try_clone().ok());
                    reg.len() - 1
                };
                let shared = Arc::clone(shared);
                let conns = Arc::clone(conns);
                std::thread::spawn(move || {
                    serve_connection(&shared, stream);
                    conns.lock().expect("conn registry")[slot] = None;
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Handshake, then the read → admit / answer loop for one connection.
fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    stream.set_nodelay(true).ok();
    let Ok(read_side) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_side);
    // A peer that cannot even present the magic gets dropped silently —
    // there is no frame alignment to answer within.
    if read_handshake(&mut reader).is_err() {
        return;
    }
    if write_handshake(&mut stream).is_err() {
        return;
    }
    let (reply_tx, reply_rx) = mpsc::channel::<(u64, Response)>();
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(stream);
        while let Ok((id, resp)) = reply_rx.recv() {
            let (kind, body) = resp.encode();
            if write_frame(&mut w, id, kind, &body)
                .and_then(|_| w.flush())
                .is_err()
            {
                break;
            }
        }
    });

    while !shared.shutdown.load(Ordering::SeqCst) {
        match read_frame(&mut reader) {
            Ok(frame) => {
                let request_id = frame.request_id;
                match Request::decode(&frame) {
                    Ok(Request::Ping) => {
                        let _ = reply_tx.send((request_id, Response::Pong));
                    }
                    // STATS and HEALTH are answered right here on the
                    // reader thread, never enqueued: telemetry must stay
                    // observable while the worker pool is saturated.
                    Ok(Request::Stats { include_slow }) => {
                        ibis_obs::counter_add("server.stats_requests", 1);
                        let report = build_stats(shared, include_slow);
                        let _ = reply_tx.send((request_id, Response::Stats(Box::new(report))));
                    }
                    Ok(Request::Health) => {
                        let _ = reply_tx.send((request_id, Response::Health(build_health(shared))));
                    }
                    Ok(Request::Query {
                        query,
                        count_only,
                        deadline_ms,
                    }) => {
                        admit(
                            shared,
                            request_id,
                            query,
                            count_only,
                            deadline_ms,
                            &reply_tx,
                        );
                    }
                    Err(reason) => {
                        ibis_obs::counter_add("server.bad_requests", 1);
                        let _ = reply_tx.send((
                            request_id,
                            Response::Error {
                                code: ErrorCode::BadRequest,
                                message: reason,
                            },
                        ));
                    }
                }
            }
            Err(e) => {
                // Frame-level damage: the stream is no longer aligned.
                // Report it once (best effort) and drop the connection;
                // a clean client close (EOF) is not reported.
                if e.kind() == ErrorKind::InvalidData {
                    ibis_obs::counter_add("server.protocol_errors", 1);
                    let _ = reply_tx.send((
                        0,
                        Response::Error {
                            code: ErrorCode::BadRequest,
                            message: format!("protocol error: {e}"),
                        },
                    ));
                }
                break;
            }
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    // Sever the socket itself: the shutdown registry still holds a clone,
    // and without this the peer would never see EOF.
    let _ = reader.get_ref().shutdown(Shutdown::Both);
}

/// Admission control: refuse with `Overloaded` at the high-water mark,
/// otherwise enqueue for the worker pool.
fn admit(
    shared: &Shared,
    request_id: u64,
    query: RangeQuery,
    count_only: bool,
    deadline_ms: u32,
    reply: &mpsc::Sender<(u64, Response)>,
) {
    ibis_obs::counter_add("server.requests", 1);
    // Schema validation happens at the door, not in the worker: a query
    // naming an out-of-range attribute must get its own `BadRequest`, not
    // poison a batch it later shares with well-formed queries.
    if let Err(e) = query.validate(shared.db.snapshot().db().schema()) {
        ibis_obs::counter_add("server.bad_requests", 1);
        let _ = reply.send((
            request_id,
            Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("invalid search key: {e}"),
            },
        ));
        return;
    }
    let budget = if deadline_ms == 0 {
        shared.config.default_deadline_ms
    } else {
        deadline_ms as u64
    };
    let now = Instant::now();
    let job = Job {
        request_id,
        query,
        count_only,
        deadline: now + Duration::from_millis(budget),
        enqueued: now,
        traced: false,
        reply: reply.clone(),
    };
    let mut q = shared.queue.lock().expect("work queue");
    if q.len() >= shared.config.queue_high_water {
        drop(q);
        ibis_obs::counter_add("server.shed_overload", 1);
        ibis_obs::window_counter_add("server.shed", 1);
        let _ = reply.send((
            request_id,
            Response::Error {
                code: ErrorCode::Overloaded,
                message: format!(
                    "queue at high-water mark ({}); retry later",
                    shared.config.queue_high_water
                ),
            },
        ));
        return;
    }
    // Admission granted: count it, and sample for tracing. The sequence
    // number only advances for admitted queries so a burst of shed load
    // cannot starve the tracer.
    let seq = shared.admitted_seq.fetch_add(1, Ordering::Relaxed);
    let mut job = job;
    job.traced = shared.config.trace_sample > 0 && seq.is_multiple_of(shared.config.trace_sample);
    ibis_obs::counter_add("server.admitted", 1);
    ibis_obs::window_counter_add("server.admitted", 1);
    q.push_back(job);
    ibis_obs::gauge_set("server.queue_depth", q.len() as f64);
    drop(q);
    shared.available.notify_one();
}

/// One worker: drain up to `max_batch` jobs per wake, coalesce, execute
/// each group on one snapshot, respond.
fn worker_loop(shared: &Shared) {
    loop {
        let jobs: Vec<Job> = {
            let mut q = shared.queue.lock().expect("work queue");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !q.is_empty() {
                    break;
                }
                let (guard, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("work queue");
                q = guard;
            }
            let take = q.len().min(shared.config.max_batch);
            let drained = q.drain(..take).collect();
            ibis_obs::gauge_set("server.queue_depth", q.len() as f64);
            drained
        };
        let busy = shared.busy.fetch_add(1, Ordering::SeqCst) + 1;
        ibis_obs::gauge_set("server.workers_busy", busy as f64);
        execute_jobs(shared, jobs);
        let busy = shared.busy.fetch_sub(1, Ordering::SeqCst) - 1;
        ibis_obs::gauge_set("server.workers_busy", busy as f64);
    }
}

/// Deadline-checks, batches, executes, and answers one drained job set.
/// Jobs sampled for tracing execute solo under a `server.request` root
/// span (see [`execute_traced`]); the rest take the batch path.
fn execute_jobs(shared: &Shared, jobs: Vec<Job>) {
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = jobs.into_iter().partition(|j| j.deadline > now);
    for j in expired {
        ibis_obs::counter_add("server.shed_deadline", 1);
        ibis_obs::window_counter_add("server.expired", 1);
        let _ = j.reply.send((
            j.request_id,
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired while queued".into(),
            },
        ));
    }
    if live.is_empty() {
        return;
    }
    // One lock-free snapshot serves the whole drain: every query in every
    // batch below answers at the same watermark.
    let snap = shared.db.snapshot();
    for j in &live {
        let name = match j.query.policy() {
            ibis_core::MissingPolicy::IsMatch => "server.policy_is_match",
            ibis_core::MissingPolicy::IsNotMatch => "server.policy_is_not_match",
        };
        ibis_obs::counter_add(name, 1);
        ibis_obs::window_counter_add(name, 1);
    }
    let (traced, live): (Vec<Job>, Vec<Job>) = live.into_iter().partition(|j| j.traced);
    for j in traced {
        execute_traced(shared, &snap, j);
    }
    if live.is_empty() {
        return;
    }
    let queries: Vec<RangeQuery> = live.iter().map(|j| j.query.clone()).collect();
    for batch in coalesce_compatible(&queries, shared.config.max_batch) {
        let batch_queries: Vec<RangeQuery> = batch.iter().map(|&i| queries[i].clone()).collect();
        let started = Instant::now();
        // Degree 1 runs inline on this worker: the pool is the
        // parallelism; fanning out again would oversubscribe it.
        let result = snap.execute_batch_threads(&batch_queries, 1);
        let done = Instant::now();
        ibis_obs::counter_add("server.batches", 1);
        ibis_obs::counter_add("server.batched_queries", batch.len() as u64);
        let exec_us = done.duration_since(started).as_micros() as u64;
        ibis_obs::observe("server.exec_us", exec_us);
        ibis_obs::window_observe("server.exec_us", exec_us);
        match result {
            Ok(rowsets) => {
                for (&idx, rows) in batch.iter().zip(rowsets) {
                    let j = &live[idx];
                    let resp = if done > j.deadline {
                        ibis_obs::counter_add("server.shed_deadline", 1);
                        ibis_obs::window_counter_add("server.expired", 1);
                        Response::Error {
                            code: ErrorCode::DeadlineExceeded,
                            message: "deadline expired during execution".into(),
                        }
                    } else if j.count_only {
                        Response::Count {
                            watermark: snap.watermark(),
                            count: rows.len() as u64,
                        }
                    } else {
                        Response::Rows {
                            watermark: snap.watermark(),
                            rows: rows.rows().to_vec(),
                        }
                    };
                    ibis_obs::observe(
                        "server.queue_wait_us",
                        started.duration_since(j.enqueued).as_micros() as u64,
                    );
                    let request_us = done.duration_since(j.enqueued).as_micros() as u64;
                    ibis_obs::observe("server.request_us", request_us);
                    ibis_obs::window_observe("server.request_us", request_us);
                    ibis_obs::counter_add("server.responses", 1);
                    ibis_obs::window_counter_add("server.responses", 1);
                    let _ = j.reply.send((j.request_id, resp));
                }
            }
            Err(_) => {
                // Batch execution is all-or-nothing; retry each query
                // alone so only the offender pays for the failure.
                for &idx in &batch {
                    let j = &live[idx];
                    let resp = match snap.execute(&j.query) {
                        Ok(rows) if j.count_only => Response::Count {
                            watermark: snap.watermark(),
                            count: rows.len() as u64,
                        },
                        Ok(rows) => Response::Rows {
                            watermark: snap.watermark(),
                            rows: rows.rows().to_vec(),
                        },
                        Err(e) => {
                            ibis_obs::counter_add("server.internal_errors", 1);
                            Response::Error {
                                code: ErrorCode::Internal,
                                message: format!("execution failed: {e}"),
                            }
                        }
                    };
                    ibis_obs::counter_add("server.responses", 1);
                    ibis_obs::window_counter_add("server.responses", 1);
                    let _ = j.reply.send((j.request_id, resp));
                }
            }
        }
    }
}

/// Execute one traced job solo under a `server.request` root span, then
/// drain exactly that span tree out of the recorder (bounding span memory
/// to in-flight traced requests) and feed the slow-query log.
///
/// Degree 1 keeps the whole execution — and therefore every child span —
/// on this worker thread, so the drained tree is complete. The per-phase
/// counter-field deltas of that tree sum exactly to the execution's final
/// `WorkCounters`: the PR 4 profile invariant, now visible over the wire.
fn execute_traced(shared: &Shared, snap: &Arc<DbSnapshot>, j: Job) {
    let started = Instant::now();
    let mut root = ibis_obs::span("server.request");
    let root_id = root.id();
    root.add_field("request_id", j.request_id);
    let result = snap.execute_with_cost_threads(&j.query, 1);
    drop(root);
    let done = Instant::now();
    let spans = ibis_obs::drain_subtree(root_id);

    let exec_us = done.duration_since(started).as_micros() as u64;
    let queue_us = started.duration_since(j.enqueued).as_micros() as u64;
    let request_us = done.duration_since(j.enqueued).as_micros() as u64;
    ibis_obs::counter_add("server.traced", 1);
    ibis_obs::observe("server.exec_us", exec_us);
    ibis_obs::window_observe("server.exec_us", exec_us);
    ibis_obs::observe("server.queue_wait_us", queue_us);

    let resp = match result {
        Ok((rows, counters)) => {
            note_slow(
                shared,
                SlowQuery {
                    request_id: j.request_id,
                    watermark: snap.watermark(),
                    plan: j.query.to_string(),
                    queue_us,
                    exec_us,
                    total_us: request_us,
                    counters: counters
                        .fields()
                        .iter()
                        .filter(|&&(_, v)| v > 0)
                        .map(|&(k, v)| (k.to_string(), v as u64))
                        .collect(),
                    phases: phases_from(&spans, root_id),
                },
            );
            if done > j.deadline {
                ibis_obs::counter_add("server.shed_deadline", 1);
                ibis_obs::window_counter_add("server.expired", 1);
                Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    message: "deadline expired during execution".into(),
                }
            } else if j.count_only {
                Response::Count {
                    watermark: snap.watermark(),
                    count: rows.len() as u64,
                }
            } else {
                Response::Rows {
                    watermark: snap.watermark(),
                    rows: rows.rows().to_vec(),
                }
            }
        }
        Err(e) => {
            ibis_obs::counter_add("server.internal_errors", 1);
            Response::Error {
                code: ErrorCode::Internal,
                message: format!("execution failed: {e}"),
            }
        }
    };
    ibis_obs::observe("server.request_us", request_us);
    ibis_obs::window_observe("server.request_us", request_us);
    ibis_obs::counter_add("server.responses", 1);
    ibis_obs::window_counter_add("server.responses", 1);
    let _ = j.reply.send((j.request_id, resp));
}

/// Aggregate a drained span tree (minus its root) into per-phase totals.
/// Counter-field deltas are extracted with `WorkCounters::from_fields`, so
/// non-counter span fields (`shards`, `rows`, …) never pollute the sums.
///
/// Aggregation layers re-record counters their children already carried
/// (`db.shard` re-records its access method's span, for example), so a
/// flat sum over-counts. Each span is therefore charged only its *self*
/// delta — its own counter fields minus its direct children's — which puts
/// every counted unit in exactly one phase and makes the per-phase totals
/// sum back to the request's final [`WorkCounters`].
fn phases_from(spans: &[ibis_obs::SpanRecord], root: u64) -> Vec<SlowPhase> {
    let own = |s: &ibis_obs::SpanRecord| {
        WorkCounters::from_fields(s.fields.iter().map(|(k, v)| (k.as_str(), *v)))
    };
    let mut child_sums: BTreeMap<u64, WorkCounters> = BTreeMap::new();
    for s in spans {
        child_sums
            .entry(s.parent)
            .or_insert_with(WorkCounters::zero)
            .merge(own(s));
    }
    let mut by_name: BTreeMap<&str, (u64, u64, WorkCounters)> = BTreeMap::new();
    for s in spans {
        if s.id == root {
            continue;
        }
        let children = child_sums
            .get(&s.id)
            .cloned()
            .unwrap_or_else(WorkCounters::zero);
        let self_delta = WorkCounters::from_fields(
            own(s)
                .fields()
                .iter()
                .zip(children.fields().iter())
                .map(|(&(k, a), &(_, b))| (k, (a.saturating_sub(b)) as u64)),
        );
        let e = by_name
            .entry(s.name.as_str())
            .or_insert_with(|| (0, 0, WorkCounters::zero()));
        e.0 += 1;
        e.1 = e.1.saturating_add(s.elapsed_ns);
        e.2.merge(self_delta);
    }
    let mut phases: Vec<SlowPhase> = by_name
        .into_iter()
        .map(|(name, (spans, total_ns, counters))| SlowPhase {
            name: name.to_string(),
            spans,
            total_ns,
            counters: counters
                .fields()
                .iter()
                .filter(|&&(_, v)| v > 0)
                .map(|&(k, v)| (k.to_string(), v as u64))
                .collect(),
        })
        .collect();
    phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    phases
}

/// Insert one traced request into the bounded slow-query log, keeping the
/// worst `slow_log_size` entries by total latency, worst-first.
fn note_slow(shared: &Shared, entry: SlowQuery) {
    let mut log = shared.slow_log.lock().expect("slow log");
    if log.len() >= shared.config.slow_log_size.max(1)
        && entry.total_us <= log.last().map_or(0, |e| e.total_us)
    {
        return;
    }
    log.push(entry);
    log.sort_by_key(|e| std::cmp::Reverse(e.total_us));
    log.truncate(shared.config.slow_log_size.max(1));
}

/// Assemble a [`StatsReport`]: headline gauges read from the serving
/// structures (correct even if the obs recorder is cold), the metric
/// registry as canonical JSON, and optionally the slow-query log.
fn build_stats(shared: &Shared, include_slow: bool) -> StatsReport {
    let queue_depth = shared.queue.lock().expect("work queue").len() as u32;
    StatsReport {
        watermark: shared.db.snapshot().watermark(),
        queue_depth,
        queue_high_water: shared.config.queue_high_water as u32,
        workers: shared.config.workers as u32,
        workers_busy: shared.busy.load(Ordering::SeqCst) as u32,
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        metrics_json: ibis_obs::Registry::export().to_json(),
        slow_queries: if include_slow {
            shared.slow_log.lock().expect("slow log").clone()
        } else {
            Vec::new()
        },
    }
}

/// Assemble a [`HealthReport`]; "healthy" means admission control would
/// accept a query arriving right now.
fn build_health(shared: &Shared) -> HealthReport {
    let queue_depth = shared.queue.lock().expect("work queue").len() as u32;
    HealthReport {
        healthy: !shared.shutdown.load(Ordering::SeqCst)
            && (queue_depth as usize) < shared.config.queue_high_water,
        watermark: shared.db.snapshot().watermark(),
        queue_depth,
        queue_high_water: shared.config.queue_high_water as u32,
        workers: shared.config.workers as u32,
        uptime_ms: shared.started.elapsed().as_millis() as u64,
    }
}
