//! # ibis-server — networked query serving for incomplete databases
//!
//! The layer between [`ibis_storage::ConcurrentDb`] and remote clients:
//!
//! * [`protocol`] — the `IBQP` wire format: a 6-byte handshake, then
//!   CRC-framed, length-capped request/response messages reusing the
//!   `wire`/`crc` discipline of every on-disk format;
//! * [`server`] — the TCP serving loop: per-connection reader/writer
//!   threads, admission control at a queue high-water mark
//!   ([`ErrorCode::Overloaded`]), per-request deadlines (default fed from
//!   the oracle's `case_budget_ms`), and a fixed worker pool that
//!   coalesces compatible queued queries
//!   ([`ibis_core::coalesce_compatible`]) onto one snapshot-batch
//!   execution per dispatch;
//! * [`client`] — a blocking client with a split send/receive mode for
//!   open-loop load generation (the `loadgen` bin).
//!
//! Reads are snapshot-isolated end to end: every response carries the
//! watermark of the lock-free [`DbSnapshot`](ibis_storage::DbSnapshot)
//! that served it, and served answers are bit-identical to executing the
//! same query directly against that snapshot.

#![deny(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{ErrorCode, HealthReport, Request, Response, SlowPhase, SlowQuery, StatsReport};
pub use server::{Server, ServerConfig, ServerHandle};
