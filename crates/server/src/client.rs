//! A blocking `IBQP` client: handshake, correlated request/response, and
//! a split send/receive mode for open-loop load generation.

use crate::protocol::{
    read_frame, read_handshake, write_frame, write_handshake, HealthReport, Request, Response,
    StatsReport,
};
use ibis_core::RangeQuery;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to an `ibis-server`, speaking strict request/response.
/// For pipelined (many-outstanding) traffic, use
/// [`Client::into_split`].
pub struct Client {
    send: SendHalf,
    recv: RecvHalf,
}

impl Client {
    /// Connects and completes the mutual handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut writer = BufWriter::new(stream.try_clone()?);
        write_handshake(&mut writer)?;
        writer.flush()?;
        let mut reader = BufReader::new(stream);
        read_handshake(&mut reader)?;
        Ok(Client {
            send: SendHalf { writer, next_id: 1 },
            recv: RecvHalf { reader },
        })
    }

    /// Sends `request` and blocks for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let id = self.send.send(request)?;
        let (got, resp) = self.recv.recv()?;
        if got != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {got} does not match request id {id}"),
            ));
        }
        Ok(resp)
    }

    /// Executes `query` with `deadline_ms` (0 = server default), returning
    /// the server's response.
    pub fn query(&mut self, query: &RangeQuery, deadline_ms: u32) -> io::Result<Response> {
        self.call(&Request::Query {
            query: query.clone(),
            count_only: false,
            deadline_ms,
        })
    }

    /// Like [`Client::query`], but asks for a count instead of rows.
    pub fn count(&mut self, query: &RangeQuery, deadline_ms: u32) -> io::Result<Response> {
        self.call(&Request::Query {
            query: query.clone(),
            count_only: true,
            deadline_ms,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.call(&Request::Ping)
    }

    /// Fetches the server's telemetry snapshot. Served off the worker
    /// pool, so this answers even when the server is saturated.
    pub fn stats(&mut self, include_slow: bool) -> io::Result<StatsReport> {
        match self.call(&Request::Stats { include_slow })? {
            Response::Stats(report) => Ok(*report),
            Response::Error { code, message } => Err(io::Error::other(format!(
                "stats refused ({code:?}): {message}"
            ))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to STATS: {other:?}"),
            )),
        }
    }

    /// Fetches the server's health probe (cheap; also served off-pool).
    pub fn health(&mut self) -> io::Result<HealthReport> {
        match self.call(&Request::Health)? {
            Response::Health(report) => Ok(report),
            Response::Error { code, message } => Err(io::Error::other(format!(
                "health refused ({code:?}): {message}"
            ))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to HEALTH: {other:?}"),
            )),
        }
    }

    /// Splits into independent send/receive halves so a load generator can
    /// keep many requests outstanding (open-loop traffic) — one thread
    /// sends on schedule, another drains responses as they arrive.
    pub fn into_split(self) -> (SendHalf, RecvHalf) {
        (self.send, self.recv)
    }
}

/// The sending half of a split [`Client`]; assigns request ids.
pub struct SendHalf {
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl SendHalf {
    /// Sends one request, returning the id its response will echo.
    pub fn send(&mut self, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let (kind, body) = request.encode();
        write_frame(&mut self.writer, id, kind, &body)?;
        self.writer.flush()?;
        Ok(id)
    }
}

/// The receiving half of a split [`Client`].
pub struct RecvHalf {
    reader: BufReader<TcpStream>,
}

impl RecvHalf {
    /// Blocks for the next response; returns `(request_id, response)`.
    /// Responses may arrive out of request order once multiple requests
    /// are outstanding — correlate by id.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        let frame = read_frame(&mut self.reader)?;
        let resp = Response::decode(&frame)?;
        Ok((frame.request_id, resp))
    }
}
