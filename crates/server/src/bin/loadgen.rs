//! Open-loop load generator for `ibis-server`.
//!
//! Spawns an in-process server over a synthetic census dataset, drives it
//! with Poisson-ish arrivals (exponential inter-arrival times from a seeded
//! RNG) of a mixed point/range workload under both missing-data semantics,
//! and reports served throughput plus p50/p99 latency measured through
//! `ibis-obs` histograms.
//!
//! Two modes:
//!
//! - default (`--compare`): runs the unbatched/batched capacity comparison
//!   at 8 workers plus an overload-shedding scenario, printing one CSV row
//!   per scenario (and appending to `--csv PATH` if given);
//! - `--assert`: a single moderate-rate scenario that exits non-zero unless
//!   every request succeeded (zero errors, zero sheds) and throughput is
//!   non-zero — the CI smoke.

use ibis_core::gen::{census_scaled, workload, QuerySpec};
use ibis_core::{MissingPolicy, RangeQuery};
use ibis_server::{Client, ErrorCode, Request, Response, Server, ServerConfig};
use ibis_storage::ConcurrentDb;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const LATENCY_HIST: &str = "loadgen.latency_us";

#[derive(Clone)]
struct Scenario {
    name: &'static str,
    workers: usize,
    max_batch: usize,
    queue_high_water: usize,
    /// Target arrival rate in requests/sec across all connections;
    /// 0 = flood (send as fast as the outstanding cap allows).
    rate: u64,
    conns: usize,
    duration: Duration,
    deadline_ms: u32,
}

#[derive(Clone, Copy, Default)]
struct Tally {
    sent: u64,
    ok: u64,
    shed: u64,
    expired: u64,
    errors: u64,
}

/// The server's own view of a scenario, read back over one `STATS`
/// request before shutdown — the cross-check against the client tally.
#[derive(Clone, Copy, Default)]
struct ServerSide {
    admitted: u64,
    shed: u64,
    expired: u64,
    p99_us: u64,
}

struct Outcome {
    tally: Tally,
    elapsed: Duration,
    p50_us: u64,
    p99_us: u64,
    srv: ServerSide,
    slow: Vec<ibis_server::SlowQuery>,
}

impl Outcome {
    fn throughput(&self) -> f64 {
        self.tally.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Admitted jobs answer exactly once (rows/count, deadline error, or
    /// internal error), so the server's admission counter must equal the
    /// client-side non-shed response count.
    fn server_view_consistent(&self) -> bool {
        self.srv.admitted == self.tally.ok + self.tally.expired + self.tally.errors
            && self.srv.shed == self.tally.shed
    }

    fn csv_row(&self, sc: &Scenario) -> String {
        format!(
            "{},{},{},{},{:.1},{},{},{},{},{},{:.1},{},{},{},{},{},{}",
            sc.name,
            sc.workers,
            sc.max_batch,
            sc.rate,
            self.elapsed.as_secs_f64(),
            self.tally.sent,
            self.tally.ok,
            self.tally.shed,
            self.tally.expired,
            self.tally.errors,
            self.throughput(),
            self.p50_us,
            self.p99_us,
            self.srv.admitted,
            self.srv.shed,
            self.srv.expired,
            self.srv.p99_us,
        )
    }
}

const CSV_HEADER: &str = "scenario,workers,max_batch,rate_rps,duration_s,sent,ok,shed,\
expired,errors,throughput_rps,p50_us,p99_us,srv_admitted,srv_shed,srv_expired,srv_p99_us";

/// Builds the mixed workload: point and 3-attribute range queries under
/// both missing-data semantics at 5% global selectivity.
fn mixed_queries(db: &ConcurrentDb, seed: u64, per_spec: usize) -> Vec<RangeQuery> {
    let schema = db.snapshot().db().schema().clone();
    let mut queries = Vec::new();
    for (i, (k, policy)) in [
        (1, MissingPolicy::IsMatch),
        (1, MissingPolicy::IsNotMatch),
        (3, MissingPolicy::IsMatch),
        (3, MissingPolicy::IsNotMatch),
    ]
    .into_iter()
    .enumerate()
    {
        let spec = QuerySpec {
            n_queries: per_spec,
            k,
            global_selectivity: 0.05,
            policy,
            candidate_attrs: vec![],
        };
        queries.extend(workload(&schema, &spec, seed + i as u64));
    }
    queries
}

/// Drives one scenario against a fresh in-process server and returns the
/// aggregate tally plus latency quantiles.
fn run_scenario(
    db: &Arc<ConcurrentDb>,
    queries: &[RangeQuery],
    sc: &Scenario,
    seed: u64,
) -> Outcome {
    // A fresh recorder per scenario so the latency histogram starts empty.
    ibis_obs::Recorder::enabled().install();
    let config = ServerConfig {
        workers: sc.workers,
        max_batch: sc.max_batch,
        queue_high_water: sc.queue_high_water,
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::clone(db), "127.0.0.1:0", config).expect("bind loopback");
    let addr = handle.addr();

    // Outstanding cap keeps flood mode from buffering unboundedly on the
    // client side; admission control bounds the server side.
    const MAX_OUTSTANDING: u64 = 256;
    let per_conn_rate = sc.rate as f64 / sc.conns as f64;
    let started = Instant::now();
    let tally = Mutex::new(Tally::default());
    std::thread::scope(|scope| {
        for conn in 0..sc.conns {
            let (mut tx, mut rx) = Client::connect(addr).expect("connect").into_split();
            let tally = &tally;
            let deadline_ms = sc.deadline_ms;
            let until = started + sc.duration;
            let sent = Arc::new(AtomicU64::new(0));
            let received = Arc::new(AtomicU64::new(0));
            let inflight: Arc<Mutex<HashMap<u64, Instant>>> = Arc::default();

            let sender = {
                let (sent, received, inflight) = (
                    Arc::clone(&sent),
                    Arc::clone(&received),
                    Arc::clone(&inflight),
                );
                move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (conn as u64).wrapping_mul(0x9e37));
                    let mut n = 0u64;
                    while Instant::now() < until {
                        if per_conn_rate > 0.0 {
                            // Exponential inter-arrival: open-loop Poisson.
                            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                            let gap = -u.ln() / per_conn_rate;
                            std::thread::sleep(Duration::from_secs_f64(gap.min(1.0)));
                        } else {
                            while sent.load(Ordering::Acquire) - received.load(Ordering::Acquire)
                                >= MAX_OUTSTANDING
                            {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                        }
                        let q = &queries[(rng.gen::<u64>() as usize) % queries.len()];
                        let req = Request::Query {
                            query: q.clone(),
                            count_only: false,
                            deadline_ms,
                        };
                        let now = Instant::now();
                        let id = match tx.send(&req) {
                            Ok(id) => id,
                            Err(_) => break,
                        };
                        inflight.lock().unwrap().insert(id, now);
                        n += 1;
                        sent.store(n, Ordering::Release);
                    }
                    n
                }
            };
            let sender = scope.spawn(sender);

            scope.spawn(move || {
                let mut local = Tally::default();
                let mut got = 0u64;
                loop {
                    // Drain until every sent request is answered; the
                    // server answers each admitted or shed request once.
                    if sender.is_finished() && got >= sent.load(Ordering::Acquire) {
                        break;
                    }
                    if got >= sent.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    let (id, resp) = match rx.recv() {
                        Ok(pair) => pair,
                        Err(_) => break,
                    };
                    got += 1;
                    received.store(got, Ordering::Release);
                    if let Some(t0) = inflight.lock().unwrap().remove(&id) {
                        ibis_obs::observe(LATENCY_HIST, t0.elapsed().as_micros() as u64);
                    }
                    match resp {
                        Response::Rows { .. } | Response::Count { .. } => local.ok += 1,
                        Response::Error {
                            code: ErrorCode::Overloaded,
                            ..
                        } => local.shed += 1,
                        Response::Error {
                            code: ErrorCode::DeadlineExceeded,
                            ..
                        } => local.expired += 1,
                        _ => local.errors += 1,
                    }
                }
                local.sent = got;
                let mut t = tally.lock().unwrap();
                t.sent += local.sent;
                t.ok += local.ok;
                t.shed += local.shed;
                t.expired += local.expired;
                t.errors += local.errors;
            });
        }
    });
    let elapsed = started.elapsed();

    // One STATS round-trip before shutdown: the server's own counters and
    // latency histogram for the scenario, plus its slow-query log. The
    // Prometheus export is validated here so a malformed exposition fails
    // the loadgen run (and CI) outright.
    let mut probe = Client::connect(addr).expect("stats probe");
    let report = probe.stats(true).expect("STATS request");
    let srv_snap =
        ibis_obs::Snapshot::from_json(&report.metrics_json).expect("server metrics parse");
    ibis_obs::validate_prometheus(&srv_snap.to_prometheus())
        .expect("server metrics export as valid Prometheus text");
    let c = |name: &str| srv_snap.counters.get(name).copied().unwrap_or(0);
    let srv = ServerSide {
        admitted: c("server.admitted"),
        shed: c("server.shed_overload"),
        expired: c("server.shed_deadline"),
        p99_us: srv_snap
            .histograms
            .get("server.request_us")
            .map_or(0, |h| h.p99()),
    };
    drop(probe);
    handle.shutdown();

    let snap = ibis_obs::snapshot();
    let (p50_us, p99_us) = snap
        .histograms
        .get(LATENCY_HIST)
        .map(|h| (h.p50(), h.p99()))
        .unwrap_or((0, 0));
    let tally = *tally.lock().unwrap();
    Outcome {
        tally,
        elapsed,
        p50_us,
        p99_us,
        srv,
        slow: report.slow_queries,
    }
}

struct Args {
    rows: usize,
    seed: u64,
    duration: Duration,
    rate: u64,
    conns: usize,
    workers: usize,
    csv: Option<String>,
    slow_log: Option<String>,
    assert_clean: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--rows N] [--seed N] [--duration-secs N] [--rate RPS] \
         [--conns N] [--workers N] [--csv PATH] [--slow-log PATH] [--assert]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        rows: 20_000,
        seed: 42,
        duration: Duration::from_secs(5),
        rate: 0,
        conns: 4,
        workers: 8,
        csv: None,
        slow_log: None,
        assert_clean: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--rows" => args.rows = num(&mut it) as usize,
            "--seed" => args.seed = num(&mut it),
            "--duration-secs" => args.duration = Duration::from_secs(num(&mut it)),
            "--rate" => args.rate = num(&mut it),
            "--conns" => args.conns = (num(&mut it) as usize).max(1),
            "--workers" => args.workers = (num(&mut it) as usize).max(1),
            "--csv" => args.csv = Some(it.next().unwrap_or_else(|| usage())),
            "--slow-log" => args.slow_log = Some(it.next().unwrap_or_else(|| usage())),
            "--assert" => args.assert_clean = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let db = Arc::new(ConcurrentDb::new_mem(
        census_scaled(args.rows, args.seed),
        (args.rows / 16).max(64),
    ));
    let queries = mixed_queries(&db, args.seed + 1, 16);
    eprintln!(
        "loadgen: {} rows, {} queries in pool, {} conns",
        args.rows,
        queries.len(),
        args.conns
    );

    let scenarios: Vec<Scenario> = if args.assert_clean {
        // CI smoke: moderate Poisson arrivals well under capacity with a
        // deep queue — every request must succeed.
        vec![Scenario {
            name: "smoke",
            workers: args.workers,
            max_batch: 16,
            queue_high_water: 4096,
            rate: if args.rate == 0 { 200 } else { args.rate },
            conns: args.conns,
            duration: args.duration,
            deadline_ms: 60_000,
        }]
    } else {
        let base = Scenario {
            name: "unbatched",
            workers: args.workers,
            max_batch: 1,
            queue_high_water: 1 << 20,
            rate: args.rate, // default 0 = flood, measuring capacity
            conns: args.conns,
            duration: args.duration,
            deadline_ms: 600_000,
        };
        vec![
            base.clone(),
            Scenario {
                name: "batched",
                max_batch: 16,
                ..base.clone()
            },
            // Overload: few workers, shallow queue, flooded — sheds must be
            // explicit and tail latency bounded by the queue depth.
            Scenario {
                name: "overload",
                workers: 2,
                max_batch: 8,
                queue_high_water: 64,
                ..base
            },
        ]
    };

    println!("{CSV_HEADER}");
    let mut rows = Vec::new();
    let mut slow_dump = String::new();
    let mut clean = true;
    for sc in &scenarios {
        let out = run_scenario(&db, &queries, sc, args.seed + 7);
        let row = out.csv_row(sc);
        println!("{row}");
        eprintln!(
            "  {}: {:.1} req/s served, p50 {} us, p99 {} us (server p99 {} us), \
             shed {}/{}, errors {}",
            sc.name,
            out.throughput(),
            out.p50_us,
            out.p99_us,
            out.srv.p99_us,
            out.tally.shed,
            out.srv.shed,
            out.tally.errors
        );
        if out.tally.errors > 0 || out.tally.ok == 0 {
            clean = false;
        }
        if !out.server_view_consistent() {
            eprintln!(
                "  {}: server view disagrees with tally (admitted {} vs ok+expired+errors {}, \
                 shed {} vs {})",
                sc.name,
                out.srv.admitted,
                out.tally.ok + out.tally.expired + out.tally.errors,
                out.srv.shed,
                out.tally.shed
            );
            clean = false;
        }
        if args.assert_clean && (out.tally.shed > 0 || out.tally.expired > 0) {
            clean = false;
        }
        use std::fmt::Write as _;
        let _ = writeln!(slow_dump, "# scenario {}", sc.name);
        for s in &out.slow {
            let _ = writeln!(
                slow_dump,
                "request {} total {} us (queue {} + exec {}) watermark {} plan {:?} phases {}",
                s.request_id,
                s.total_us,
                s.queue_us,
                s.exec_us,
                s.watermark,
                s.plan,
                s.phases
                    .iter()
                    .map(|p| format!("{}×{}:{}ns", p.name, p.spans, p.total_ns))
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        rows.push(row);
    }

    if let Some(path) = &args.slow_log {
        std::fs::write(path, &slow_dump).expect("write slow log");
        eprintln!("loadgen: wrote slow-query log to {path}");
    }

    if let Some(path) = &args.csv {
        let mut f = std::fs::File::create(path).expect("create csv");
        writeln!(f, "{CSV_HEADER}").unwrap();
        for row in &rows {
            writeln!(f, "{row}").unwrap();
        }
        eprintln!("loadgen: wrote {path}");
    }

    if args.assert_clean && !clean {
        eprintln!("loadgen: FAILED assertion (errors, sheds, or zero throughput)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
