//! The `IBQP` wire protocol: length-prefixed, CRC-framed request/response
//! messages over a byte stream.
//!
//! A connection opens with a 6-byte handshake from each side (magic
//! `IBQP` + version, the same `wire::write_header` discipline as every
//! on-disk format); after that, both directions carry frames:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u64 request_id][u8 kind][kind-specific body]
//! ```
//!
//! The framing mirrors the WAL (`ibis-storage/src/wal.rs`): payloads are
//! capped at [`MAX_MSG_LEN`], allocation grows with the bytes actually
//! read, and the checksum gates the body parser — so a truncated,
//! bit-flipped, or lying-length frame yields a clean [`io::Error`], never a
//! panic, a hang, or a huge reservation. Frame-level damage is
//! **connection-fatal** (the stream can no longer be trusted to be
//! aligned); *semantic* damage inside a checksummed body (an unsorted
//! search key, an unknown policy byte) is not — it decodes to an error the
//! server answers with [`ErrorCode::BadRequest`], keeping the connection.

use ibis_core::{wire, MissingPolicy, Predicate, RangeQuery};
use ibis_storage::crc::crc32;
use std::io::{self, Read, Write};

/// Magic bytes opening every connection, in both directions.
pub const PROTO_MAGIC: &[u8; 4] = b"IBQP";
/// Protocol version carried in the handshake.
pub const PROTO_VERSION: u16 = 1;
/// Upper bound on one frame's payload. A request holds one search key and
/// a response one row-id set, so anything larger is corruption (or an
/// answer too large to serve); never allocated.
pub const MAX_MSG_LEN: usize = 1 << 24;

/// Smallest possible payload: request_id(8) + kind(1).
const MIN_MSG_LEN: usize = 9;

/// Writes the 6-byte `IBQP` handshake header.
pub fn write_handshake(w: &mut impl Write) -> io::Result<()> {
    wire::write_header(w, PROTO_MAGIC, PROTO_VERSION)
}

/// Reads and validates the peer's handshake header.
pub fn read_handshake(r: &mut impl Read) -> io::Result<()> {
    wire::read_header(r, PROTO_MAGIC, PROTO_VERSION)
}

/// One decoded frame: the correlation id, the kind tag, and the
/// checksummed body bytes (request_id and kind already stripped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Message kind tag; see [`Request`] and [`Response`] decoders.
    pub kind: u8,
    /// Kind-specific body.
    pub body: Vec<u8>,
}

/// Writes one frame. Fails with `InvalidInput` if the payload would exceed
/// [`MAX_MSG_LEN`] — checked *before* the length cast, mirroring the WAL
/// writer's `FrameTooLarge` guard.
pub fn write_frame(w: &mut impl Write, request_id: u64, kind: u8, body: &[u8]) -> io::Result<()> {
    let len = MIN_MSG_LEN + body.len();
    if len > MAX_MSG_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {len} bytes exceeds MAX_MSG_LEN ({MAX_MSG_LEN})"),
        ));
    }
    let mut payload = Vec::with_capacity(len);
    wire::write_u64(&mut payload, request_id)?;
    wire::write_u8(&mut payload, kind)?;
    payload.extend_from_slice(body);
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(&payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(&payload)
}

/// Reads one frame, validating the length cap and checksum. Any failure
/// here means the stream is no longer frame-aligned and the connection
/// must be dropped.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    if !(MIN_MSG_LEN..=MAX_MSG_LEN).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside {MIN_MSG_LEN}..={MAX_MSG_LEN}"),
        ));
    }
    let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
    // Incremental read: allocation tracks bytes actually present, so a
    // lying length field hits EOF cleanly, never a giant reservation.
    let mut payload = Vec::with_capacity(len.min(1 << 20));
    let mut remaining = len;
    let mut chunk = [0u8; 64 * 1024];
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    if crc32(&payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    let r = &mut payload.as_slice();
    let request_id = wire::read_u64(r)?;
    let kind = wire::read_u8(r)?;
    Ok(Frame {
        request_id,
        kind,
        body: r.to_vec(),
    })
}

/// Request kind tags.
pub mod request_kind {
    /// A [`Request::Query`](super::Request::Query).
    pub const QUERY: u8 = 1;
    /// A [`Request::Ping`](super::Request::Ping).
    pub const PING: u8 = 2;
    /// A [`Request::Stats`](super::Request::Stats).
    pub const STATS: u8 = 3;
    /// A [`Request::Health`](super::Request::Health).
    pub const HEALTH: u8 = 4;
}

/// Response kind tags.
pub mod response_kind {
    /// A [`Response::Rows`](super::Response::Rows).
    pub const ROWS: u8 = 1;
    /// A [`Response::Count`](super::Response::Count).
    pub const COUNT: u8 = 2;
    /// A [`Response::Error`](super::Response::Error).
    pub const ERROR: u8 = 3;
    /// A [`Response::Pong`](super::Response::Pong).
    pub const PONG: u8 = 4;
    /// A [`Response::Stats`](super::Response::Stats).
    pub const STATS: u8 = 5;
    /// A [`Response::Health`](super::Response::Health).
    pub const HEALTH: u8 = 6;
}

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Execute a range query against the current snapshot.
    Query {
        /// The validated search key + missing policy.
        query: RangeQuery,
        /// Reply with [`Response::Count`] instead of materialized rows.
        count_only: bool,
        /// Per-request deadline in milliseconds; `0` means "use the
        /// server's default" (fed from the oracle's `case_budget_ms`).
        deadline_ms: u32,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Telemetry snapshot request; answered with [`Response::Stats`].
    /// Served off the worker pool (on the connection's reader thread), so
    /// it answers even while every worker is saturated.
    Stats {
        /// Include the slow-query log in the report (it is the bulky
        /// part; dashboards polling every second usually skip it).
        include_slow: bool,
    },
    /// Cheap liveness + load probe; answered with [`Response::Health`].
    /// Also served off the worker pool.
    Health,
}

impl Request {
    /// Encodes this request's kind tag and body.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Query {
                query,
                count_only,
                deadline_ms,
            } => {
                let mut b = Vec::new();
                let policy = match query.policy() {
                    MissingPolicy::IsMatch => 0u8,
                    MissingPolicy::IsNotMatch => 1u8,
                };
                wire::write_u8(&mut b, policy).expect("vec write");
                wire::write_u8(&mut b, u8::from(*count_only)).expect("vec write");
                wire::write_u32(&mut b, *deadline_ms).expect("vec write");
                let preds = query.predicates();
                wire::write_u16(&mut b, preds.len() as u16).expect("vec write");
                for p in preds {
                    wire::write_u32(&mut b, p.attr as u32).expect("vec write");
                    wire::write_u16(&mut b, p.interval.lo).expect("vec write");
                    wire::write_u16(&mut b, p.interval.hi).expect("vec write");
                }
                (request_kind::QUERY, b)
            }
            Request::Ping => (request_kind::PING, Vec::new()),
            Request::Stats { include_slow } => {
                let mut b = Vec::new();
                wire::write_u8(&mut b, u8::from(*include_slow)).expect("vec write");
                (request_kind::STATS, b)
            }
            Request::Health => (request_kind::HEALTH, Vec::new()),
        }
    }

    /// Decodes a request from a CRC-validated frame. `Err(reason)` is a
    /// *semantic* rejection — the server answers it with
    /// [`ErrorCode::BadRequest`] and keeps the connection, because the
    /// checksum proved the framing itself is intact.
    pub fn decode(frame: &Frame) -> Result<Request, String> {
        let r = &mut frame.body.as_slice();
        let bad = |what: &str| format!("malformed query request: {what}");
        match frame.kind {
            request_kind::QUERY => {
                let policy = match wire::read_u8(r).map_err(|_| bad("missing policy byte"))? {
                    0 => MissingPolicy::IsMatch,
                    1 => MissingPolicy::IsNotMatch,
                    other => return Err(bad(&format!("unknown policy {other}"))),
                };
                let count_only = wire::read_u8(r).map_err(|_| bad("missing count flag"))? != 0;
                let deadline_ms = wire::read_u32(r).map_err(|_| bad("missing deadline"))?;
                let n = wire::read_u16(r).map_err(|_| bad("missing predicate count"))? as usize;
                let mut preds = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    let attr = wire::read_u32(r).map_err(|_| bad("truncated predicate"))? as usize;
                    let lo = wire::read_u16(r).map_err(|_| bad("truncated predicate"))?;
                    let hi = wire::read_u16(r).map_err(|_| bad("truncated predicate"))?;
                    preds.push(Predicate::range(attr, lo, hi));
                }
                if !r.is_empty() {
                    return Err(bad("trailing bytes"));
                }
                let query = RangeQuery::new(preds, policy)
                    .map_err(|e| format!("invalid search key: {e}"))?;
                Ok(Request::Query {
                    query,
                    count_only,
                    deadline_ms,
                })
            }
            request_kind::PING => {
                if !frame.body.is_empty() {
                    return Err(bad("ping carries a body"));
                }
                Ok(Request::Ping)
            }
            request_kind::STATS => {
                let include_slow = match wire::read_u8(r) {
                    Ok(0) => false,
                    Ok(1) => true,
                    Ok(other) => return Err(bad(&format!("unknown slow flag {other}"))),
                    Err(_) => return Err(bad("missing slow flag")),
                };
                if !r.is_empty() {
                    return Err(bad("trailing bytes"));
                }
                Ok(Request::Stats { include_slow })
            }
            request_kind::HEALTH => {
                if !frame.body.is_empty() {
                    return Err(bad("health carries a body"));
                }
                Ok(Request::Health)
            }
            other => Err(format!("unknown request kind {other}")),
        }
    }
}

/// Why a request was refused. Carried as one byte in
/// [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request decoded but was semantically invalid (bad search key,
    /// unknown policy/kind). The connection stays up.
    BadRequest,
    /// Admission control shed the request: the worker queue was past its
    /// high-water mark. Retry later against a less-loaded server.
    Overloaded,
    /// The per-request deadline expired before (or while) the query ran;
    /// no rows are returned.
    DeadlineExceeded,
    /// The engine failed executing a well-formed query.
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::Overloaded => 2,
            ErrorCode::DeadlineExceeded => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::Overloaded),
            3 => Some(ErrorCode::DeadlineExceeded),
            4 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// One phase of a traced request: every span sharing a name under the
/// request's root, with the summed counter-field deltas those spans
/// carried. Across all phases of one [`SlowQuery`], the counter deltas sum
/// exactly to the query's final [`SlowQuery::counters`] — the PR 4 profile
/// invariant, extended across the wire.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SlowPhase {
    /// Span name, e.g. `"db.shard"`.
    pub name: String,
    /// Number of spans aggregated into this phase.
    pub spans: u64,
    /// Summed inclusive elapsed nanoseconds.
    pub total_ns: u64,
    /// Summed counter-field deltas (`WorkCounters` field names).
    pub counters: Vec<(String, u64)>,
}

/// One entry of the server's bounded slow-query log: the N worst traced
/// requests by total (queue + execute) latency.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SlowQuery {
    /// The client's correlation id for the request.
    pub request_id: u64,
    /// Watermark of the snapshot that served it.
    pub watermark: u64,
    /// Human-readable plan (the query's `Display` form).
    pub plan: String,
    /// Time spent queued before a worker picked the job up, microseconds.
    pub queue_us: u64,
    /// Execution time on the worker, microseconds.
    pub exec_us: u64,
    /// End-to-end latency (queue + execute), microseconds.
    pub total_us: u64,
    /// Final `WorkCounters` of the execution, as `(field, value)` pairs.
    pub counters: Vec<(String, u64)>,
    /// Per-phase span aggregation under the request's root span.
    pub phases: Vec<SlowPhase>,
}

/// Body of a [`Response::Stats`]: headline load gauges read directly from
/// the serving structures, the full metric registry as canonical obs
/// JSON (counters, gauges, histograms, and the live windowed rings —
/// parse with `ibis_obs::Snapshot::from_json`), and optionally the
/// slow-query log.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Watermark of the current serving snapshot.
    pub watermark: u64,
    /// Jobs waiting in the worker queue right now.
    pub queue_depth: u32,
    /// Admission high-water mark the queue sheds at.
    pub queue_high_water: u32,
    /// Size of the worker pool.
    pub workers: u32,
    /// Workers currently executing a drained job set.
    pub workers_busy: u32,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// `ibis_obs::Registry::export().to_json()` at snapshot time.
    pub metrics_json: String,
    /// Slow-query log, worst-first; empty unless requested.
    pub slow_queries: Vec<SlowQuery>,
}

/// Body of a [`Response::Health`]: enough to answer "should this server
/// get more traffic" in one small frame.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Whether the server is accepting work (queue below high water).
    pub healthy: bool,
    /// Watermark of the current serving snapshot.
    pub watermark: u64,
    /// Jobs waiting in the worker queue right now.
    pub queue_depth: u32,
    /// Admission high-water mark.
    pub queue_high_water: u32,
    /// Size of the worker pool.
    pub workers: u32,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

fn write_counter_pairs(b: &mut Vec<u8>, pairs: &[(String, u64)]) {
    wire::write_u16(b, pairs.len() as u16).expect("vec write");
    for (k, v) in pairs {
        wire::write_str(b, k).expect("vec write");
        wire::write_u64(b, *v).expect("vec write");
    }
}

fn read_counter_pairs(r: &mut &[u8]) -> io::Result<Vec<(String, u64)>> {
    let n = wire::read_u16(r)? as usize;
    let mut pairs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        pairs.push((wire::read_str(r)?, wire::read_u64(r)?));
    }
    Ok(pairs)
}

impl StatsReport {
    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        wire::write_u64(&mut b, self.watermark).expect("vec write");
        wire::write_u32(&mut b, self.queue_depth).expect("vec write");
        wire::write_u32(&mut b, self.queue_high_water).expect("vec write");
        wire::write_u32(&mut b, self.workers).expect("vec write");
        wire::write_u32(&mut b, self.workers_busy).expect("vec write");
        wire::write_u64(&mut b, self.uptime_ms).expect("vec write");
        wire::write_str(&mut b, &self.metrics_json).expect("vec write");
        wire::write_u16(&mut b, self.slow_queries.len() as u16).expect("vec write");
        for s in &self.slow_queries {
            wire::write_u64(&mut b, s.request_id).expect("vec write");
            wire::write_u64(&mut b, s.watermark).expect("vec write");
            wire::write_str(&mut b, &s.plan).expect("vec write");
            wire::write_u64(&mut b, s.queue_us).expect("vec write");
            wire::write_u64(&mut b, s.exec_us).expect("vec write");
            wire::write_u64(&mut b, s.total_us).expect("vec write");
            write_counter_pairs(&mut b, &s.counters);
            wire::write_u16(&mut b, s.phases.len() as u16).expect("vec write");
            for p in &s.phases {
                wire::write_str(&mut b, &p.name).expect("vec write");
                wire::write_u64(&mut b, p.spans).expect("vec write");
                wire::write_u64(&mut b, p.total_ns).expect("vec write");
                write_counter_pairs(&mut b, &p.counters);
            }
        }
        b
    }

    fn decode_body(r: &mut &[u8]) -> io::Result<StatsReport> {
        let watermark = wire::read_u64(r)?;
        let queue_depth = wire::read_u32(r)?;
        let queue_high_water = wire::read_u32(r)?;
        let workers = wire::read_u32(r)?;
        let workers_busy = wire::read_u32(r)?;
        let uptime_ms = wire::read_u64(r)?;
        let metrics_json = wire::read_str(r)?;
        let n_slow = wire::read_u16(r)? as usize;
        let mut slow_queries = Vec::with_capacity(n_slow.min(64));
        for _ in 0..n_slow {
            let request_id = wire::read_u64(r)?;
            let watermark = wire::read_u64(r)?;
            let plan = wire::read_str(r)?;
            let queue_us = wire::read_u64(r)?;
            let exec_us = wire::read_u64(r)?;
            let total_us = wire::read_u64(r)?;
            let counters = read_counter_pairs(r)?;
            let n_phases = wire::read_u16(r)? as usize;
            let mut phases = Vec::with_capacity(n_phases.min(64));
            for _ in 0..n_phases {
                phases.push(SlowPhase {
                    name: wire::read_str(r)?,
                    spans: wire::read_u64(r)?,
                    total_ns: wire::read_u64(r)?,
                    counters: read_counter_pairs(r)?,
                });
            }
            slow_queries.push(SlowQuery {
                request_id,
                watermark,
                plan,
                queue_us,
                exec_us,
                total_us,
                counters,
                phases,
            });
        }
        Ok(StatsReport {
            watermark,
            queue_depth,
            queue_high_water,
            workers,
            workers_busy,
            uptime_ms,
            metrics_json,
            slow_queries,
        })
    }
}

impl HealthReport {
    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        wire::write_u8(&mut b, u8::from(self.healthy)).expect("vec write");
        wire::write_u64(&mut b, self.watermark).expect("vec write");
        wire::write_u32(&mut b, self.queue_depth).expect("vec write");
        wire::write_u32(&mut b, self.queue_high_water).expect("vec write");
        wire::write_u32(&mut b, self.workers).expect("vec write");
        wire::write_u64(&mut b, self.uptime_ms).expect("vec write");
        b
    }

    fn decode_body(r: &mut &[u8]) -> io::Result<HealthReport> {
        Ok(HealthReport {
            healthy: wire::read_u8(r)? != 0,
            watermark: wire::read_u64(r)?,
            queue_depth: wire::read_u32(r)?,
            queue_high_water: wire::read_u32(r)?,
            workers: wire::read_u32(r)?,
            uptime_ms: wire::read_u64(r)?,
        })
    }
}

/// One server response, correlated to its request by the echoed id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Matching global row ids, sorted ascending, plus the snapshot
    /// watermark they were computed at.
    Rows {
        /// Mutation watermark of the snapshot that served the query.
        watermark: u64,
        /// Matching global row ids, ascending.
        rows: Vec<u32>,
    },
    /// Match count (for `count_only` requests) plus the watermark.
    Count {
        /// Mutation watermark of the snapshot that served the query.
        watermark: u64,
        /// Number of matching rows.
        count: u64,
    },
    /// The request was refused or failed; see [`ErrorCode`].
    Error {
        /// Why the request was refused.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`] (boxed: it is much larger than the
    /// query-path variants and must not tax their size).
    Stats(Box<StatsReport>),
    /// Answer to [`Request::Health`].
    Health(HealthReport),
}

impl Response {
    /// Encodes this response's kind tag and body.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::Rows { watermark, rows } => {
                let mut b = Vec::new();
                wire::write_u64(&mut b, *watermark).expect("vec write");
                wire::write_vec_u32(&mut b, rows).expect("vec write");
                (response_kind::ROWS, b)
            }
            Response::Count { watermark, count } => {
                let mut b = Vec::new();
                wire::write_u64(&mut b, *watermark).expect("vec write");
                wire::write_u64(&mut b, *count).expect("vec write");
                (response_kind::COUNT, b)
            }
            Response::Error { code, message } => {
                let mut b = Vec::new();
                wire::write_u8(&mut b, code.to_byte()).expect("vec write");
                wire::write_str(&mut b, message).expect("vec write");
                (response_kind::ERROR, b)
            }
            Response::Pong => (response_kind::PONG, Vec::new()),
            Response::Stats(report) => (response_kind::STATS, report.encode_body()),
            Response::Health(report) => (response_kind::HEALTH, report.encode_body()),
        }
    }

    /// Decodes a response from a CRC-validated frame. Errors are
    /// connection-fatal on the client side: a response the client cannot
    /// understand means the versions disagree or the stream is corrupt.
    pub fn decode(frame: &Frame) -> io::Result<Response> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let r = &mut frame.body.as_slice();
        let resp = match frame.kind {
            response_kind::ROWS => Response::Rows {
                watermark: wire::read_u64(r)?,
                rows: wire::read_vec_u32(r)?,
            },
            response_kind::COUNT => Response::Count {
                watermark: wire::read_u64(r)?,
                count: wire::read_u64(r)?,
            },
            response_kind::ERROR => Response::Error {
                code: ErrorCode::from_byte(wire::read_u8(r)?)
                    .ok_or_else(|| bad("unknown error code"))?,
                message: wire::read_str(r)?,
            },
            response_kind::PONG => Response::Pong,
            response_kind::STATS => Response::Stats(Box::new(StatsReport::decode_body(r)?)),
            response_kind::HEALTH => Response::Health(HealthReport::decode_body(r)?),
            other => return Err(bad(&format!("unknown response kind {other}"))),
        };
        if !r.is_empty() {
            return Err(bad("trailing bytes in response body"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(k: usize) -> RangeQuery {
        let preds = (0..k).map(|a| Predicate::range(a, 1, 3)).collect();
        RangeQuery::new(preds, MissingPolicy::IsNotMatch).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Query {
                query: q(3),
                count_only: true,
                deadline_ms: 250,
            },
            Request::Ping,
            Request::Stats { include_slow: true },
            Request::Stats {
                include_slow: false,
            },
            Request::Health,
        ] {
            let (kind, body) = req.encode();
            let mut buf = Vec::new();
            write_frame(&mut buf, 42, kind, &body).unwrap();
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(frame.request_id, 42);
            assert_eq!(Request::decode(&frame).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Rows {
                watermark: 7,
                rows: vec![1, 5, 9],
            },
            Response::Count {
                watermark: 7,
                count: 3,
            },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
            Response::Pong,
            Response::Stats(Box::new(StatsReport {
                watermark: 12,
                queue_depth: 3,
                queue_high_water: 256,
                workers: 4,
                workers_busy: 2,
                uptime_ms: 5000,
                metrics_json: "{\"spans\":[]}".into(),
                slow_queries: vec![SlowQuery {
                    request_id: 77,
                    watermark: 12,
                    plan: "a0∈[1,3] ∧ a2∈[0,9] (IsNotMatch)".into(),
                    queue_us: 150,
                    exec_us: 900,
                    total_us: 1050,
                    counters: vec![("bitmap_reads".into(), 6), ("ops".into(), 4)],
                    phases: vec![SlowPhase {
                        name: "db.shard".into(),
                        spans: 2,
                        total_ns: 880_000,
                        counters: vec![("bitmap_reads".into(), 6), ("ops".into(), 4)],
                    }],
                }],
            })),
            Response::Stats(Box::default()),
            Response::Health(HealthReport {
                healthy: true,
                watermark: 12,
                queue_depth: 0,
                queue_high_water: 256,
                workers: 4,
                uptime_ms: 9,
            }),
        ] {
            let (kind, body) = resp.encode();
            let mut buf = Vec::new();
            write_frame(&mut buf, 9, kind, &body).unwrap();
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(Response::decode(&frame).unwrap(), resp);
        }
    }

    #[test]
    fn stats_request_rejects_bad_flag_softly() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, request_kind::STATS, &[7]).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert!(Request::decode(&frame).unwrap_err().contains("slow flag"));
        // And a health probe with a body is semantic damage, not framing.
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, request_kind::HEALTH, &[0]).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert!(Request::decode(&frame).unwrap_err().contains("body"));
    }

    #[test]
    fn semantic_damage_is_a_soft_error_not_a_frame_error() {
        // A search key with a duplicated attribute survives framing (CRC
        // valid) but fails decode with a reason the server can answer.
        let mut body = Vec::new();
        wire::write_u8(&mut body, 0).unwrap(); // policy
        wire::write_u8(&mut body, 0).unwrap(); // count flag
        wire::write_u32(&mut body, 0).unwrap(); // deadline
        wire::write_u16(&mut body, 2).unwrap();
        for attr in [5u32, 5] {
            wire::write_u32(&mut body, attr).unwrap();
            wire::write_u16(&mut body, 1).unwrap();
            wire::write_u16(&mut body, 1).unwrap();
        }
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, request_kind::QUERY, &body).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert!(Request::decode(&frame).unwrap_err().contains("search key"));
    }

    #[test]
    fn oversized_frames_are_refused_at_write_time() {
        let body = vec![0u8; MAX_MSG_LEN];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, 1, request_kind::PING, &body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing hit the stream");
    }
}
