//! The `IBQP` wire protocol: length-prefixed, CRC-framed request/response
//! messages over a byte stream.
//!
//! A connection opens with a 6-byte handshake from each side (magic
//! `IBQP` + version, the same `wire::write_header` discipline as every
//! on-disk format); after that, both directions carry frames:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u64 request_id][u8 kind][kind-specific body]
//! ```
//!
//! The framing mirrors the WAL (`ibis-storage/src/wal.rs`): payloads are
//! capped at [`MAX_MSG_LEN`], allocation grows with the bytes actually
//! read, and the checksum gates the body parser — so a truncated,
//! bit-flipped, or lying-length frame yields a clean [`io::Error`], never a
//! panic, a hang, or a huge reservation. Frame-level damage is
//! **connection-fatal** (the stream can no longer be trusted to be
//! aligned); *semantic* damage inside a checksummed body (an unsorted
//! search key, an unknown policy byte) is not — it decodes to an error the
//! server answers with [`ErrorCode::BadRequest`], keeping the connection.

use ibis_core::{wire, MissingPolicy, Predicate, RangeQuery};
use ibis_storage::crc::crc32;
use std::io::{self, Read, Write};

/// Magic bytes opening every connection, in both directions.
pub const PROTO_MAGIC: &[u8; 4] = b"IBQP";
/// Protocol version carried in the handshake.
pub const PROTO_VERSION: u16 = 1;
/// Upper bound on one frame's payload. A request holds one search key and
/// a response one row-id set, so anything larger is corruption (or an
/// answer too large to serve); never allocated.
pub const MAX_MSG_LEN: usize = 1 << 24;

/// Smallest possible payload: request_id(8) + kind(1).
const MIN_MSG_LEN: usize = 9;

/// Writes the 6-byte `IBQP` handshake header.
pub fn write_handshake(w: &mut impl Write) -> io::Result<()> {
    wire::write_header(w, PROTO_MAGIC, PROTO_VERSION)
}

/// Reads and validates the peer's handshake header.
pub fn read_handshake(r: &mut impl Read) -> io::Result<()> {
    wire::read_header(r, PROTO_MAGIC, PROTO_VERSION)
}

/// One decoded frame: the correlation id, the kind tag, and the
/// checksummed body bytes (request_id and kind already stripped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Message kind tag; see [`Request`] and [`Response`] decoders.
    pub kind: u8,
    /// Kind-specific body.
    pub body: Vec<u8>,
}

/// Writes one frame. Fails with `InvalidInput` if the payload would exceed
/// [`MAX_MSG_LEN`] — checked *before* the length cast, mirroring the WAL
/// writer's `FrameTooLarge` guard.
pub fn write_frame(w: &mut impl Write, request_id: u64, kind: u8, body: &[u8]) -> io::Result<()> {
    let len = MIN_MSG_LEN + body.len();
    if len > MAX_MSG_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {len} bytes exceeds MAX_MSG_LEN ({MAX_MSG_LEN})"),
        ));
    }
    let mut payload = Vec::with_capacity(len);
    wire::write_u64(&mut payload, request_id)?;
    wire::write_u8(&mut payload, kind)?;
    payload.extend_from_slice(body);
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(&payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(&payload)
}

/// Reads one frame, validating the length cap and checksum. Any failure
/// here means the stream is no longer frame-aligned and the connection
/// must be dropped.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    if !(MIN_MSG_LEN..=MAX_MSG_LEN).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside {MIN_MSG_LEN}..={MAX_MSG_LEN}"),
        ));
    }
    let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
    // Incremental read: allocation tracks bytes actually present, so a
    // lying length field hits EOF cleanly, never a giant reservation.
    let mut payload = Vec::with_capacity(len.min(1 << 20));
    let mut remaining = len;
    let mut chunk = [0u8; 64 * 1024];
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    if crc32(&payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    let r = &mut payload.as_slice();
    let request_id = wire::read_u64(r)?;
    let kind = wire::read_u8(r)?;
    Ok(Frame {
        request_id,
        kind,
        body: r.to_vec(),
    })
}

/// Request kind tags.
pub mod request_kind {
    /// A [`Request::Query`].
    pub const QUERY: u8 = 1;
    /// A [`Request::Ping`].
    pub const PING: u8 = 2;
}

/// Response kind tags.
pub mod response_kind {
    /// A [`Response::Rows`].
    pub const ROWS: u8 = 1;
    /// A [`Response::Count`].
    pub const COUNT: u8 = 2;
    /// A [`Response::Error`].
    pub const ERROR: u8 = 3;
    /// A [`Response::Pong`].
    pub const PONG: u8 = 4;
}

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Execute a range query against the current snapshot.
    Query {
        /// The validated search key + missing policy.
        query: RangeQuery,
        /// Reply with [`Response::Count`] instead of materialized rows.
        count_only: bool,
        /// Per-request deadline in milliseconds; `0` means "use the
        /// server's default" (fed from the oracle's `case_budget_ms`).
        deadline_ms: u32,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
}

impl Request {
    /// Encodes this request's kind tag and body.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Query {
                query,
                count_only,
                deadline_ms,
            } => {
                let mut b = Vec::new();
                let policy = match query.policy() {
                    MissingPolicy::IsMatch => 0u8,
                    MissingPolicy::IsNotMatch => 1u8,
                };
                wire::write_u8(&mut b, policy).expect("vec write");
                wire::write_u8(&mut b, u8::from(*count_only)).expect("vec write");
                wire::write_u32(&mut b, *deadline_ms).expect("vec write");
                let preds = query.predicates();
                wire::write_u16(&mut b, preds.len() as u16).expect("vec write");
                for p in preds {
                    wire::write_u32(&mut b, p.attr as u32).expect("vec write");
                    wire::write_u16(&mut b, p.interval.lo).expect("vec write");
                    wire::write_u16(&mut b, p.interval.hi).expect("vec write");
                }
                (request_kind::QUERY, b)
            }
            Request::Ping => (request_kind::PING, Vec::new()),
        }
    }

    /// Decodes a request from a CRC-validated frame. `Err(reason)` is a
    /// *semantic* rejection — the server answers it with
    /// [`ErrorCode::BadRequest`] and keeps the connection, because the
    /// checksum proved the framing itself is intact.
    pub fn decode(frame: &Frame) -> Result<Request, String> {
        let r = &mut frame.body.as_slice();
        let bad = |what: &str| format!("malformed query request: {what}");
        match frame.kind {
            request_kind::QUERY => {
                let policy = match wire::read_u8(r).map_err(|_| bad("missing policy byte"))? {
                    0 => MissingPolicy::IsMatch,
                    1 => MissingPolicy::IsNotMatch,
                    other => return Err(bad(&format!("unknown policy {other}"))),
                };
                let count_only = wire::read_u8(r).map_err(|_| bad("missing count flag"))? != 0;
                let deadline_ms = wire::read_u32(r).map_err(|_| bad("missing deadline"))?;
                let n = wire::read_u16(r).map_err(|_| bad("missing predicate count"))? as usize;
                let mut preds = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    let attr = wire::read_u32(r).map_err(|_| bad("truncated predicate"))? as usize;
                    let lo = wire::read_u16(r).map_err(|_| bad("truncated predicate"))?;
                    let hi = wire::read_u16(r).map_err(|_| bad("truncated predicate"))?;
                    preds.push(Predicate::range(attr, lo, hi));
                }
                if !r.is_empty() {
                    return Err(bad("trailing bytes"));
                }
                let query = RangeQuery::new(preds, policy)
                    .map_err(|e| format!("invalid search key: {e}"))?;
                Ok(Request::Query {
                    query,
                    count_only,
                    deadline_ms,
                })
            }
            request_kind::PING => {
                if !frame.body.is_empty() {
                    return Err(bad("ping carries a body"));
                }
                Ok(Request::Ping)
            }
            other => Err(format!("unknown request kind {other}")),
        }
    }
}

/// Why a request was refused. Carried as one byte in
/// [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request decoded but was semantically invalid (bad search key,
    /// unknown policy/kind). The connection stays up.
    BadRequest,
    /// Admission control shed the request: the worker queue was past its
    /// high-water mark. Retry later against a less-loaded server.
    Overloaded,
    /// The per-request deadline expired before (or while) the query ran;
    /// no rows are returned.
    DeadlineExceeded,
    /// The engine failed executing a well-formed query.
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::Overloaded => 2,
            ErrorCode::DeadlineExceeded => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::Overloaded),
            3 => Some(ErrorCode::DeadlineExceeded),
            4 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// One server response, correlated to its request by the echoed id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Matching global row ids, sorted ascending, plus the snapshot
    /// watermark they were computed at.
    Rows {
        /// Mutation watermark of the snapshot that served the query.
        watermark: u64,
        /// Matching global row ids, ascending.
        rows: Vec<u32>,
    },
    /// Match count (for `count_only` requests) plus the watermark.
    Count {
        /// Mutation watermark of the snapshot that served the query.
        watermark: u64,
        /// Number of matching rows.
        count: u64,
    },
    /// The request was refused or failed; see [`ErrorCode`].
    Error {
        /// Why the request was refused.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
}

impl Response {
    /// Encodes this response's kind tag and body.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::Rows { watermark, rows } => {
                let mut b = Vec::new();
                wire::write_u64(&mut b, *watermark).expect("vec write");
                wire::write_vec_u32(&mut b, rows).expect("vec write");
                (response_kind::ROWS, b)
            }
            Response::Count { watermark, count } => {
                let mut b = Vec::new();
                wire::write_u64(&mut b, *watermark).expect("vec write");
                wire::write_u64(&mut b, *count).expect("vec write");
                (response_kind::COUNT, b)
            }
            Response::Error { code, message } => {
                let mut b = Vec::new();
                wire::write_u8(&mut b, code.to_byte()).expect("vec write");
                wire::write_str(&mut b, message).expect("vec write");
                (response_kind::ERROR, b)
            }
            Response::Pong => (response_kind::PONG, Vec::new()),
        }
    }

    /// Decodes a response from a CRC-validated frame. Errors are
    /// connection-fatal on the client side: a response the client cannot
    /// understand means the versions disagree or the stream is corrupt.
    pub fn decode(frame: &Frame) -> io::Result<Response> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let r = &mut frame.body.as_slice();
        let resp = match frame.kind {
            response_kind::ROWS => Response::Rows {
                watermark: wire::read_u64(r)?,
                rows: wire::read_vec_u32(r)?,
            },
            response_kind::COUNT => Response::Count {
                watermark: wire::read_u64(r)?,
                count: wire::read_u64(r)?,
            },
            response_kind::ERROR => Response::Error {
                code: ErrorCode::from_byte(wire::read_u8(r)?)
                    .ok_or_else(|| bad("unknown error code"))?,
                message: wire::read_str(r)?,
            },
            response_kind::PONG => Response::Pong,
            other => return Err(bad(&format!("unknown response kind {other}"))),
        };
        if !r.is_empty() {
            return Err(bad("trailing bytes in response body"));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(k: usize) -> RangeQuery {
        let preds = (0..k).map(|a| Predicate::range(a, 1, 3)).collect();
        RangeQuery::new(preds, MissingPolicy::IsNotMatch).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Query {
                query: q(3),
                count_only: true,
                deadline_ms: 250,
            },
            Request::Ping,
        ] {
            let (kind, body) = req.encode();
            let mut buf = Vec::new();
            write_frame(&mut buf, 42, kind, &body).unwrap();
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(frame.request_id, 42);
            assert_eq!(Request::decode(&frame).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Rows {
                watermark: 7,
                rows: vec![1, 5, 9],
            },
            Response::Count {
                watermark: 7,
                count: 3,
            },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "queue full".into(),
            },
            Response::Pong,
        ] {
            let (kind, body) = resp.encode();
            let mut buf = Vec::new();
            write_frame(&mut buf, 9, kind, &body).unwrap();
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(Response::decode(&frame).unwrap(), resp);
        }
    }

    #[test]
    fn semantic_damage_is_a_soft_error_not_a_frame_error() {
        // A search key with a duplicated attribute survives framing (CRC
        // valid) but fails decode with a reason the server can answer.
        let mut body = Vec::new();
        wire::write_u8(&mut body, 0).unwrap(); // policy
        wire::write_u8(&mut body, 0).unwrap(); // count flag
        wire::write_u32(&mut body, 0).unwrap(); // deadline
        wire::write_u16(&mut body, 2).unwrap();
        for attr in [5u32, 5] {
            wire::write_u32(&mut body, attr).unwrap();
            wire::write_u16(&mut body, 1).unwrap();
            wire::write_u16(&mut body, 1).unwrap();
        }
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, request_kind::QUERY, &body).unwrap();
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert!(Request::decode(&frame).unwrap_err().contains("search key"));
    }

    #[test]
    fn oversized_frames_are_refused_at_write_time() {
        let body = vec![0u8; MAX_MSG_LEN];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, 1, request_kind::PING, &body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing hit the stream");
    }
}
