//! CRC-32 (IEEE 802.3 polynomial, reflected) for frame and snapshot
//! checksums. Hand-rolled table-driven implementation so the storage layer
//! stays dependency-free; the table is computed at compile time.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// The CRC-32 of `bytes` (same polynomial and conventions as zlib/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"incomplete databases".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {i} bit {bit}");
            }
        }
    }
}
