//! The MANIFEST: the single commit point of the storage directory.
//!
//! A manifest names the live snapshot file and the WAL watermark (the
//! highest sequence number already folded into that snapshot). It is
//! replaced atomically — written to `MANIFEST.tmp`, fsynced, then renamed
//! over `MANIFEST` (with a best-effort directory fsync) — so a reader
//! always sees either the old generation or the new one, never a torn mix.

use crate::crc::crc32;
use ibis_core::wire;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

pub(crate) const MANIFEST_MAGIC: &[u8; 4] = b"IBMF";
pub(crate) const MANIFEST_VERSION: u16 = 1;

/// The name the live manifest is published under inside a data directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The committed state of a data directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic checkpoint generation (1 at creation).
    pub generation: u64,
    /// File name (relative to the data directory) of the live snapshot.
    pub snapshot: String,
    /// Highest WAL sequence number captured by that snapshot; recovery
    /// replays only records with `seq > watermark`.
    pub watermark: u64,
}

impl Manifest {
    /// Serializes to `w`: header, CRC, then the checksummed body.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        wire::write_u64(&mut body, self.generation)?;
        wire::write_str(&mut body, &self.snapshot)?;
        wire::write_u64(&mut body, self.watermark)?;
        wire::write_header(w, MANIFEST_MAGIC, MANIFEST_VERSION)?;
        wire::write_u32(w, crc32(&body))?;
        wire::write_bytes(w, &body)
    }

    /// Parses a manifest, verifying the checksum and rejecting snapshot
    /// names that could escape the data directory.
    pub fn read_from(r: &mut impl Read) -> io::Result<Manifest> {
        wire::read_header(r, MANIFEST_MAGIC, MANIFEST_VERSION)?;
        let crc = wire::read_u32(r)?;
        let body = wire::read_bytes(r)?;
        if crc32(&body) != crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "manifest checksum mismatch",
            ));
        }
        let r = &mut body.as_slice();
        let generation = wire::read_u64(r)?;
        let snapshot = wire::read_str(r)?;
        let watermark = wire::read_u64(r)?;
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in manifest",
            ));
        }
        if snapshot.is_empty() || snapshot.contains(['/', '\\']) || snapshot.contains("..") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsafe snapshot name {snapshot:?} in manifest"),
            ));
        }
        Ok(Manifest {
            generation,
            snapshot,
            watermark,
        })
    }

    /// Publishes this manifest into `dir` atomically (write-then-rename).
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join("MANIFEST.tmp");
        {
            let mut f = File::create(&tmp)?;
            self.write_to(&mut f)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        sync_dir(dir)
    }

    /// Loads the published manifest from `dir`.
    pub fn load(dir: &Path) -> io::Result<Manifest> {
        let mut f = File::open(dir.join(MANIFEST_FILE))?;
        Manifest::read_from(&mut f)
    }
}

/// Fsyncs the directory so the rename itself is durable. Best-effort:
/// directory handles are not fsyncable on every platform/filesystem.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    let _ = dir;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ibis_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = Manifest {
            generation: 3,
            snapshot: "snapshot-000003.ibss".into(),
            watermark: 41,
        };
        m.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        assert!(!dir.join("MANIFEST.tmp").exists(), "tmp renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_rejected_cleanly() {
        let mut buf = Vec::new();
        let m = Manifest {
            generation: 1,
            snapshot: "snapshot-000001.ibss".into(),
            watermark: 0,
        };
        m.write_to(&mut buf).unwrap();
        for i in 0..buf.len() {
            let mut broken = buf.clone();
            broken[i] ^= 0x10;
            // Must never panic; almost always errors (a flip in the CRC
            // field itself is still caught by the mismatch check).
            let _ = Manifest::read_from(&mut broken.as_slice());
        }
        for cut in 0..buf.len() {
            assert!(Manifest::read_from(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn traversal_snapshot_names_rejected() {
        for name in ["../evil", "a/b", "a\\b", ""] {
            let mut buf = Vec::new();
            Manifest {
                generation: 1,
                snapshot: name.into(),
                watermark: 0,
            }
            .write_to(&mut buf)
            .unwrap();
            assert!(
                Manifest::read_from(&mut buf.as_slice()).is_err(),
                "{name:?}"
            );
        }
    }
}
