//! # ibis-storage — the database and durability layer
//!
//! Everything above the index crates and below the `ibis` facade:
//!
//! * [`db`] — the planner registry ([`IncompleteDb`]) and the sharded
//!   store ([`ShardedDb`]) with synopsis pruning;
//! * [`wal`] — the append-only, checksummed, torn-tail-tolerant
//!   write-ahead log;
//! * [`manifest`] — the atomically-replaced MANIFEST naming the live
//!   snapshot and WAL watermark;
//! * [`engine`] — [`DurableDb`]: WAL → checkpoint → MANIFEST → backup,
//!   with open-time crash recovery;
//! * [`epoch`] — epoch-based reclamation and the lock-free
//!   [`SnapshotCell`](epoch::SnapshotCell) publication primitive;
//! * [`snapshot`] / [`concurrent`] — [`DbSnapshot`] (immutable frozen
//!   shard-set + watermark) and [`ConcurrentDb`] (lock-free reader
//!   snapshots, serialized writers, atomic publication).
//!
//! The durability model follows from the paper's economics: encoded bitmap
//! indexes (BEE/BRE/BIE) are expensive to update in place, so the durable
//! truth is an append-only row log plus periodic snapshots of the *data*
//! (datasets, deltas, tombstones), and every index and synopsis is a
//! rebuildable cache recomputed on load. Snapshots therefore never store
//! index bytes, and recovery is "load data, rebuild indexes, replay tail".

pub mod concurrent;
pub mod db;
pub mod engine;
pub mod epoch;
pub mod manifest;
pub mod snapshot;
pub mod wal;

pub mod crc;

pub use concurrent::ConcurrentDb;
pub use db::{CandidatePlan, DbConfig, IncompleteDb, Plan, ShardExecution, ShardedDb};
pub use engine::{DurableDb, ValidateReport};
pub use manifest::Manifest;
pub use snapshot::DbSnapshot;
pub use wal::{WalRecord, WalScan};
