//! Epoch-based reclamation and the lock-free [`SnapshotCell`].
//!
//! This is the concurrency primitive underneath snapshot isolation: a
//! writer publishes a new immutable snapshot with one atomic pointer swap,
//! readers acquire the current snapshot with one atomic pointer load, and
//! the *only* hard problem — when is it safe to free the snapshot a writer
//! just unpublished? — is solved with a classic quiescent-state epoch
//! scheme instead of a dependency (`arc-swap`, `crossbeam-epoch`) the
//! workspace does not vendor.
//!
//! # The scheme
//!
//! Every thread that wants to read registers a `Slot` holding an
//! `AtomicU64` epoch stamp. The stamp is **odd while the thread is inside
//! a read-side critical section** (pinned) and **even when it is
//! quiescent**. Reading is:
//!
//! 1. pin: `stamp = odd` (SeqCst store);
//! 2. load the snapshot pointer (SeqCst load);
//! 3. bump the pointer's strong count so the snapshot is owned by an
//!    `Arc` and can outlive the critical section;
//! 4. unpin: `stamp = even` (SeqCst store).
//!
//! Publishing is:
//!
//! 1. swap the pointer to the new snapshot (SeqCst swap);
//! 2. wait until every slot that was *odd at the swap* has since changed
//!    its stamp (it either unpinned, or re-pinned — and a re-pin after the
//!    swap must observe the new pointer, see below);
//! 3. drop the writer's reference to the old snapshot. Any reader that
//!    reached step 3 above holds its own strong count, so the allocation
//!    survives as long as anyone uses it.
//!
//! # Why this is sound
//!
//! Everything is `SeqCst`, so all these operations fall into one total
//! order `S` (this also keeps the scheme fully visible to ThreadSanitizer,
//! which does not model standalone fences). Suppose a reader's pointer
//! load returned the *old* snapshot. Then the load precedes the writer's
//! swap in `S`, and therefore the reader's pin-store (step 1) also
//! precedes the swap — so the writer's epoch scan (step 2), which follows
//! the swap in `S`, either sees that odd stamp and waits for it, or sees a
//! *later* stamp value. The stamp only moves past an odd value via the
//! reader's unpin store, which the reader issues *after* incrementing the
//! strong count; `SeqCst` stamp ordering therefore guarantees that
//! whenever the scan observes the stamp moved on, the reader's increment
//! has already happened (it is sequenced before the unpin in the same
//! thread). Either way the writer cannot drop the last reference while a
//! reader sits between steps 2 and 3 with a stale pointer.
//!
//! Threads that exit simply leave their slot even forever (slots are
//! pooled and reused by later threads), so a dead thread never blocks a
//! writer.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, OnceLock};

/// One registered reader thread's epoch stamp.
///
/// `stamp` is odd while the owning thread is pinned, even when quiescent.
/// `in_use` guards pooling: a thread leases a slot for its lifetime and
/// releases it on exit so short-lived pool threads don't grow the registry
/// without bound.
struct Slot {
    stamp: AtomicU64,
    in_use: AtomicU64,
}

/// Global slot registry. Push-only membership under a mutex (registration
/// is rare: once per *new* thread, and slots are recycled); the stamps
/// themselves are read and written lock-free.
struct Registry {
    slots: Mutex<Vec<Arc<Slot>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        slots: Mutex::new(Vec::new()),
    })
}

/// Leases a slot out of the registry, creating one if every existing slot
/// is taken.
fn lease_slot() -> Arc<Slot> {
    let reg = registry();
    let mut slots = reg.slots.lock().expect("epoch registry poisoned");
    for slot in slots.iter() {
        if slot.in_use.swap(1, SeqCst) == 0 {
            return Arc::clone(slot);
        }
    }
    let slot = Arc::new(Slot {
        stamp: AtomicU64::new(0),
        in_use: AtomicU64::new(1),
    });
    slots.push(Arc::clone(&slot));
    slot
}

/// Per-thread lease: the slot plus a pin-nesting depth so re-entrant reads
/// (a pinned thread calling back into `load`) stay pinned until the
/// outermost critical section ends.
struct ThreadEpoch {
    slot: Arc<Slot>,
    depth: u32,
}

impl ThreadEpoch {
    fn pin(&mut self) {
        if self.depth == 0 {
            // Even → odd: entering a critical section.
            let s = self.slot.stamp.load(SeqCst);
            debug_assert!(s.is_multiple_of(2), "quiescent stamp must be even");
            self.slot.stamp.store(s + 1, SeqCst);
        }
        self.depth += 1;
    }

    fn unpin(&mut self) {
        self.depth -= 1;
        if self.depth == 0 {
            // Odd → even: leaving the outermost critical section.
            let s = self.slot.stamp.load(SeqCst);
            debug_assert!(!s.is_multiple_of(2), "pinned stamp must be odd");
            self.slot.stamp.store(s + 1, SeqCst);
        }
    }
}

impl Drop for ThreadEpoch {
    fn drop(&mut self) {
        // Return the slot to the pool quiescent. The stamp is already even
        // (depth is 0 outside a critical section; thread-local drop never
        // runs mid-`load`).
        self.slot.in_use.store(0, SeqCst);
    }
}

thread_local! {
    static THREAD_EPOCH: std::cell::RefCell<Option<ThreadEpoch>> =
        const { std::cell::RefCell::new(None) };
}

/// Unpins the calling thread when dropped, so a panicking read-side
/// critical section can never leave its slot pinned (which would block
/// every future writer forever).
struct PinGuard;

impl Drop for PinGuard {
    fn drop(&mut self) {
        THREAD_EPOCH.with(|cell| {
            cell.borrow_mut()
                .as_mut()
                .expect("unpin without a leased slot")
                .unpin();
        });
    }
}

/// Runs `f` inside a pinned critical section on the calling thread.
///
/// The thread-local borrow is released before `f` runs, so `f` may itself
/// call [`pinned`] (or [`SnapshotCell::load`]) re-entrantly; the nesting
/// depth keeps the slot odd until the outermost section ends.
fn pinned<R>(f: impl FnOnce() -> R) -> R {
    THREAD_EPOCH.with(|cell| {
        cell.borrow_mut()
            .get_or_insert_with(|| ThreadEpoch {
                slot: lease_slot(),
                depth: 0,
            })
            .pin();
    });
    let _guard = PinGuard;
    f()
}

/// Blocks until every thread that was pinned at the moment this function
/// was called has left its critical section (or re-entered a new one,
/// which is just as good — a pin after the caller's swap sees the new
/// pointer).
fn synchronize() {
    // Snapshot the stamps of all currently-pinned slots...
    let observed: Vec<(Arc<Slot>, u64)> = {
        let slots = registry().slots.lock().expect("epoch registry poisoned");
        slots
            .iter()
            .filter_map(|s| {
                let stamp = s.stamp.load(SeqCst);
                (!stamp.is_multiple_of(2)).then(|| (Arc::clone(s), stamp))
            })
            .collect()
    };
    // ...then wait for each to move on. Critical sections are tiny (a
    // pointer load and a refcount bump), so spin with yields rather than
    // park.
    for (slot, stamp) in observed {
        let mut spins = 0u32;
        while slot.stamp.load(SeqCst) == stamp {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// A lock-free publication cell: writers [`store`](SnapshotCell::store) an
/// `Arc<T>`, readers [`load`](SnapshotCell::load) the current one without
/// taking any lock and keep it alive as long as they like.
///
/// Loads are wait-free (pin, pointer load, refcount bump, unpin). Stores
/// swap the pointer atomically and then wait for readers pinned *at the
/// swap* to move on before releasing the old value — writers absorb all
/// of the reclamation cost.
pub struct SnapshotCell<T> {
    ptr: AtomicPtr<T>,
}

impl<T> SnapshotCell<T> {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
        }
    }

    /// Acquires the currently-published value. Never blocks, never takes a
    /// lock; the returned `Arc` keeps the value alive arbitrarily long.
    pub fn load(&self) -> Arc<T> {
        pinned(|| {
            let raw = self.ptr.load(SeqCst);
            // SAFETY: `raw` came from `Arc::into_raw` (in `new` or
            // `store`) and the allocation is live: the writer that would
            // drop it must first observe this thread's pinned stamp change
            // (see the module-level total-order argument), which cannot
            // happen before `unpin` — after the increment below.
            unsafe {
                Arc::increment_strong_count(raw);
                Arc::from_raw(raw)
            }
        })
    }

    /// Publishes `next`, then waits for every reader pinned at the moment
    /// of publication to finish before releasing the previous value.
    ///
    /// Concurrent `store`s are safe but the caller (the writer path)
    /// serializes them behind its own lock anyway.
    pub fn store(&self, next: Arc<T>) {
        let old = self.ptr.swap(Arc::into_raw(next).cast_mut(), SeqCst);
        synchronize();
        // SAFETY: `old` was published by `new` or a previous `store`, and
        // exactly one `store` (this one) retired it — the swap transfers
        // ownership of the publication reference to us. Every reader that
        // loaded `old` holds its own strong count by now.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        let raw = self.ptr.load(SeqCst);
        // SAFETY: dropping the cell ends publication; `&mut self` proves
        // no loads are in flight through this cell, and `raw` still owns
        // the publication reference.
        unsafe { drop(Arc::from_raw(raw)) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SnapshotCell").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        let held = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*held, 2, "an acquired snapshot survives publication");
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn drops_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(Arc::new(Counted(Arc::clone(&drops))));
        let held = cell.load();
        cell.store(Arc::new(Counted(Arc::clone(&drops))));
        assert_eq!(drops.load(SeqCst), 0, "a held snapshot must not drop");
        drop(held);
        assert_eq!(drops.load(SeqCst), 1);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 2);
    }

    #[test]
    fn nested_loads_stay_pinned() {
        let cell = SnapshotCell::new(Arc::new(10u64));
        let outer = pinned(|| {
            let a = cell.load();
            let b = cell.load(); // re-entrant pin
            *a + *b
        });
        assert_eq!(outer, 20);
        // Slot must be quiescent again: a store from this same thread
        // would deadlock in synchronize() if the stamp stayed odd.
        cell.store(Arc::new(11));
        assert_eq!(*cell.load(), 11);
    }

    #[test]
    fn racing_readers_never_see_torn_values() {
        // Publish pairs (n, !n); readers assert the invariant holds in
        // every snapshot they acquire.
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, !0u64))));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut seen = 0u64;
                while stop.load(SeqCst) == 0 {
                    let snap = cell.load();
                    assert_eq!(snap.0, !snap.1, "torn snapshot");
                    seen = seen.max(snap.0);
                }
                seen
            }));
        }
        for n in 1..=1000u64 {
            cell.store(Arc::new((n, !n)));
        }
        stop.store(1, SeqCst);
        for h in handles {
            let seen = h.join().expect("reader panicked");
            assert!(seen <= 1000);
        }
        assert_eq!(cell.load().0, 1000);
    }
}
