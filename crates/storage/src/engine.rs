//! The durable engine: WAL + snapshot + MANIFEST under a [`ShardedDb`].
//!
//! A data directory holds three kinds of file:
//!
//! * `wal.log` — the append-only [write-ahead log](crate::wal); every
//!   mutation is fsynced here before the in-memory database changes;
//! * `snapshot-NNNNNN.ibss` — a full serialization of the sharded store
//!   (datasets, deltas, tombstones — **not** indexes or synopses, which are
//!   rebuildable caches recomputed on load);
//! * `MANIFEST` — the atomically-replaced commit point naming the live
//!   snapshot and the WAL watermark.
//!
//! Opening a directory is recovery: load the manifest's snapshot, replay
//! every WAL record past the watermark, and truncate whatever torn tail the
//! crash left. [`DurableDb::checkpoint`] rolls the log into a fresh
//! snapshot and truncates the WAL; [`DurableDb::backup`] /
//! [`DurableDb::restore`] move the whole logical state through one
//! checksummed file, byte-identically.

use crate::crc::crc32;
use crate::manifest::{Manifest, MANIFEST_FILE};
use crate::wal::{self, WalRecord, WalWriter};
use crate::{DbConfig, ShardExecution, ShardedDb};
use ibis_core::wire;
use ibis_core::{Cell, Dataset, RangeQuery, RowSet, WorkCounters};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const BACKUP_MAGIC: &[u8; 4] = b"IBBK";
const BACKUP_VERSION: u16 = 1;

/// File name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Path of the WAL inside `dir` (exposed for crash harnesses that truncate
/// or corrupt it between sessions).
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

fn snapshot_name(generation: u64) -> String {
    format!("snapshot-{generation:06}.ibss")
}

fn invalid<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// A [`ShardedDb`] whose mutations are durable: logged (and fsynced) to the
/// WAL before they touch the shards, checkpointable into snapshots, and
/// recoverable after a crash at any byte of the log.
///
/// ```
/// use ibis_core::{Cell, Dataset};
/// use ibis_storage::DurableDb;
///
/// let dir = std::env::temp_dir().join(format!("ibis_engine_doc_{}", std::process::id()));
/// std::fs::remove_dir_all(&dir).ok();
/// let data = Dataset::from_rows(&[("a", 9)], &[vec![Cell::present(4)]]).unwrap();
/// let mut db = DurableDb::create(&dir, data, 64, Default::default()).unwrap();
/// db.insert(&[Cell::present(7)]).unwrap();
/// drop(db); // crash!
///
/// let recovered = DurableDb::open(&dir).unwrap();
/// assert_eq!(recovered.n_rows(), 2); // the insert was replayed from the WAL
/// assert_eq!(recovered.replayed_on_open(), 1);
/// std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct DurableDb {
    dir: PathBuf,
    db: ShardedDb,
    wal: WalWriter,
    manifest: Manifest,
    replayed: u64,
}

impl DurableDb {
    /// Initializes `dir` with `dataset` as generation 1. Fails with
    /// [`io::ErrorKind::AlreadyExists`] if the directory already holds a
    /// database.
    pub fn create(
        dir: &Path,
        dataset: Dataset,
        shard_rows: usize,
        config: DbConfig,
    ) -> io::Result<DurableDb> {
        let db = ShardedDb::with_config(dataset, shard_rows, config);
        DurableDb::init_dir(dir, db)
    }

    fn init_dir(dir: &Path, db: ShardedDb) -> io::Result<DurableDb> {
        std::fs::create_dir_all(dir)?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds a database", dir.display()),
            ));
        }
        let manifest = Manifest {
            generation: 1,
            snapshot: snapshot_name(1),
            watermark: 0,
        };
        write_snapshot_file(dir, &manifest.snapshot, &db)?;
        let wal = WalWriter::create(&wal_path(dir), 1)?;
        manifest.save(dir)?;
        Ok(DurableDb {
            dir: dir.to_path_buf(),
            db,
            wal,
            manifest,
            replayed: 0,
        })
    }

    /// Opens (recovers) the database in `dir`: loads the manifest's
    /// snapshot, rebuilds indexes and synopses, replays WAL records past
    /// the watermark, and truncates any torn tail the last crash left.
    pub fn open(dir: &Path) -> io::Result<DurableDb> {
        let mut span = ibis_obs::span("storage.open");
        let manifest = Manifest::load(dir)?;
        let snapshot_bytes = std::fs::read(dir.join(&manifest.snapshot))?;
        let mut db = ShardedDb::read_snapshot(&mut snapshot_bytes.as_slice())?;

        let wal_file = wal_path(dir);
        let scan = if wal_file.exists() {
            wal::scan(&wal_file)?
        } else {
            wal::scan_bytes(&[])
        };
        let mut replayed = 0u64;
        let mut last_seq = 0u64;
        for (seq, record) in &scan.records {
            last_seq = *seq;
            if *seq <= manifest.watermark {
                continue; // already captured by the snapshot
            }
            apply(&mut db, record)?;
            replayed += 1;
        }
        let next_seq = last_seq.max(manifest.watermark) + 1;
        let wal = if scan.header_ok {
            if scan.valid_len < scan.file_len {
                // Repair the torn tail so the next append lands on a
                // well-formed prefix.
                let f = std::fs::OpenOptions::new().write(true).open(&wal_file)?;
                f.set_len(scan.valid_len)?;
                f.sync_all()?;
            }
            WalWriter::open_at(&wal_file, next_seq, scan.valid_len)?
        } else {
            // Header lost entirely (crash before the first publish could
            // not produce this — the header is fsynced before MANIFEST —
            // but a harness truncating to < 6 bytes can): start a fresh log.
            WalWriter::create(&wal_file, next_seq)?
        };
        ibis_obs::counter_add("recovery.replayed_records", replayed);
        span.add_field("replayed_records", replayed);
        span.add_field("generation", manifest.generation);
        ibis_obs::gauge_set("storage.generation", manifest.generation as f64);
        ibis_obs::gauge_set("wal.bytes", wal.bytes() as f64);
        Ok(DurableDb {
            dir: dir.to_path_buf(),
            db,
            wal,
            manifest,
            replayed,
        })
    }

    /// Appends one row durably: validated, logged + fsynced, then applied.
    /// An invalid row fails *before* reaching the log.
    pub fn insert(&mut self, row: &[Cell]) -> io::Result<()> {
        self.db.validate_row(row).map_err(invalid)?;
        self.wal.append(&WalRecord::Insert(row.to_vec()))?;
        self.db.insert(row).expect("row validated before logging");
        Ok(())
    }

    /// Tombstones a global row id durably. Returns whether the row existed
    /// and was alive. Misses are logged too — replaying a no-op is a no-op,
    /// so recovery stays deterministic either way.
    pub fn delete(&mut self, row: u32) -> io::Result<bool> {
        self.wal.append(&WalRecord::Delete(row))?;
        Ok(self.db.delete(row))
    }

    /// Folds deltas and tombstones into the shards (logged: compaction
    /// renumbers rows, and replay must renumber them identically). Returns
    /// the number of shards rebuilt.
    pub fn compact(&mut self) -> io::Result<usize> {
        self.wal.append(&WalRecord::Compact)?;
        Ok(self.db.compact())
    }

    /// Rolls the WAL into a fresh snapshot: writes generation `g+1`,
    /// publishes a manifest whose watermark covers every logged record,
    /// truncates the WAL, and removes the superseded snapshot. A crash
    /// between any two of those steps recovers to a consistent state — the
    /// manifest rename is the commit point, and replay skips records at or
    /// below the watermark if the truncate never happened.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let start = std::time::Instant::now();
        let mut span = ibis_obs::span("storage.checkpoint");
        let generation = self.manifest.generation + 1;
        let next = Manifest {
            generation,
            snapshot: snapshot_name(generation),
            watermark: self.wal.last_seq(),
        };
        write_snapshot_file(&self.dir, &next.snapshot, &self.db)?;
        next.save(&self.dir)?;
        self.wal.truncate_to_header()?;
        if self.manifest.snapshot != next.snapshot {
            std::fs::remove_file(self.dir.join(&self.manifest.snapshot)).ok();
        }
        self.manifest = next;
        span.add_field("generation", generation);
        ibis_obs::observe("checkpoint.ms", start.elapsed().as_millis() as u64);
        ibis_obs::counter_add("storage.checkpoints", 1);
        ibis_obs::gauge_set("storage.generation", generation as f64);
        Ok(())
    }

    /// Writes the current logical state to `path` as one checksummed file.
    /// Serialization is deterministic, so backup → restore → backup
    /// round-trips byte-identically.
    pub fn backup(&self, path: &Path) -> io::Result<()> {
        let mut body = Vec::new();
        self.db.write_snapshot(&mut body)?;
        let mut f = File::create(path)?;
        wire::write_header(&mut f, BACKUP_MAGIC, BACKUP_VERSION)?;
        wire::write_u32(&mut f, crc32(&body))?;
        wire::write_bytes(&mut f, &body)?;
        f.sync_all()
    }

    /// Parses a backup file back into the sharded store it captured.
    pub fn read_backup(r: &mut impl Read) -> io::Result<ShardedDb> {
        wire::read_header(r, BACKUP_MAGIC, BACKUP_VERSION)?;
        let crc = wire::read_u32(r)?;
        let body = wire::read_bytes(r)?;
        if crc32(&body) != crc {
            return Err(invalid("backup checksum mismatch"));
        }
        ShardedDb::read_snapshot(&mut body.as_slice())
    }

    /// Initializes `dir` (which must not already hold a database) from a
    /// backup file, as generation 1 with an empty WAL.
    pub fn restore(backup: &Path, dir: &Path) -> io::Result<DurableDb> {
        let mut f = File::open(backup)?;
        let db = DurableDb::read_backup(&mut f)?;
        DurableDb::init_dir(dir, db)
    }

    /// Verifies `dir` without opening it for writing: manifest and snapshot
    /// checksums, snapshot parse (indexes rebuilt and discarded), and a
    /// full WAL scan. Strict about the WAL header — a missing or garbled
    /// header is an error here, even though [`open`](DurableDb::open)
    /// tolerates it.
    pub fn validate(dir: &Path) -> io::Result<ValidateReport> {
        let manifest = Manifest::load(dir)?;
        let snapshot_bytes = std::fs::read(dir.join(&manifest.snapshot))?;
        let db = ShardedDb::read_snapshot(&mut snapshot_bytes.as_slice())?;
        let scan = wal::scan(&wal_path(dir))?;
        if !scan.header_ok {
            return Err(invalid("WAL header missing or corrupt"));
        }
        let replayable = scan
            .records
            .iter()
            .filter(|(seq, _)| *seq > manifest.watermark)
            .count() as u64;
        Ok(ValidateReport {
            generation: manifest.generation,
            watermark: manifest.watermark,
            snapshot_shards: db.shard_count(),
            snapshot_rows: db.n_rows(),
            wal_records: replayable,
            wal_bytes: scan.valid_len,
            torn_tail_bytes: scan.file_len - scan.valid_len,
        })
    }

    /// The in-memory sharded store (queries go through here).
    pub fn db(&self) -> &ShardedDb {
        &self.db
    }

    /// The data directory this database lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// Current WAL length in bytes, header included (the crash harness uses
    /// the value after each mutation as its kill-offset map).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// WAL records replayed by the [`open`](DurableDb::open) that produced
    /// this handle (0 for a fresh create, and 0 after a clean checkpoint).
    pub fn replayed_on_open(&self) -> u64 {
        self.replayed
    }

    /// Total live rows.
    pub fn n_rows(&self) -> usize {
        self.db.n_rows()
    }

    /// The schema width.
    pub fn n_attrs(&self) -> usize {
        self.db.n_attrs()
    }

    /// Number of shards currently held.
    pub fn shard_count(&self) -> usize {
        self.db.shard_count()
    }

    /// Executes a query at the configured parallelism degree.
    pub fn execute(&self, query: &RangeQuery) -> ibis_core::Result<RowSet> {
        self.db.execute(query)
    }

    /// Executes a query at an explicit thread degree.
    pub fn execute_threads(&self, query: &RangeQuery, threads: usize) -> ibis_core::Result<RowSet> {
        self.db.execute_threads(query, threads)
    }

    /// Executes and reports the merged [`WorkCounters`].
    pub fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> ibis_core::Result<(RowSet, WorkCounters)> {
        self.db.execute_with_cost_threads(query, threads)
    }

    /// Executes with full pruning statistics.
    pub fn execute_with_stats_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> ibis_core::Result<ShardExecution> {
        self.db.execute_with_stats_threads(query, threads)
    }
}

/// What [`DurableDb::validate`] found in a data directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateReport {
    /// Checkpoint generation of the live manifest.
    pub generation: u64,
    /// WAL watermark of the live manifest.
    pub watermark: u64,
    /// Shards held by the snapshot.
    pub snapshot_shards: usize,
    /// Live rows in the snapshot (before WAL replay).
    pub snapshot_rows: usize,
    /// Intact WAL records past the watermark (what open would replay).
    pub wal_records: u64,
    /// Bytes of the well-formed WAL prefix.
    pub wal_bytes: u64,
    /// Bytes of torn tail beyond the well-formed prefix (0 when clean).
    pub torn_tail_bytes: u64,
}

fn write_snapshot_file(dir: &Path, name: &str, db: &ShardedDb) -> io::Result<()> {
    let mut buf = Vec::new();
    db.write_snapshot(&mut buf)?;
    let mut f = File::create(dir.join(name))?;
    f.write_all(&buf)?;
    f.sync_all()
}

/// Applies one replayed record. Inserts re-validate (a crafted WAL can
/// carry out-of-domain cells past the CRC); failures surface as clean
/// `InvalidData` errors, never panics.
fn apply(db: &mut ShardedDb, record: &WalRecord) -> io::Result<()> {
    match record {
        WalRecord::Insert(row) => db.insert(row).map_err(invalid),
        WalRecord::Delete(id) => {
            db.delete(*id);
            Ok(())
        }
        WalRecord::Compact => {
            db.compact();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::gen::census_scaled;
    use ibis_core::{MissingPolicy, Predicate};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ibis_engine_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// A range over attribute 0, clamped to its domain.
    fn any_query(data: &Dataset, policy: MissingPolicy) -> RangeQuery {
        let hi = data.column(0).cardinality().min(4);
        RangeQuery::new(vec![Predicate::range(0, 1, hi)], policy).unwrap()
    }

    #[test]
    fn create_open_checkpoint_cycle() {
        let dir = tmp("cycle");
        let data = census_scaled(120, 601);
        let row: Vec<Cell> = (0..data.n_attrs()).map(|a| data.cell(0, a)).collect();
        let schema = data.clone();
        let mut db = DurableDb::create(&dir, data, 50, DbConfig::default()).unwrap();
        db.insert(&row).unwrap();
        db.delete(3).unwrap();
        let twin_before = db.db().clone();
        drop(db);

        // Reopen: both mutations replay.
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.replayed_on_open(), 2);
        for policy in MissingPolicy::ALL {
            let q = any_query(&schema, policy);
            assert_eq!(
                db.execute_with_cost_threads(&q, 1).unwrap(),
                twin_before.execute_with_cost_threads(&q, 1).unwrap(),
            );
        }

        // Checkpoint: WAL truncated, next open replays nothing.
        let mut db = db;
        db.checkpoint().unwrap();
        assert_eq!(db.wal_bytes(), wal::WAL_HEADER_LEN);
        assert_eq!(db.generation(), 2);
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.replayed_on_open(), 0);
        for policy in MissingPolicy::ALL {
            let q = any_query(&schema, policy);
            assert_eq!(
                db.execute_with_cost_threads(&q, 8).unwrap(),
                twin_before.execute_with_cost_threads(&q, 8).unwrap(),
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_insert_reaches_neither_log_nor_db() {
        let dir = tmp("invalid");
        let data = census_scaled(40, 602);
        let n_attrs = data.n_attrs();
        let mut db = DurableDb::create(&dir, data, 16, DbConfig::default()).unwrap();
        let before = (db.wal_bytes(), db.n_rows());
        assert!(db.insert(&[Cell::present(1)]).is_err(), "wrong width");
        assert_eq!((db.wal_bytes(), db.n_rows()), before);
        let mut row = vec![Cell::MISSING; n_attrs];
        row[0] = Cell::present(u16::MAX);
        assert!(db.insert(&row).is_err(), "out of domain");
        assert_eq!((db.wal_bytes(), db.n_rows()), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_replays_deterministically() {
        let dir = tmp("compact");
        let data = census_scaled(60, 603);
        let row: Vec<Cell> = (0..data.n_attrs()).map(|a| data.cell(1, a)).collect();
        let schema = data.clone();
        let mut db = DurableDb::create(&dir, data, 25, DbConfig::default()).unwrap();
        db.insert(&row).unwrap();
        db.delete(0).unwrap();
        db.compact().unwrap();
        db.insert(&row).unwrap();
        let twin = db.db().clone();
        drop(db);
        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.replayed_on_open(), 4);
        for policy in MissingPolicy::ALL {
            let q = any_query(&schema, policy);
            assert_eq!(
                db.execute_with_cost_threads(&q, 1).unwrap(),
                twin.execute_with_cost_threads(&q, 1).unwrap(),
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backup_restore_roundtrips_byte_identically() {
        let dir = tmp("backup_src");
        let dir2 = tmp("backup_dst");
        let data = census_scaled(80, 604);
        let row: Vec<Cell> = (0..data.n_attrs()).map(|a| data.cell(2, a)).collect();
        let schema = data.clone();
        let mut db = DurableDb::create(&dir, data, 30, DbConfig::default()).unwrap();
        db.insert(&row).unwrap();
        db.delete(5).unwrap();
        let b1 = dir.join("one.ibbk");
        let b2 = dir.join("two.ibbk");
        db.backup(&b1).unwrap();
        let restored = DurableDb::restore(&b1, &dir2).unwrap();
        restored.backup(&b2).unwrap();
        assert_eq!(
            std::fs::read(&b1).unwrap(),
            std::fs::read(&b2).unwrap(),
            "backup → restore → backup must be byte-identical"
        );
        for policy in MissingPolicy::ALL {
            let q = any_query(&schema, policy);
            assert_eq!(
                restored.execute_with_cost_threads(&q, 1).unwrap(),
                db.execute_with_cost_threads(&q, 1).unwrap(),
            );
        }
        // Restoring over an existing database is refused.
        assert_eq!(
            DurableDb::restore(&b1, &dir2).unwrap_err().kind(),
            io::ErrorKind::AlreadyExists
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn validate_reports_state_and_torn_tails() {
        let dir = tmp("validate");
        let data = census_scaled(50, 605);
        let row: Vec<Cell> = (0..data.n_attrs()).map(|a| data.cell(0, a)).collect();
        let mut db = DurableDb::create(&dir, data, 20, DbConfig::default()).unwrap();
        db.insert(&row).unwrap();
        db.insert(&row).unwrap();
        drop(db);
        let r = DurableDb::validate(&dir).unwrap();
        assert_eq!(r.generation, 1);
        assert_eq!(r.wal_records, 2);
        assert_eq!(r.torn_tail_bytes, 0);
        assert_eq!(r.snapshot_rows, 50);

        // Chop mid-frame: one record survives, the tail is reported torn.
        let wal_file = wal_path(&dir);
        let image = std::fs::read(&wal_file).unwrap();
        std::fs::write(&wal_file, &image[..image.len() - 3]).unwrap();
        let r = DurableDb::validate(&dir).unwrap();
        assert_eq!(r.wal_records, 1);
        assert!(r.torn_tail_bytes > 0);

        // Corrupt the snapshot: validate fails cleanly.
        let snap = dir.join(snapshot_name(1));
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        assert!(DurableDb::validate(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
