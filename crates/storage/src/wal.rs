//! Append-only write-ahead log.
//!
//! The WAL is the durability root: every mutation is appended (and fsynced)
//! here *before* it touches the in-memory [`ShardedDb`](crate::ShardedDb),
//! so a crash at any instant loses at most the un-acknowledged tail. The
//! file layout is a 6-byte header (magic `IBWL`, version) followed by
//! frames:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u64 seq][u8 kind][kind-specific body]
//! ```
//!
//! Recovery reads frames in order and stops at the first sign of a torn
//! tail — short frame, out-of-range length, checksum mismatch, undecodable
//! payload, or a non-consecutive sequence number — and reports how many
//! bytes were well-formed so the engine can truncate the damage away. A
//! corrupted length field can therefore never trigger a huge allocation or
//! a scan past the mapped file: payloads are capped at [`MAX_FRAME_LEN`]
//! and every access is bounds-checked against the bytes actually present.

use crate::crc::crc32;
use ibis_core::{wire, Cell};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

pub(crate) const WAL_MAGIC: &[u8; 4] = b"IBWL";
pub(crate) const WAL_VERSION: u16 = 1;

/// Bytes of magic + version heading every WAL file.
pub const WAL_HEADER_LEN: u64 = 6;

/// Upper bound on one frame's payload. A frame holds one logical record (a
/// single row, a delete, or a compaction marker), so anything larger is
/// corruption by definition — treated as a torn tail, never allocated.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// A record whose encoded payload exceeds [`MAX_FRAME_LEN`]. Raised by
/// [`WalWriter::append`] *before* anything hits the file: writing the frame
/// would truncate its length header to `len as u32`, and the log would then
/// tear at this record on every replay. Surfaces as an
/// [`io::ErrorKind::InvalidInput`] error whose source downcasts to this type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The encoded payload length that exceeded the cap.
    pub len: usize,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WAL record payload of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})",
            self.len
        )
    }
}

impl std::error::Error for FrameTooLarge {}

/// One logged mutation. Replaying the record sequence against the snapshot
/// it extends reproduces the pre-crash database exactly — including
/// [`Compact`](WalRecord::Compact), which renumbers rows deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Append one row (raw cell codes; 0 = missing).
    Insert(Vec<Cell>),
    /// Tombstone one global row id. No-op deletes are logged too: replaying
    /// a miss is a miss again, so the outcome stays deterministic.
    Delete(u32),
    /// Fold deltas/tombstones into the shards, renumbering survivors.
    Compact,
}

impl WalRecord {
    fn encode(&self, seq: u64) -> Vec<u8> {
        let mut p = Vec::new();
        wire::write_u64(&mut p, seq).expect("vec write");
        match self {
            WalRecord::Insert(row) => {
                wire::write_u8(&mut p, 1).expect("vec write");
                wire::write_u32(&mut p, row.len() as u32).expect("vec write");
                for c in row {
                    wire::write_u16(&mut p, c.raw()).expect("vec write");
                }
            }
            WalRecord::Delete(id) => {
                wire::write_u8(&mut p, 2).expect("vec write");
                wire::write_u32(&mut p, *id).expect("vec write");
            }
            WalRecord::Compact => wire::write_u8(&mut p, 3).expect("vec write"),
        }
        p
    }

    fn decode(payload: &[u8]) -> io::Result<(u64, WalRecord)> {
        let r = &mut &payload[..];
        let seq = wire::read_u64(r)?;
        let kind = wire::read_u8(r)?;
        let record = match kind {
            1 => {
                let n = wire::read_u32(r)? as usize;
                // The cap mirrors the wire readers; a lying count still hits
                // EOF cleanly because the payload itself is length-bounded.
                let mut row = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    row.push(Cell::from_raw(wire::read_u16(r)?));
                }
                WalRecord::Insert(row)
            }
            2 => WalRecord::Delete(wire::read_u32(r)?),
            3 => WalRecord::Compact,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown WAL record kind {other}"),
                ))
            }
        };
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in WAL payload",
            ));
        }
        Ok((seq, record))
    }
}

/// The open, append-only log. Each [`append`](WalWriter::append) writes one
/// checksummed frame and fsyncs before returning (counted on
/// `wal.append_bytes` / `wal.fsyncs`).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    next_seq: u64,
    bytes: u64,
}

impl WalWriter {
    /// Creates (truncating) a fresh WAL whose first record will carry
    /// `next_seq`, and fsyncs the header.
    pub fn create(path: &Path, next_seq: u64) -> io::Result<WalWriter> {
        let mut file = File::create(path)?;
        wire::write_header(&mut file, WAL_MAGIC, WAL_VERSION)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            next_seq,
            bytes: WAL_HEADER_LEN,
        })
    }

    /// Opens an existing WAL for appending. `len` is the validated length
    /// (the caller has already truncated any torn tail to it).
    pub fn open_at(path: &Path, next_seq: u64, len: u64) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.seek(SeekFrom::Start(len))?;
        Ok(WalWriter {
            file,
            next_seq,
            bytes: len,
        })
    }

    /// Appends one record, fsyncs, and returns its sequence number.
    ///
    /// Fails with [`FrameTooLarge`] (as an `InvalidInput` io error) when the
    /// encoded payload exceeds [`MAX_FRAME_LEN`] — the `as u32` length cast
    /// below would otherwise silently truncate and corrupt the log on replay.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let seq = self.next_seq;
        let payload = record.encode(seq);
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                FrameTooLarge { len: payload.len() },
            ));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        wire::write_u32(&mut frame, payload.len() as u32).expect("vec write");
        wire::write_u32(&mut frame, crc32(&payload)).expect("vec write");
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.bytes += frame.len() as u64;
        self.next_seq += 1;
        ibis_obs::counter_add("wal.append_bytes", frame.len() as u64);
        ibis_obs::counter_add("wal.fsyncs", 1);
        ibis_obs::gauge_set("wal.bytes", self.bytes as f64);
        Ok(seq)
    }

    /// Discards every frame (after a checkpoint has made them redundant),
    /// keeping the header and the sequence counter.
    pub fn truncate_to_header(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.file.sync_all()?;
        self.bytes = WAL_HEADER_LEN;
        ibis_obs::gauge_set("wal.bytes", self.bytes as f64);
        Ok(())
    }

    /// Sequence number of the last appended record (0 if none ever).
    pub fn last_seq(&self) -> u64 {
        self.next_seq.saturating_sub(1)
    }

    /// Current file length in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// The result of scanning a WAL file: every well-formed frame in order,
/// plus where the well-formed prefix ends.
#[derive(Debug)]
pub struct WalScan {
    /// Decoded records of the valid prefix, in append order.
    pub records: Vec<(u64, WalRecord)>,
    /// Whether the 6-byte header parsed. A missing/garbled header yields an
    /// empty scan (`valid_len` = 0) rather than an error: the engine treats
    /// it as "no durable tail" and rewrites the header on open.
    pub header_ok: bool,
    /// Bytes of the well-formed prefix (header + intact frames).
    pub valid_len: u64,
    /// Total bytes in the file; `> valid_len` means a torn tail.
    pub file_len: u64,
}

impl WalScan {
    /// True when the file ends exactly at the last intact frame.
    pub fn clean(&self) -> bool {
        self.header_ok && self.valid_len == self.file_len
    }
}

/// Scans `path`, stopping at the first torn/corrupt frame. Never panics and
/// never allocates more than the bytes actually present.
pub fn scan(path: &Path) -> io::Result<WalScan> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(scan_bytes(&buf))
}

/// [`scan`] over an in-memory image (what the corruption battery drives).
pub fn scan_bytes(buf: &[u8]) -> WalScan {
    let file_len = buf.len() as u64;
    let header_ok = wire::read_header(&mut &buf[..], WAL_MAGIC, WAL_VERSION).is_ok();
    if !header_ok {
        return WalScan {
            records: Vec::new(),
            header_ok,
            valid_len: 0,
            file_len,
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut prev_seq: Option<u64> = None;
    while let Some(head) = buf.get(pos..pos + 8) {
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
        // seq(8) + kind(1) is the smallest possible payload.
        if !(9..=MAX_FRAME_LEN).contains(&len) {
            break;
        }
        let Some(payload) = buf.get(pos + 8..pos + 8 + len) else {
            break;
        };
        let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if crc32(payload) != crc {
            break;
        }
        let Ok((seq, record)) = WalRecord::decode(payload) else {
            break;
        };
        if prev_seq.is_some_and(|p| seq != p + 1) {
            break;
        }
        prev_seq = Some(seq);
        records.push((seq, record));
        pos += 8 + len;
    }
    WalScan {
        records,
        header_ok,
        valid_len: pos as u64,
        file_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ibis_wal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert(vec![Cell::present(3), Cell::MISSING]),
            WalRecord::Delete(7),
            WalRecord::Compact,
            WalRecord::Insert(vec![Cell::present(1), Cell::present(2)]),
        ]
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let mut w = WalWriter::create(&path, 1).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        assert_eq!(w.last_seq(), 4);
        let s = scan(&path).unwrap();
        assert!(s.clean());
        assert_eq!(s.records.len(), 4);
        assert_eq!(
            s.records.iter().map(|(q, _)| *q).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(
            s.records.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            sample_records()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_offset_keeps_the_intact_prefix() {
        let path = tmp("trunc");
        let mut w = WalWriter::create(&path, 1).unwrap();
        let mut boundaries = vec![w.bytes()];
        for r in sample_records() {
            w.append(&r).unwrap();
            boundaries.push(w.bytes());
        }
        let image = std::fs::read(&path).unwrap();
        for cut in 0..=image.len() {
            let s = scan_bytes(&image[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut as u64).count();
            // boundaries[0] is the bare header; frames completed after it.
            let expect_records = expect.saturating_sub(1);
            assert_eq!(s.records.len(), expect_records, "cut {cut}");
            if cut >= WAL_HEADER_LEN as usize {
                assert!(s.header_ok);
                assert!(s.valid_len <= cut as u64);
            } else {
                assert!(!s.header_ok, "cut {cut}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flips_tear_at_the_damaged_frame() {
        let path = tmp("flip");
        let mut w = WalWriter::create(&path, 1).unwrap();
        let mut boundaries = vec![w.bytes()];
        for r in sample_records() {
            w.append(&r).unwrap();
            boundaries.push(w.bytes());
        }
        let image = std::fs::read(&path).unwrap();
        for pos in WAL_HEADER_LEN as usize..image.len() {
            let mut broken = image.clone();
            broken[pos] ^= 0x40;
            let s = scan_bytes(&broken);
            // Frames wholly before the flipped byte must survive.
            let durable = boundaries
                .iter()
                .filter(|&&b| b <= pos as u64)
                .count()
                .saturating_sub(1);
            assert_eq!(s.records.len(), durable, "flip at {pos}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lying_length_fields_never_allocate_or_scan_far() {
        let path = tmp("len");
        let mut w = WalWriter::create(&path, 1).unwrap();
        w.append(&WalRecord::Delete(1)).unwrap();
        let image = std::fs::read(&path).unwrap();
        for word in [0u32, 8, u32::MAX, MAX_FRAME_LEN as u32 + 1, 1 << 30] {
            let mut broken = image.clone();
            broken[6..10].copy_from_slice(&word.to_le_bytes());
            let s = scan_bytes(&broken);
            assert!(s.records.is_empty(), "len {word}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nonmonotonic_sequence_numbers_tear() {
        let mut buf = Vec::new();
        wire::write_header(&mut buf, WAL_MAGIC, WAL_VERSION).unwrap();
        for seq in [5u64, 6, 8] {
            let payload = WalRecord::Compact.encode(seq);
            wire::write_u32(&mut buf, payload.len() as u32).unwrap();
            wire::write_u32(&mut buf, crc32(&payload)).unwrap();
            buf.extend_from_slice(&payload);
        }
        let s = scan_bytes(&buf);
        assert_eq!(s.records.len(), 2, "the seq-8 frame breaks the chain");
        assert!(s.valid_len < s.file_len);
    }

    #[test]
    fn append_rejects_frames_over_the_cap_at_the_boundary() {
        let path = tmp("cap");
        let mut w = WalWriter::create(&path, 1).unwrap();
        // Insert payload = seq(8) + kind(1) + count(4) + 2 bytes/cell.
        let cells_at_cap = (MAX_FRAME_LEN - 13) / 2;
        let fits = WalRecord::Insert(vec![Cell::MISSING; cells_at_cap]);
        w.append(&fits).unwrap();
        let bytes_after_ok = w.bytes();

        let over = WalRecord::Insert(vec![Cell::MISSING; cells_at_cap + 1]);
        let err = w.append(&over).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let frame_err = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<FrameTooLarge>())
            .expect("source downcasts to FrameTooLarge");
        assert!(frame_err.len > MAX_FRAME_LEN);

        // Nothing reached the file, and the sequence counter did not burn:
        // the next append continues the chain and the log replays cleanly.
        assert_eq!(w.bytes(), bytes_after_ok);
        w.append(&WalRecord::Delete(4)).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.clean());
        assert_eq!(
            s.records.iter().map(|(q, _)| *q).collect::<Vec<_>>(),
            vec![1, 2]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_to_header_preserves_the_sequence_counter() {
        let path = tmp("reset");
        let mut w = WalWriter::create(&path, 1).unwrap();
        w.append(&WalRecord::Compact).unwrap();
        w.append(&WalRecord::Compact).unwrap();
        w.truncate_to_header().unwrap();
        assert_eq!(w.bytes(), WAL_HEADER_LEN);
        assert_eq!(w.last_seq(), 2);
        let seq = w.append(&WalRecord::Delete(0)).unwrap();
        assert_eq!(seq, 3);
        let s = scan(&path).unwrap();
        assert!(s.clean());
        assert_eq!(s.records, vec![(3, WalRecord::Delete(0))]);
        std::fs::remove_file(&path).ok();
    }
}
