//! [`DbSnapshot`] — an immutable, point-in-time view of a sharded database.
//!
//! A snapshot is what readers hold: the full shard-set (frozen indexes,
//! deltas, tombstones, synopses) plus a **watermark** — the number of
//! logical mutations (`insert`/`delete`/`compact`) the writer had applied
//! when this snapshot was published. Because [`ShardedDb`] keeps its
//! shards behind [`Arc`](std::sync::Arc) with copy-on-write mutation,
//! capturing a snapshot is one shallow clone (a pointer bump per shard),
//! and a published snapshot can never change underneath a reader: any
//! later mutation copies the shard it touches before writing.
//!
//! Every query method here takes `&self`; a snapshot is `Send + Sync` and
//! is shared freely across reader threads.

use ibis_core::{Cell, RangeQuery};
use ibis_core::{Result, RowSet, WorkCounters};

use crate::db::{ShardExecution, ShardedDb};

/// An immutable point-in-time view of the database: frozen shard-set plus
/// the mutation watermark at which it was published.
///
/// Obtained from [`ConcurrentDb::snapshot`](crate::ConcurrentDb::snapshot);
/// all query entry points on [`ShardedDb`] are mirrored here as `&self`
/// methods, so downstream code (CLI, benches, the oracle) runs unchanged
/// against a snapshot.
#[derive(Debug)]
pub struct DbSnapshot {
    db: ShardedDb,
    watermark: u64,
}

impl DbSnapshot {
    /// Freezes `db` at logical time `watermark`. The clone is O(shards):
    /// every shard is shared, not copied.
    pub(crate) fn freeze(db: &ShardedDb, watermark: u64) -> DbSnapshot {
        DbSnapshot {
            db: db.clone(),
            watermark,
        }
    }

    /// The number of logical mutations applied before this snapshot was
    /// published. Monotonically non-decreasing across successive
    /// [`snapshot`](crate::ConcurrentDb::snapshot) calls on one thread.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Live rows (inserted − deleted) visible in this snapshot.
    pub fn n_rows(&self) -> usize {
        self.db.n_rows()
    }

    /// Attributes in the schema.
    pub fn n_attrs(&self) -> usize {
        self.db.n_attrs()
    }

    /// Shards frozen into this snapshot.
    pub fn shard_count(&self) -> usize {
        self.db.shard_count()
    }

    /// The frozen shard-set itself, for callers that need the full
    /// [`ShardedDb`] read API (synopses, index sizes, serialization).
    pub fn db(&self) -> &ShardedDb {
        &self.db
    }

    /// Validates a row against the frozen schema (useful for admission
    /// checks before taking the writer lock).
    pub fn validate_row(&self, row: &[Cell]) -> Result<()> {
        self.db.validate_row(row)
    }

    /// Executes `query` single-threaded. See [`ShardedDb::execute`].
    pub fn execute(&self, query: &RangeQuery) -> Result<RowSet> {
        self.db.execute(query)
    }

    /// Executes `query` across `threads` workers; rows are bit-identical
    /// at every thread degree. See [`ShardedDb::execute_threads`].
    pub fn execute_threads(&self, query: &RangeQuery, threads: usize) -> Result<RowSet> {
        self.db.execute_threads(query, threads)
    }

    /// Executes and returns the degree-independent work counters too.
    pub fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, WorkCounters)> {
        self.db.execute_with_cost_threads(query, threads)
    }

    /// Executes with full per-shard statistics (pruning counts included).
    pub fn execute_with_stats_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<ShardExecution> {
        self.db.execute_with_stats_threads(query, threads)
    }

    /// Counts matches without materializing rows.
    pub fn count(&self, query: &RangeQuery) -> Result<usize> {
        self.db.count(query)
    }

    /// Executes a batch of queries across `threads` workers; results come
    /// back in input order. See [`ShardedDb::execute_batch_threads`] — this
    /// is what the server's coalesced dispatch runs against, so a whole
    /// batch shares one frozen shard-set and one pool submission.
    pub fn execute_batch_threads(
        &self,
        queries: &[RangeQuery],
        threads: usize,
    ) -> Result<Vec<RowSet>> {
        self.db.execute_batch_threads(queries, threads)
    }
}
