//! A small database layer over the paper's indexes: index selection per
//! query (the paper's §6 insights, made executable) plus append support via
//! a delta store.
//!
//! Every index family in the workspace implements the engine-layer
//! [`AccessMethod`] trait, so [`IncompleteDb`] holds one uniform registry of
//! boxed access methods and plans each query with a single rule: among the
//! methods that support the query's semantics, take the lowest
//! [`estimated_cost`](AccessMethod::estimated_cost) (in 64-bit words of
//! index data touched), breaking ties by smaller
//! [`size_bytes`](AccessMethod::size_bytes), then by registration order.
//! That generalizes the paper's conclusions instead of hard-coding them:
//!
//! * equality encoding is "optimal for point queries" — its estimate
//!   `Σ (min(w, C−w) + 1)` bitmaps is smallest when `w = 1`;
//! * range encoding "typically offers the best time performance" for range
//!   queries — ≤ 3 bitmaps per dimension regardless of width;
//! * interval encoding ties range encoding on reads and wins the size
//!   tie-break with roughly half the bitmaps, when it is registered;
//! * VA-files trade query time for by-far-the-smallest index, so they take
//!   over when no bitmap index is maintained;
//! * a bound [`SequentialScan`] is always registered last, so every query
//!   has a finite-cost path even with no indexes at all.
//!
//! [`IncompleteDb::explain`] shows the decision — every candidate with its
//! cost — and queries merge results from an unindexed *delta store* so rows
//! can be appended without rebuilding — the update scenario the paper
//! raises when it notes index size "becomes important as database updates
//! become more frequent". [`IncompleteDb::compact`] folds the delta back
//! into the indexes.

use ibis_baseline::SequentialScan;
use ibis_bitmap::{
    AdaptiveBitmapIndex, DecomposedBitmapIndex, EqualityBitmapIndex, IntervalBitmapIndex,
    RangeBitmapIndex,
};
use ibis_bitvec::Wah;
use ibis_core::synopsis::ShardSynopsis;
use ibis_core::{wire, AccessMethod, Cell, Dataset, RangeQuery, Result, RowSet, WorkCounters};
use ibis_vafile::{VaFile, VaPlusFile};
use std::sync::Arc;

const SNAPSHOT_MAGIC: &[u8; 4] = b"IBSS";
const SNAPSHOT_VERSION: u16 = 1;

/// Which indexes an [`IncompleteDb`] maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DbConfig {
    /// Maintain an equality-encoded bitmap index (point-query specialist).
    pub bee: bool,
    /// Maintain a range-encoded bitmap index (range-query specialist).
    pub bre: bool,
    /// Maintain an interval-encoded bitmap index (range encoding's reads at
    /// roughly half the storage).
    pub bie: bool,
    /// Maintain an attribute-value-decomposed bitmap index.
    pub decomposed: bool,
    /// Maintain a VA-file (smallest footprint).
    pub va: bool,
    /// Maintain a VA+-file (equi-depth bins for skewed data).
    pub vaplus: bool,
    /// Maintain an adaptive-container equality index
    /// ([`AdaptiveBitmapIndex`]): per-chunk array/bitmap/run containers
    /// with container-exact work counters and a compression-scaled cost
    /// estimate.
    pub adaptive: bool,
}

impl Default for DbConfig {
    /// The paper's §6 trio — equality, range, and VA — so the planner
    /// always has its preferred index for points, ranges, and memory
    /// pressure alike.
    fn default() -> DbConfig {
        DbConfig {
            bee: true,
            bre: true,
            va: true,
            ..DbConfig::none()
        }
    }
}

impl DbConfig {
    /// No indexes at all: every query falls back to the registered
    /// sequential scan.
    pub fn none() -> DbConfig {
        DbConfig {
            bee: false,
            bre: false,
            bie: false,
            decomposed: false,
            va: false,
            vaplus: false,
            adaptive: false,
        }
    }

    /// Every index family the workspace offers.
    pub fn all() -> DbConfig {
        DbConfig {
            bee: true,
            bre: true,
            bie: true,
            decomposed: true,
            va: true,
            vaplus: true,
            adaptive: true,
        }
    }

    /// Memory-constrained profile: VA-file only (the paper's
    /// smallest-index regime).
    pub fn compact_profile() -> DbConfig {
        DbConfig {
            va: true,
            ..DbConfig::none()
        }
    }

    /// Packs the flags into one byte for the snapshot format.
    pub(crate) fn to_bits(self) -> u8 {
        u8::from(self.bee)
            | u8::from(self.bre) << 1
            | u8::from(self.bie) << 2
            | u8::from(self.decomposed) << 3
            | u8::from(self.va) << 4
            | u8::from(self.vaplus) << 5
            | u8::from(self.adaptive) << 6
    }

    /// Inverse of [`DbConfig::to_bits`]; rejects unknown flag bits so a
    /// snapshot written by a future format can't silently misconfigure.
    pub(crate) fn from_bits(bits: u8) -> std::io::Result<DbConfig> {
        if bits >= 1 << 7 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown index-config bits {bits:#x}"),
            ));
        }
        Ok(DbConfig {
            bee: bits & 1 != 0,
            bre: bits & 2 != 0,
            bie: bits & 4 != 0,
            decomposed: bits & 8 != 0,
            va: bits & 16 != 0,
            vaplus: bits & 32 != 0,
            adaptive: bits & 64 != 0,
        })
    }
}

/// One access method the planner considered, with its cost-model inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidatePlan {
    /// The method's registry name (e.g. `"bitmap-equality"`).
    pub name: &'static str,
    /// Estimated 64-bit words of index data the method would touch.
    pub estimated_cost: f64,
    /// The method's storage footprint (the tie-breaker).
    pub size_bytes: usize,
}

/// The planner's decision and its cost model inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Name of the chosen access method for the indexed (base) rows.
    pub chosen: &'static str,
    /// Every registered method that supports the query, in registration
    /// order, with its estimated cost — the full §6 decision table.
    pub candidates: Vec<CandidatePlan>,
    /// Rows the delta store will scan on top of the index.
    pub delta_rows: usize,
    /// Histogram-based estimate of matching base rows (independence
    /// assumption across attributes; exact for one-attribute keys).
    pub estimated_rows: f64,
    /// Worker threads the executor will use for this query (the configured
    /// degree: `set_threads` override, else `IBIS_THREADS`, else the
    /// machine default). Results are identical for any value.
    pub parallelism: usize,
}

/// An incomplete relation with maintained indexes and an append delta.
///
/// ```
/// use ibis::prelude::*;
///
/// let data = Dataset::from_rows(
///     &[("a", 9)],
///     &[vec![Cell::present(2)], vec![Cell::MISSING], vec![Cell::present(7)]],
/// )
/// .unwrap();
/// let mut db = IncompleteDb::new(data);
/// db.insert(&[Cell::present(3)]).unwrap(); // lands in the delta, id 3
///
/// let q = RangeQuery::new(vec![Predicate::range(0, 2, 4)], MissingPolicy::IsMatch).unwrap();
/// assert_eq!(db.execute(&q).unwrap().rows(), &[0, 1, 3]); // missing matches
/// assert!(db.compact());  // folds the delta into the indexes…
/// assert!(!db.compact()); // …and a clean db is a no-op
/// assert_eq!(db.execute(&q).unwrap().rows(), &[0, 1, 3]);
/// ```
#[derive(Clone)]
pub struct IncompleteDb {
    config: DbConfig,
    base: Arc<Dataset>,
    /// The engine-layer registry: one entry per maintained index, plus the
    /// always-on sequential scan in last position.
    methods: Vec<Arc<dyn AccessMethod>>,
    /// Appended rows not yet folded into the indexes, row-major.
    delta: Vec<Vec<Cell>>,
    /// Tombstoned row ids (base or delta numbering), applied as a result
    /// filter until the next compaction renumbers the survivors.
    deleted: std::collections::BTreeSet<u32>,
    /// Per-column value histograms of the base dataset, cached so the
    /// planner's cardinality estimates don't rescan columns on every query.
    histograms: Vec<Vec<usize>>,
}

impl std::fmt::Debug for IncompleteDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncompleteDb")
            .field("config", &self.config)
            .field(
                "methods",
                &self.methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .field("n_rows", &self.n_rows())
            .field("delta_rows", &self.delta.len())
            .field("deleted", &self.deleted.len())
            .finish()
    }
}

/// Builds the access-method registry for `base` under `config`. The
/// sequential scan always comes last, so indexes win registration-order
/// ties against it.
fn build_methods(config: DbConfig, base: &Arc<Dataset>) -> Vec<Arc<dyn AccessMethod>> {
    let mut methods: Vec<Arc<dyn AccessMethod>> = Vec::new();
    if config.bee {
        methods.push(Arc::new(EqualityBitmapIndex::<Wah>::build(base)));
    }
    if config.bre {
        methods.push(Arc::new(RangeBitmapIndex::<Wah>::build(base)));
    }
    if config.bie {
        methods.push(Arc::new(IntervalBitmapIndex::<Wah>::build(base)));
    }
    if config.decomposed {
        methods.push(Arc::new(DecomposedBitmapIndex::<Wah>::build(base)));
    }
    if config.adaptive {
        methods.push(Arc::new(AdaptiveBitmapIndex::build(base)));
    }
    if config.va {
        methods.push(Arc::new(VaFile::build(base).bind(Arc::clone(base))));
    }
    if config.vaplus {
        methods.push(Arc::new(VaPlusFile::build(base).bind(Arc::clone(base))));
    }
    methods.push(Arc::new(SequentialScan.bind(Arc::clone(base))));
    methods
}

impl IncompleteDb {
    /// Builds over `dataset` with the default config.
    pub fn new(dataset: Dataset) -> IncompleteDb {
        IncompleteDb::with_config(dataset, DbConfig::default())
    }

    /// Builds over `dataset`, maintaining only the configured indexes.
    pub fn with_config(dataset: Dataset, config: DbConfig) -> IncompleteDb {
        let base = Arc::new(dataset);
        IncompleteDb {
            config,
            methods: build_methods(config, &base),
            histograms: base.columns().iter().map(|c| c.value_counts()).collect(),
            base,
            delta: Vec::new(),
            deleted: std::collections::BTreeSet::new(),
        }
    }

    /// Total live rows (indexed base + unindexed delta − tombstones).
    ///
    /// Saturating: `deleted` can never push the count below zero, even if a
    /// caller-visible invariant breaks elsewhere (the oracle tombstones far
    /// more aggressively than any generator, and this must stay total).
    pub fn n_rows(&self) -> usize {
        (self.base.n_rows() + self.delta.len()).saturating_sub(self.deleted.len())
    }

    /// Tombstoned rows awaiting compaction.
    pub fn deleted_len(&self) -> usize {
        self.deleted.len()
    }

    /// Deletes a row by id. Returns `true` if the row existed and was
    /// alive. Deleted rows disappear from query results immediately; their
    /// storage is reclaimed (and surviving rows are **renumbered**) at the
    /// next [`compact`](IncompleteDb::compact).
    pub fn delete(&mut self, row: u32) -> bool {
        if (row as usize) < self.base.n_rows() + self.delta.len() {
            self.deleted.insert(row)
        } else {
            false
        }
    }

    /// Rows awaiting compaction.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// The schema width.
    pub fn n_attrs(&self) -> usize {
        self.base.n_attrs()
    }

    /// Names of the registered access methods, in planning order.
    pub fn method_names(&self) -> Vec<&'static str> {
        self.methods.iter().map(|m| m.name()).collect()
    }

    /// Total bytes held by the maintained indexes.
    pub fn index_bytes(&self) -> usize {
        self.methods.iter().map(|m| m.size_bytes()).sum()
    }

    /// Appends one row (validated against the schema). The row lands in the
    /// delta store; queries see it immediately, indexes pick it up at the
    /// next [`compact`](IncompleteDb::compact).
    pub fn insert(&mut self, row: &[Cell]) -> Result<()> {
        ibis_core::validate_row(
            row,
            |a| self.base.column(a).cardinality(),
            self.base.n_attrs(),
        )?;
        self.delta.push(row.to_vec());
        Ok(())
    }

    /// Folds the delta store into the base dataset, drops tombstoned rows
    /// (renumbering the survivors), and rebuilds the maintained indexes.
    ///
    /// Returns `true` if there was anything to fold — a clean database is a
    /// no-op and keeps its indexes, which is what makes per-shard compaction
    /// in [`ShardedDb`] O(dirty shards) instead of O(all rows).
    pub fn compact(&mut self) -> bool {
        if self.delta.is_empty() && self.deleted.is_empty() {
            return false;
        }
        let base_rows = self.base.n_rows();
        let columns = self
            .base
            .columns()
            .iter()
            .enumerate()
            .map(|(attr, col)| {
                let mut raw: Vec<u16> = col
                    .raw()
                    .iter()
                    .enumerate()
                    .filter(|(row, _)| !self.deleted.contains(&(*row as u32)))
                    .map(|(_, &v)| v)
                    .collect();
                raw.extend(self.delta.iter().enumerate().filter_map(|(i, row)| {
                    let id = (base_rows + i) as u32;
                    (!self.deleted.contains(&id)).then(|| row[attr].raw())
                }));
                ibis_core::Column::from_raw(col.name(), col.cardinality(), raw)
                    .expect("delta rows validated on insert")
            })
            .collect();
        self.base = Arc::new(Dataset::new(columns).expect("equal lengths by construction"));
        self.histograms = self
            .base
            .columns()
            .iter()
            .map(|c| c.value_counts())
            .collect();
        self.delta.clear();
        self.deleted.clear();
        self.methods = build_methods(self.config, &self.base);
        true
    }

    /// Estimated matching base rows from the cached histograms (product of
    /// exact per-attribute selectivities; the independence assumption of the
    /// paper's GS formula).
    fn estimate_rows(&self, query: &RangeQuery) -> f64 {
        let n = self.base.n_rows();
        if n == 0 {
            return 0.0;
        }
        let sel: f64 = query
            .predicates()
            .iter()
            .map(|p| {
                let counts = &self.histograms[p.attr];
                let mut hits: usize = counts[p.interval.lo as usize..=p.interval.hi as usize]
                    .iter()
                    .sum();
                if query.policy() == ibis_core::MissingPolicy::IsMatch {
                    hits += counts[0];
                }
                hits as f64 / n as f64
            })
            .product();
        sel * n as f64
    }

    /// Plans a query: ranks every registered access method that supports it
    /// by `(estimated_cost, size_bytes, registration order)` and reports
    /// the whole decision table.
    pub fn explain(&self, query: &RangeQuery) -> Result<Plan> {
        let mut span = ibis_obs::span("db.plan");
        query.validate(&self.base)?;
        let candidates: Vec<CandidatePlan> = self
            .methods
            .iter()
            .filter(|m| m.supports(query))
            .map(|m| CandidatePlan {
                name: m.name(),
                estimated_cost: m.estimated_cost(query),
                size_bytes: m.size_bytes(),
            })
            .collect();
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            let b = &candidates[best];
            if c.estimated_cost < b.estimated_cost
                || (c.estimated_cost == b.estimated_cost && c.size_bytes < b.size_bytes)
            {
                best = i;
            }
        }
        // Deliberately NOT named `candidates`: span fields that reuse a
        // `WorkCounters` field name are treated as counter deltas by the
        // profile/slow-log attribution, and this one is a plan-table size.
        span.add_field("plan_candidates", candidates.len() as u64);
        Ok(Plan {
            chosen: candidates[best].name,
            candidates,
            delta_rows: self.delta.len(),
            estimated_rows: self.estimate_rows(query),
            parallelism: ibis_core::parallel::configured_threads(),
        })
    }

    /// Executes a query over base + delta, via the planned access method,
    /// at the configured parallelism degree.
    pub fn execute(&self, query: &RangeQuery) -> Result<RowSet> {
        self.execute_threads(query, ibis_core::parallel::configured_threads())
    }

    /// [`Self::execute`] with an explicit intra-query parallelism degree.
    /// The answer is identical for any `threads`.
    pub fn execute_threads(&self, query: &RangeQuery, threads: usize) -> Result<RowSet> {
        Ok(self.execute_with_cost_threads(query, threads)?.0)
    }

    /// [`Self::execute_threads`] that also reports the work performed: the
    /// chosen method's [`WorkCounters`] plus the delta scan (counted under
    /// `entries_scanned`). Both the rows and the counters are identical for
    /// any `threads` — the engine-layer conformance contract, which is what
    /// lets [`ShardedDb`] fan shards out without changing what it reports.
    pub fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, WorkCounters)> {
        let plan = self.explain(query)?;
        let method = self
            .methods
            .iter()
            .find(|m| m.name() == plan.chosen)
            .expect("chosen from this registry");
        let (base_rows, mut counters) = method.execute_with_cost_threads(query, threads)?;
        counters.entries_scanned = counters.entries_scanned.saturating_add(self.delta.len());
        // Delta rows are scanned with the semantic definition directly.
        let mut span = ibis_obs::span("db.delta");
        span.add_field("delta_rows", self.delta.len() as u64);
        // The delta scan is charged to `entries_scanned` above; record the
        // same delta on this span so per-phase attribution stays exact.
        span.add_field("entries_scanned", self.delta.len() as u64);
        let offset = self.base.n_rows() as u32;
        let policy = query.policy();
        let delta_hits = self.delta.iter().enumerate().filter_map(|(i, row)| {
            let ok = query
                .predicates()
                .iter()
                .all(|p| policy.cell_matches(row[p.attr], p.interval));
            ok.then_some(offset + i as u32)
        });
        let combined = base_rows.union(&RowSet::from_sorted(delta_hits.collect()));
        if self.deleted.is_empty() {
            return Ok((combined, counters));
        }
        Ok((
            RowSet::from_sorted(
                combined
                    .iter()
                    .filter(|r| !self.deleted.contains(r))
                    .collect(),
            ),
            counters,
        ))
    }

    /// Executes a batch of queries, planning each independently and fanning
    /// the work out across the configured worker pool (delta and tombstone
    /// merging included). A panic on any worker surfaces as
    /// [`ibis_core::Error::WorkerPanicked`] instead of aborting.
    pub fn execute_batch(&self, queries: &[RangeQuery]) -> Result<Vec<RowSet>> {
        self.execute_batch_threads(queries, ibis_core::parallel::configured_threads())
    }

    /// [`Self::execute_batch`] with an explicit fan-out degree. Queries run
    /// whole (planning included) on the pool's workers; results come back
    /// in input order regardless of `threads`. Each worker runs its query
    /// sequentially — the batch itself is the parallelism, so fanning out
    /// again inside each query would only oversubscribe the pool.
    pub fn execute_batch_threads(
        &self,
        queries: &[RangeQuery],
        threads: usize,
    ) -> Result<Vec<RowSet>> {
        ibis_core::parallel::ExecPool::new(threads)
            .try_map(queries.to_vec(), |q| self.execute_threads(&q, 1))
    }

    /// Counts matching rows.
    pub fn count(&self, query: &RangeQuery) -> Result<usize> {
        Ok(self.execute(query)?.len())
    }

    /// The cell at (`row`, `attr`), addressing base then delta.
    pub fn cell(&self, row: usize, attr: usize) -> Cell {
        if row < self.base.n_rows() {
            self.base.cell(row, attr)
        } else {
            self.delta[row - self.base.n_rows()][attr]
        }
    }
}

/// Copies rows `start..end` of `dataset` into a standalone dataset with the
/// same schema (an `end` of `start` yields an empty, schema-only dataset).
fn slice_dataset(dataset: &Dataset, start: usize, end: usize) -> Dataset {
    let columns = dataset
        .columns()
        .iter()
        .map(|col| {
            ibis_core::Column::from_raw(
                col.name(),
                col.cardinality(),
                col.raw()[start..end].to_vec(),
            )
            .expect("slice of a valid column is valid")
        })
        .collect();
    Dataset::new(columns).expect("equal lengths by construction")
}

/// One shard: a full [`IncompleteDb`] over a contiguous row range, plus the
/// synopsis the planner consults before touching any of its indexes.
///
/// Shards are held behind [`Arc`] by [`ShardedDb`], so cloning a whole
/// database (what snapshot publication does on every mutation) is one
/// pointer bump per shard; mutators go through [`Arc::make_mut`], which
/// deep-copies only a shard that is still shared with a live snapshot.
#[derive(Clone, Debug)]
struct Shard {
    db: IncompleteDb,
    synopsis: ShardSynopsis,
}

impl Shard {
    /// Width of this shard's row-id space: base + delta, tombstones
    /// included (tombstoned ids stay allocated until compaction).
    fn id_width(&self) -> usize {
        self.db.base.n_rows() + self.db.delta.len()
    }

    fn over(dataset: Dataset, config: DbConfig) -> Shard {
        Shard {
            synopsis: ShardSynopsis::of(&dataset),
            db: IncompleteDb::with_config(dataset, config),
        }
    }
}

/// The result of one sharded query, with the pruning decisions exposed.
#[derive(Clone, Debug)]
pub struct ShardExecution {
    /// Matching rows, in global row-id order.
    pub rows: RowSet,
    /// Work counters summed (saturating) over the executed shards.
    pub counters: WorkCounters,
    /// Number of shards the database currently holds.
    pub shards_total: usize,
    /// Shards skipped because their synopsis proved no row can match.
    pub shards_pruned: usize,
}

impl ShardExecution {
    /// Shards that actually executed (`shards_total − shards_pruned`).
    pub fn shards_executed(&self) -> usize {
        self.shards_total.saturating_sub(self.shards_pruned)
    }
}

/// An incomplete relation partitioned into fixed-capacity shards, each a
/// full [`IncompleteDb`] (own per-family indexes, own append delta) plus a
/// [`ShardSynopsis`] used to prune shards that cannot contain an answer.
///
/// Row ids are global and deterministic: shard `i` owns the contiguous id
/// range after shards `0..i`, so a sharded database returns **bit-identical
/// rows** to a monolithic [`IncompleteDb`] over the same data — the
/// metamorphic relation the oracle and conformance tests assert. Appends
/// route to the last shard, opening a fresh one when it reaches capacity,
/// and [`ShardedDb::compact`] rebuilds only dirty shards.
///
/// Pruning follows the two missing-data semantics (see
/// [`ShardSynopsis::can_prune`]): under `IsNotMatch` an all-missing queried
/// attribute eliminates a shard outright; under `IsMatch` a shard with any
/// missing value on a queried attribute can never be pruned on it.
///
/// ```
/// use ibis::prelude::*;
///
/// // Six rows whose values grow with the row id → 3 shards of 2 rows,
/// // each covering a distinct value band.
/// let rows: Vec<Vec<Cell>> = (1u16..=6).map(|v| vec![Cell::present(v)]).collect();
/// let data = Dataset::from_rows(&[("a", 9)], &rows).unwrap();
/// let db = ShardedDb::new(data, 2);
/// assert_eq!(db.shard_count(), 3);
///
/// // [5,6] misses the first two shards' envelopes: both are pruned.
/// let q = RangeQuery::new(vec![Predicate::range(0, 5, 6)], MissingPolicy::IsNotMatch).unwrap();
/// let exec = db.execute_with_stats(&q).unwrap();
/// assert_eq!(exec.rows.rows(), &[4, 5]);
/// assert_eq!(exec.shards_pruned, 2);
/// assert_eq!(exec.shards_executed(), 1);
/// ```
#[derive(Clone)]
pub struct ShardedDb {
    config: DbConfig,
    shard_rows: usize,
    /// Shards behind `Arc` so a database clone (one snapshot publication)
    /// shares every shard; mutation copies-on-write only the touched shard.
    shards: Vec<Arc<Shard>>,
    /// Memoized global-id start offset of each shard (`offsets[i]` = sum of
    /// `id_width` over shards `0..i`), so delete and query resolve a shard
    /// without walking all earlier ones. Appends to the last shard never
    /// move a start; only opening a shard or compacting (which renumbers)
    /// touches this.
    offsets: Vec<usize>,
}

impl std::fmt::Debug for ShardedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("config", &self.config)
            .field("shard_rows", &self.shard_rows)
            .field("shards", &self.shards.len())
            .field("n_rows", &self.n_rows())
            .finish()
    }
}

impl ShardedDb {
    /// Partitions `dataset` into shards of at most `shard_rows` rows (in
    /// row order, so global ids equal monolithic ids) under the default
    /// index config. A `shard_rows` of 0 is treated as 1.
    pub fn new(dataset: Dataset, shard_rows: usize) -> ShardedDb {
        ShardedDb::with_config(dataset, shard_rows, DbConfig::default())
    }

    /// [`ShardedDb::new`] with an explicit index configuration, applied to
    /// every shard. An empty dataset still gets one (empty) shard so the
    /// schema is always available.
    pub fn with_config(dataset: Dataset, shard_rows: usize, config: DbConfig) -> ShardedDb {
        let shard_rows = shard_rows.max(1);
        let n = dataset.n_rows();
        let mut shards = Vec::with_capacity(n.div_ceil(shard_rows).max(1));
        let mut start = 0;
        while start < n {
            let end = (start + shard_rows).min(n);
            shards.push(Arc::new(Shard::over(
                slice_dataset(&dataset, start, end),
                config,
            )));
            start = end;
        }
        if shards.is_empty() {
            shards.push(Arc::new(Shard::over(slice_dataset(&dataset, 0, 0), config)));
        }
        let mut db = ShardedDb {
            config,
            shard_rows,
            shards,
            offsets: Vec::new(),
        };
        db.recompute_offsets();
        db
    }

    /// The per-shard index configuration.
    pub fn config(&self) -> DbConfig {
        self.config
    }

    /// Rebuilds the memoized shard start offsets from scratch (needed only
    /// when shard widths change: shard creation and compaction).
    fn recompute_offsets(&mut self) {
        self.offsets.clear();
        self.offsets.reserve(self.shards.len());
        let mut off = 0usize;
        for shard in &self.shards {
            self.offsets.push(off);
            off += shard.id_width();
        }
    }

    /// Total live rows across all shards.
    pub fn n_rows(&self) -> usize {
        self.shards
            .iter()
            .fold(0usize, |acc, s| acc.saturating_add(s.db.n_rows()))
    }

    /// The schema width.
    pub fn n_attrs(&self) -> usize {
        self.shards[0].db.n_attrs()
    }

    /// The schema carrier: shard 0's base relation, whose column names and
    /// cardinalities are shared by every shard (query parsers resolve
    /// attribute names against this).
    pub fn schema(&self) -> &Dataset {
        &self.shards[0].db.base
    }

    /// Number of shards currently held (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured shard capacity.
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// The synopsis of shard `i` (attribute envelopes, missing counts).
    pub fn synopsis(&self, i: usize) -> &ShardSynopsis {
        &self.shards[i].synopsis
    }

    /// Total bytes held by the maintained indexes, over all shards.
    pub fn index_bytes(&self) -> usize {
        self.shards
            .iter()
            .fold(0usize, |acc, s| acc.saturating_add(s.db.index_bytes()))
    }

    /// Appends one row. It lands in the last shard's delta — or in a fresh
    /// shard when the last one has reached capacity — and is folded into
    /// that shard's synopsis immediately, so pruning stays sound for rows
    /// that have never seen a compaction.
    pub fn insert(&mut self, row: &[Cell]) -> Result<()> {
        let last = self.shards.last().expect("≥ 1 shard");
        if last.id_width() >= self.shard_rows {
            let next_offset = self.offsets.last().expect("≥ 1 shard") + last.id_width();
            let schema_only = slice_dataset(&self.shards[0].db.base, 0, 0);
            self.shards
                .push(Arc::new(Shard::over(schema_only, self.config)));
            self.offsets.push(next_offset);
        }
        // Copy-on-write: only the receiving shard is cloned, and only when a
        // published snapshot still shares it.
        let shard = Arc::make_mut(self.shards.last_mut().expect("≥ 1 shard"));
        shard.db.insert(row)?;
        shard.synopsis.observe_row(row);
        Ok(())
    }

    /// Validates `row` against the schema without inserting it (the durable
    /// engine checks before logging, so invalid rows never reach the WAL).
    pub fn validate_row(&self, row: &[Cell]) -> Result<()> {
        let base = &self.shards[0].db.base;
        ibis_core::validate_row(row, |a| base.column(a).cardinality(), base.n_attrs())
    }

    /// Deletes a row by global id. Returns `true` if the row existed and
    /// was alive. The synopsis is *not* narrowed — it stays a sound
    /// over-approximation until the owning shard is compacted.
    pub fn delete(&mut self, row: u32) -> bool {
        let row = row as usize;
        // Tombstones don't shrink id_width, so the memoized offsets stay
        // valid across deletes; binary search finds the owning shard in
        // O(log k) instead of walking every earlier shard.
        let i = self.offsets.partition_point(|&o| o <= row) - 1;
        if row >= self.offsets[i] + self.shards[i].id_width() {
            return false; // beyond the last shard's id space
        }
        // A miss never clones; only a real tombstone copies-on-write.
        Arc::make_mut(&mut self.shards[i])
            .db
            .delete((row - self.offsets[i]) as u32)
    }

    /// Compacts every **dirty** shard (pending delta rows or tombstones),
    /// rebuilding its indexes and recomputing its synopsis exactly; clean
    /// shards are untouched. Returns the number of shards rebuilt — the
    /// cost is O(dirty shards), not O(all rows).
    ///
    /// Compaction renumbers survivors within each shard, which shifts the
    /// global ids of later shards' rows exactly as a monolithic
    /// [`IncompleteDb::compact`] would: the global order of survivors is
    /// preserved, so sharded and monolithic answers stay identical.
    pub fn compact(&mut self) -> usize {
        let mut rebuilt = 0;
        for shard in &mut self.shards {
            // Cheap cleanliness probe first, so clean shards are never
            // copied-on-write (they stay shared with every live snapshot).
            if shard.db.delta.is_empty() && shard.db.deleted.is_empty() {
                continue;
            }
            let shard = Arc::make_mut(shard);
            if shard.db.compact() {
                shard.synopsis = ShardSynopsis::of(&shard.db.base);
                rebuilt += 1;
            }
        }
        if rebuilt > 0 {
            // Compaction reclaims tombstoned ids, shifting every later
            // shard's start.
            self.recompute_offsets();
        }
        rebuilt
    }

    /// Executes a query at the configured parallelism degree.
    pub fn execute(&self, query: &RangeQuery) -> Result<RowSet> {
        self.execute_threads(query, ibis_core::parallel::configured_threads())
    }

    /// [`ShardedDb::execute`] with an explicit thread degree. Rows and
    /// counters are identical for any `threads`.
    pub fn execute_threads(&self, query: &RangeQuery, threads: usize) -> Result<RowSet> {
        Ok(self.execute_with_stats_threads(query, threads)?.rows)
    }

    /// Executes and reports the merged [`WorkCounters`].
    pub fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, WorkCounters)> {
        let exec = self.execute_with_stats_threads(query, threads)?;
        Ok((exec.rows, exec.counters))
    }

    /// [`ShardedDb::execute_with_stats_threads`] at the configured degree.
    pub fn execute_with_stats(&self, query: &RangeQuery) -> Result<ShardExecution> {
        self.execute_with_stats_threads(query, ibis_core::parallel::configured_threads())
    }

    /// The full sharded execution pipeline: consult every shard's synopsis,
    /// skip the provably-empty shards (recorded on the `shards.pruned`
    /// counter and the `db.shards` span), fan the survivors out over the
    /// worker pool (one `db.shard` span each), and merge — rows offset into
    /// global-id order, counters summed saturatingly in shard order.
    pub fn execute_with_stats_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<ShardExecution> {
        query.validate(&self.shards[0].db.base)?;
        let mut span = ibis_obs::span("db.shards");
        debug_assert_eq!(self.offsets.len(), self.shards.len());
        let mut work: Vec<(usize, usize, &Shard)> = Vec::new();
        let mut pruned = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.synopsis.can_prune(query) {
                pruned += 1;
            } else {
                work.push((i, self.offsets[i], shard));
            }
        }
        ibis_obs::counter_add("shards.pruned", pruned as u64);
        span.add_field("shards", self.shards.len() as u64);
        span.add_field("pruned", pruned as u64);
        // With more than one live shard the shards *are* the parallelism;
        // fanning out again inside each shard would oversubscribe the pool.
        // Counters are thread-degree-independent either way, so this choice
        // never shows up in the merged result.
        let inner = if work.len() > 1 { 1 } else { threads.max(1) };
        let parts =
            ibis_core::parallel::ExecPool::new(threads).try_map(work, |(i, off, shard)| {
                let mut shard_span = ibis_obs::span("db.shard");
                shard_span.add_field("shard", i as u64);
                let (rows, counters) = shard.db.execute_with_cost_threads(query, inner)?;
                shard_span.add_field("rows", rows.len() as u64);
                counters.record_into(&mut shard_span);
                let global = rows.iter().map(|r| r + off as u32).collect();
                Ok((RowSet::from_sorted(global), counters))
            })?;
        let mut counters = WorkCounters::zero();
        let mut sets = Vec::with_capacity(parts.len());
        for (rows, c) in parts {
            counters.merge(c);
            sets.push(rows);
        }
        let rows = RowSet::concat_sorted(sets);
        span.add_field("rows", rows.len() as u64);
        Ok(ShardExecution {
            rows,
            counters,
            shards_total: self.shards.len(),
            shards_pruned: pruned,
        })
    }

    /// Counts matching rows.
    pub fn count(&self, query: &RangeQuery) -> Result<usize> {
        Ok(self.execute(query)?.len())
    }

    /// Executes a batch of queries across the configured worker pool.
    pub fn execute_batch(&self, queries: &[RangeQuery]) -> Result<Vec<RowSet>> {
        self.execute_batch_threads(queries, ibis_core::parallel::configured_threads())
    }

    /// [`ShardedDb::execute_batch`] with an explicit fan-out degree.
    /// Queries run whole (synopsis pruning and shard merge included) on the
    /// pool's workers, each internally single-threaded — the batch itself
    /// is the parallelism — and results come back in input order at any
    /// `threads`. This is the server's coalesced-dispatch entry point: one
    /// pool submission amortizes pool wake-up over the whole batch instead
    /// of paying it per query.
    pub fn execute_batch_threads(
        &self,
        queries: &[RangeQuery],
        threads: usize,
    ) -> Result<Vec<RowSet>> {
        ibis_core::parallel::ExecPool::new(threads)
            .try_map(queries.to_vec(), |q| self.execute_threads(&q, 1))
    }

    /// Serializes the logical state — per-shard base dataset, delta rows,
    /// and tombstones — as one checksummed image (magic `IBSS`). Indexes
    /// and synopses are rebuildable caches and are **not** written;
    /// [`ShardedDb::read_snapshot`] recomputes them. Serialization is
    /// deterministic, so equal logical states produce identical bytes.
    pub fn write_snapshot(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        let mut body = Vec::new();
        wire::write_u8(&mut body, self.config.to_bits())?;
        wire::write_len(&mut body, self.shard_rows)?;
        wire::write_len(&mut body, self.shards.len())?;
        for shard in &self.shards {
            shard.db.base.write_to(&mut body)?;
            wire::write_len(&mut body, shard.db.delta.len())?;
            for row in &shard.db.delta {
                for cell in row {
                    wire::write_u16(&mut body, cell.raw())?;
                }
            }
            let deleted: Vec<u32> = shard.db.deleted.iter().copied().collect();
            wire::write_vec_u32(&mut body, &deleted)?;
        }
        wire::write_header(w, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        wire::write_u32(w, crate::crc::crc32(&body))?;
        wire::write_bytes(w, &body)
    }

    /// Parses a snapshot image, rebuilding every index and synopsis.
    ///
    /// Hardened against corruption: the body is checksummed; allocations
    /// are capped (a lying length field hits a clean EOF, never a huge
    /// reservation); delta rows re-validate against the schema; tombstones
    /// must be in range; and all shards must share shard 0's schema, so a
    /// crafted image can't make later query dispatch index out of bounds.
    pub fn read_snapshot(r: &mut impl std::io::Read) -> std::io::Result<ShardedDb> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        wire::read_header(r, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let crc = wire::read_u32(r)?;
        let body = wire::read_bytes(r)?;
        if crate::crc::crc32(&body) != crc {
            return Err(bad("snapshot checksum mismatch"));
        }
        let r = &mut body.as_slice();
        let config = DbConfig::from_bits(wire::read_u8(r)?)?;
        let shard_rows = wire::read_len(r)?.max(1);
        let n_shards = wire::read_len(r)?;
        let mut shards: Vec<Arc<Shard>> = Vec::with_capacity(n_shards.min(1 << 16));
        for _ in 0..n_shards {
            let base = Dataset::read_from(r)?;
            if let Some(first) = shards.first() {
                let schema = |d: &Dataset| -> Vec<(String, u16)> {
                    d.columns()
                        .iter()
                        .map(|c| (c.name().to_string(), c.cardinality()))
                        .collect()
                };
                if schema(&base) != schema(&first.db.base) {
                    return Err(bad("snapshot shards disagree on the schema"));
                }
            }
            let mut shard = Shard::over(base, config);
            let width = shard.db.n_attrs();
            let n_delta = wire::read_len(r)?;
            for _ in 0..n_delta {
                // The cap mirrors wal.rs: a lying width in a crafted image
                // must hit a clean EOF, never a huge reservation.
                let mut row = Vec::with_capacity(width.min(1 << 16));
                for _ in 0..width {
                    row.push(Cell::from_raw(wire::read_u16(r)?));
                }
                shard
                    .db
                    .insert(&row)
                    .map_err(|e| bad(&format!("snapshot delta row invalid: {e}")))?;
                shard.synopsis.observe_row(&row);
            }
            let limit = shard.id_width();
            for id in wire::read_vec_u32(r)? {
                if (id as usize) >= limit {
                    return Err(bad("snapshot tombstone out of range"));
                }
                shard.db.deleted.insert(id);
            }
            shards.push(Arc::new(shard));
        }
        if shards.is_empty() {
            return Err(bad("snapshot holds no shards"));
        }
        if !r.is_empty() {
            return Err(bad("trailing bytes in snapshot body"));
        }
        let mut db = ShardedDb {
            config,
            shard_rows,
            shards,
            offsets: Vec::new(),
        };
        db.recompute_offsets();
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::gen::{census_scaled, workload, QuerySpec};
    use ibis_core::{scan, MissingPolicy, Predicate};

    fn v(x: u16) -> Cell {
        Cell::present(x)
    }
    fn m() -> Cell {
        Cell::MISSING
    }

    fn db() -> IncompleteDb {
        IncompleteDb::new(census_scaled(400, 401))
    }

    #[test]
    fn planner_prefers_bee_for_points_and_bre_for_ranges() {
        let d = db();
        let point = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(d.explain(&point).unwrap().chosen, "bitmap-equality");
        // A wide range on a high-cardinality attribute.
        let attr = (0..d.n_attrs())
            .find(|&a| d.base.column(a).cardinality() >= 50)
            .unwrap();
        let c = d.base.column(attr).cardinality();
        let range = RangeQuery::new(
            vec![Predicate::range(attr, 5, c - 4)],
            MissingPolicy::IsMatch,
        )
        .unwrap();
        assert_eq!(d.explain(&range).unwrap().chosen, "bitmap-range");
    }

    #[test]
    fn planner_respects_config() {
        let data = census_scaled(200, 402);
        let vonly = IncompleteDb::with_config(data.clone(), DbConfig::compact_profile());
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(vonly.explain(&q).unwrap().chosen, "va-file");
        let none = IncompleteDb::with_config(data, DbConfig::none());
        assert_eq!(none.explain(&q).unwrap().chosen, "sequential-scan");
        assert_eq!(none.index_bytes(), 0);
        assert_eq!(none.method_names(), vec!["sequential-scan"]);
        // All paths agree regardless of config.
        assert_eq!(vonly.execute(&q).unwrap(), none.execute(&q).unwrap());
    }

    #[test]
    fn planner_prefers_interval_encoding_when_registered() {
        // The §6 acceptance case: interval encoding ties range encoding at
        // ≤ 3 bitmap reads per dimension but stores roughly half the
        // bitmaps, so once registered it must win the size tie-break
        // against range encoding. The adaptive index prices queries with
        // its compression-scaled exact model rather than the uncompressed
        // §6 bound, so with `all()` it undercuts both and takes the plan —
        // the interval-vs-range ordering still shows in the candidates.
        let data = census_scaled(400, 407);
        let d = IncompleteDb::with_config(data, DbConfig::all());
        let attr = (0..d.n_attrs())
            .find(|&a| d.base.column(a).cardinality() >= 50)
            .unwrap();
        let c = d.base.column(attr).cardinality();
        let range = RangeQuery::new(
            vec![Predicate::range(attr, 5, c - 4)],
            MissingPolicy::IsMatch,
        )
        .unwrap();
        let plan = d.explain(&range).unwrap();
        assert_eq!(plan.chosen, "bitmap-adaptive");
        let cost = |name: &str| {
            plan.candidates
                .iter()
                .find(|cand| cand.name == name)
                .unwrap()
                .estimated_cost
        };
        assert_eq!(cost("bitmap-interval"), cost("bitmap-range"));
        assert!(cost("bitmap-adaptive") < cost("bitmap-interval"));
        // Without the adaptive index the §6 winner is restored.
        let derived = IncompleteDb::with_config(
            census_scaled(400, 407),
            DbConfig {
                adaptive: false,
                ..DbConfig::all()
            },
        );
        assert_eq!(derived.explain(&range).unwrap().chosen, "bitmap-interval");
        // Points still go to an equality encoding even with everything on
        // (the adaptive index *is* equality-encoded).
        let point = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        let chosen = d.explain(&point).unwrap().chosen;
        assert!(
            chosen == "bitmap-adaptive" || chosen == "bitmap-equality",
            "point query planned on {chosen}"
        );
    }

    #[test]
    fn adaptive_config_plans_and_answers_like_the_rest() {
        let data = census_scaled(300, 419);
        let adaptive_only = IncompleteDb::with_config(
            data.clone(),
            DbConfig {
                adaptive: true,
                ..DbConfig::none()
            },
        );
        assert_eq!(
            adaptive_only.method_names(),
            vec!["bitmap-adaptive", "sequential-scan"]
        );
        let reference = IncompleteDb::new(data.clone());
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![Predicate::range(0, 1, 2), Predicate::range(1, 1, 3)],
                policy,
            )
            .unwrap();
            assert_eq!(adaptive_only.explain(&q).unwrap().chosen, "bitmap-adaptive");
            assert_eq!(
                adaptive_only.execute(&q).unwrap(),
                reference.execute(&q).unwrap(),
                "{policy}"
            );
            assert_eq!(
                adaptive_only.execute(&q).unwrap(),
                scan::execute(&data, &q),
                "{policy}"
            );
        }
    }

    #[test]
    fn explain_reports_every_candidate() {
        let d = db();
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        let plan = d.explain(&q).unwrap();
        let names: Vec<&str> = plan.candidates.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            vec![
                "bitmap-equality",
                "bitmap-range",
                "va-file",
                "sequential-scan"
            ]
        );
        for c in &plan.candidates {
            assert!(c.estimated_cost.is_finite(), "{c:?}");
            assert!(c.estimated_cost > 0.0, "{c:?}");
        }
        // The scan is costed but stores nothing.
        assert_eq!(plan.candidates.last().unwrap().size_bytes, 0);
    }

    #[test]
    fn execute_matches_scan_on_workloads() {
        let data = census_scaled(500, 403);
        let d = IncompleteDb::new(data.clone());
        for policy in MissingPolicy::ALL {
            let spec = QuerySpec {
                n_queries: 10,
                k: 4,
                global_selectivity: 0.03,
                policy,
                candidate_attrs: vec![],
            };
            for q in workload(&data, &spec, 404) {
                assert_eq!(d.execute(&q).unwrap(), scan::execute(&data, &q), "{policy}");
            }
        }
    }

    #[test]
    fn execute_batch_matches_sequential_execution() {
        let data = census_scaled(300, 408);
        let mut d = IncompleteDb::new(data.clone());
        d.insert(&vec![m(); data.n_attrs()]).unwrap();
        d.delete(0);
        let spec = QuerySpec {
            n_queries: 12,
            k: 3,
            global_selectivity: 0.05,
            policy: MissingPolicy::IsMatch,
            candidate_attrs: vec![],
        };
        let queries = workload(&data, &spec, 409);
        let sequential: Vec<RowSet> = queries.iter().map(|q| d.execute(q).unwrap()).collect();
        assert_eq!(d.execute_batch(&queries).unwrap(), sequential);
    }

    #[test]
    fn plan_reports_parallelism_and_answers_are_degree_independent() {
        let data = census_scaled(300, 411);
        let mut d = IncompleteDb::new(data.clone());
        d.insert(&vec![m(); data.n_attrs()]).unwrap();
        d.delete(0);
        let q = RangeQuery::new(
            vec![Predicate::range(0, 1, 2), Predicate::range(1, 1, 3)],
            MissingPolicy::IsMatch,
        )
        .unwrap();
        let plan = d.explain(&q).unwrap();
        assert!(plan.parallelism >= 1);
        let seq = d.execute_threads(&q, 1).unwrap();
        for threads in [2, 4, 8] {
            assert_eq!(d.execute_threads(&q, threads).unwrap(), seq, "t={threads}");
        }
        assert_eq!(d.execute(&q).unwrap(), seq);
    }

    #[test]
    fn execute_batch_threads_matches_at_any_degree() {
        let data = census_scaled(200, 412);
        let d = IncompleteDb::new(data.clone());
        let spec = QuerySpec {
            n_queries: 9,
            k: 2,
            global_selectivity: 0.05,
            policy: MissingPolicy::IsNotMatch,
            candidate_attrs: vec![],
        };
        let queries = workload(&data, &spec, 413);
        let sequential: Vec<RowSet> = queries.iter().map(|q| d.execute(q).unwrap()).collect();
        for threads in [1, 2, 8] {
            assert_eq!(
                d.execute_batch_threads(&queries, threads).unwrap(),
                sequential,
                "t={threads}"
            );
        }
    }

    #[test]
    fn sharded_execute_batch_threads_matches_at_any_degree() {
        let data = census_scaled(300, 414);
        let mut d = ShardedDb::new(data.clone(), 64);
        d.insert(&vec![m(); data.n_attrs()]).unwrap();
        d.delete(2);
        let spec = QuerySpec {
            n_queries: 10,
            k: 2,
            global_selectivity: 0.05,
            policy: MissingPolicy::IsMatch,
            candidate_attrs: vec![],
        };
        let queries = workload(&data, &spec, 415);
        let sequential: Vec<RowSet> = queries.iter().map(|q| d.execute(q).unwrap()).collect();
        assert_eq!(d.execute_batch(&queries).unwrap(), sequential);
        for threads in [1, 2, 8] {
            assert_eq!(
                d.execute_batch_threads(&queries, threads).unwrap(),
                sequential,
                "t={threads}"
            );
        }
    }

    #[test]
    fn inserts_are_visible_before_and_after_compaction() {
        let data = Dataset::from_rows(&[("a", 5), ("b", 5)], &[vec![v(1), v(2)], vec![v(3), m()]])
            .unwrap();
        let mut d = IncompleteDb::new(data);
        d.insert(&[v(5), v(5)]).unwrap();
        d.insert(&[m(), v(1)]).unwrap();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.delta_len(), 2);

        let q = RangeQuery::new(vec![Predicate::range(0, 4, 5)], MissingPolicy::IsMatch).unwrap();
        // Row 2 (value 5) and row 3 (missing, match policy).
        assert_eq!(d.execute(&q).unwrap().rows(), &[2, 3]);
        assert_eq!(d.explain(&q).unwrap().delta_rows, 2);

        d.compact();
        assert_eq!(d.delta_len(), 0);
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.execute(&q).unwrap().rows(), &[2, 3]);
        assert_eq!(d.cell(2, 0), v(5));
        assert_eq!(d.cell(3, 0), m());
    }

    #[test]
    fn insert_validates_schema() {
        let mut d = db();
        assert!(d.insert(&[v(1)]).is_err(), "wrong width");
        let card0 = d.base.column(0).cardinality();
        let mut row = vec![m(); d.n_attrs()];
        row[0] = v(card0 + 1);
        assert!(d.insert(&row).is_err(), "out of domain");
        assert_eq!(d.delta_len(), 0, "failed inserts leave no residue");
    }

    #[test]
    fn heavy_insert_then_compact_differential() {
        let data = census_scaled(200, 405);
        let mut d = IncompleteDb::new(data.clone());
        // Append 100 rows sampled (shifted) from the same distribution.
        for i in 0..100usize {
            let src = i % data.n_rows();
            let row: Vec<Cell> = (0..data.n_attrs()).map(|a| data.cell(src, a)).collect();
            d.insert(&row).unwrap();
        }
        let spec = QuerySpec {
            n_queries: 8,
            k: 3,
            global_selectivity: 0.05,
            policy: MissingPolicy::IsNotMatch,
            candidate_attrs: vec![],
        };
        let queries = workload(&data, &spec, 406);
        let before: Vec<RowSet> = queries.iter().map(|q| d.execute(q).unwrap()).collect();
        d.compact();
        let after: Vec<RowSet> = queries.iter().map(|q| d.execute(q).unwrap()).collect();
        assert_eq!(before, after, "compaction must not change answers");
    }

    #[test]
    fn count_matches_execute() {
        let d = db();
        let q = RangeQuery::new(vec![Predicate::point(1, 1)], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(d.count(&q).unwrap(), d.execute(&q).unwrap().len());
    }
}

#[cfg(test)]
mod estimate_tests {
    use super::*;
    use ibis_core::gen::census_scaled;
    use ibis_core::{MissingPolicy, Predicate};

    #[test]
    fn plan_carries_cardinality_estimate() {
        let data = census_scaled(1_000, 410);
        let db = IncompleteDb::new(data.clone());
        // One-attribute estimates are exact.
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsNotMatch).unwrap();
        let plan = db.explain(&q).unwrap();
        let actual = db.execute(&q).unwrap().len() as f64;
        assert!(
            (plan.estimated_rows - actual).abs() < 1e-9,
            "{plan:?} vs {actual}"
        );
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use ibis_core::gen::{census_scaled, workload, QuerySpec};
    use ibis_core::{MissingPolicy, Predicate};

    fn v(x: u16) -> Cell {
        Cell::present(x)
    }
    fn m() -> Cell {
        Cell::MISSING
    }

    fn banded() -> Dataset {
        // Values grow with the row id, so 2-row shards cover disjoint bands.
        let rows: Vec<Vec<Cell>> = (1u16..=8).map(|x| vec![v(x)]).collect();
        Dataset::from_rows(&[("a", 9)], &rows).unwrap()
    }

    #[test]
    fn sharded_matches_monolithic_on_workloads() {
        let data = census_scaled(300, 420);
        let mono = IncompleteDb::new(data.clone());
        for shard_rows in [47, 100, 1000] {
            let sharded = ShardedDb::new(data.clone(), shard_rows);
            for policy in MissingPolicy::ALL {
                let spec = QuerySpec {
                    n_queries: 6,
                    k: 3,
                    global_selectivity: 0.05,
                    policy,
                    candidate_attrs: vec![],
                };
                for q in workload(&data, &spec, 421) {
                    assert_eq!(
                        sharded.execute(&q).unwrap(),
                        mono.execute(&q).unwrap(),
                        "{policy} shard_rows={shard_rows}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_skips_out_of_band_shards() {
        let db = ShardedDb::new(banded(), 2);
        assert_eq!(db.shard_count(), 4);
        let q =
            RangeQuery::new(vec![Predicate::range(0, 3, 4)], MissingPolicy::IsNotMatch).unwrap();
        let exec = db.execute_with_stats(&q).unwrap();
        assert_eq!(exec.rows.rows(), &[2, 3]);
        assert_eq!(exec.shards_pruned, 3);
        assert_eq!(exec.shards_executed(), 1);
    }

    #[test]
    fn is_match_semantics_disable_pruning_on_attrs_with_missing() {
        // One missing value per shard on the queried attribute: under
        // IsMatch no shard may ever be pruned on it, under IsNotMatch the
        // envelope still prunes.
        let rows: Vec<Vec<Cell>> = vec![vec![v(1)], vec![m()], vec![v(8)], vec![m()]];
        let data = Dataset::from_rows(&[("a", 9)], &rows).unwrap();
        let db = ShardedDb::new(data, 2);
        assert_eq!(db.shard_count(), 2);
        let key = vec![Predicate::range(0, 4, 5)]; // misses both envelopes
        let is_match = RangeQuery::new(key.clone(), MissingPolicy::IsMatch).unwrap();
        let exec = db.execute_with_stats(&is_match).unwrap();
        assert_eq!(
            exec.shards_pruned, 0,
            "missing ⇒ never prunable under IsMatch"
        );
        assert_eq!(exec.rows.rows(), &[1, 3]);
        let not_match = RangeQuery::new(key, MissingPolicy::IsNotMatch).unwrap();
        let exec = db.execute_with_stats(&not_match).unwrap();
        assert_eq!(exec.shards_pruned, 2);
        assert!(exec.rows.is_empty());
    }

    #[test]
    fn appends_open_new_shards_and_compaction_is_dirty_only() {
        let mut db = ShardedDb::new(banded(), 2);
        assert_eq!(db.shard_count(), 4);
        db.insert(&[v(9)]).unwrap(); // last shard full → opens shard 5
        assert_eq!(db.shard_count(), 5);
        db.insert(&[v(9)]).unwrap(); // rides in shard 5's delta
        assert_eq!(db.shard_count(), 5);
        assert_eq!(db.n_rows(), 10);
        let q = RangeQuery::new(vec![Predicate::point(0, 9)], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(db.execute(&q).unwrap().rows(), &[8, 9]);
        // Only the one dirty shard rebuilds.
        assert_eq!(db.compact(), 1);
        assert_eq!(db.compact(), 0, "clean db compacts nothing");
        assert_eq!(db.execute(&q).unwrap().rows(), &[8, 9]);
    }

    #[test]
    fn deletes_route_to_the_owning_shard() {
        let mut db = ShardedDb::new(banded(), 3); // shards: [0..3), [3..6), [6..8)
        assert!(db.delete(4));
        assert!(!db.delete(4), "double delete is a no-op");
        assert!(!db.delete(99), "unknown global id");
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 9)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(db.execute(&q).unwrap().rows(), &[0, 1, 2, 3, 5, 6, 7]);
        assert_eq!(db.n_rows(), 7);
        assert_eq!(db.compact(), 1, "only the shard owning row 4 was dirty");
        // Survivors renumbered 0..7, order preserved.
        assert_eq!(db.execute(&q).unwrap().rows(), &[0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn delete_routing_matches_monolithic_at_every_boundary() {
        // Regression test for O(log k) delete routing via the memoized
        // base-offset table: exercise every global id — shard starts, shard
        // ends, delta rows past the last base row, and ids beyond the id
        // space — against a monolithic twin.
        let data = census_scaled(100, 423);
        let mut mono = IncompleteDb::new(data.clone());
        let mut db = ShardedDb::new(data, 7); // 15 shards, last one ragged
        for _ in 0..5 {
            let row = vec![v(1); mono.base.n_attrs()];
            mono.insert(&row).unwrap();
            db.insert(&row).unwrap(); // ids 100..105 live in shard deltas
        }
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 2)], MissingPolicy::IsMatch).unwrap();
        for id in [0u32, 6, 7, 13, 14, 69, 70, 99, 100, 104, 105, 400] {
            assert_eq!(db.delete(id), mono.delete(id), "first delete of {id}");
            assert_eq!(db.delete(id), mono.delete(id), "double delete of {id}");
            assert_eq!(db.n_rows(), mono.n_rows(), "after {id}");
        }
        assert_eq!(db.execute(&q).unwrap(), mono.execute(&q).unwrap());
    }

    #[test]
    fn clones_share_shards_until_mutated() {
        // A `ShardedDb` clone is what snapshot publication hands to readers:
        // it must be O(shards) pointer bumps, and later mutations must
        // copy-on-write only the touched shard.
        let mut db = ShardedDb::new(banded(), 2); // 4 shards
        let snap = db.clone();
        assert!((0..4).all(|i| Arc::ptr_eq(&db.shards[i], &snap.shards[i])));
        assert!(!db.delete(99), "a routing miss must not copy anything");
        assert!((0..4).all(|i| Arc::ptr_eq(&db.shards[i], &snap.shards[i])));
        assert!(db.delete(5)); // shard 2 copies; 0, 1, 3 stay shared
        db.insert(&[v(9)]).unwrap(); // shard 3 is full → opens a fresh shard 4
        assert_eq!(db.shard_count(), 5);
        for (i, shared) in [(0, true), (1, true), (2, false), (3, true)] {
            assert_eq!(Arc::ptr_eq(&db.shards[i], &snap.shards[i]), shared, "{i}");
        }
        // The clone still answers from the pre-mutation state.
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 9)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(snap.execute(&q).unwrap().rows(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(db.execute(&q).unwrap().rows(), &[0, 1, 2, 3, 4, 6, 7, 8]);
        // Compacting the clone's twin leaves clean shards shared.
        let mut twin = snap.clone();
        assert_eq!(twin.compact(), 0, "clean db: no shard rebuilt");
        assert!((0..4).all(|i| Arc::ptr_eq(&twin.shards[i], &snap.shards[i])));
    }

    #[test]
    fn counters_are_thread_degree_independent() {
        let data = census_scaled(240, 422);
        let db = ShardedDb::new(data, 60);
        let q = RangeQuery::new(
            vec![Predicate::range(0, 1, 2), Predicate::range(1, 1, 3)],
            MissingPolicy::IsMatch,
        )
        .unwrap();
        let (rows1, c1) = db.execute_with_cost_threads(&q, 1).unwrap();
        for threads in [2, 8] {
            let (rows, c) = db.execute_with_cost_threads(&q, threads).unwrap();
            assert_eq!(rows, rows1, "t={threads}");
            assert_eq!(c, c1, "t={threads}");
        }
    }

    #[test]
    fn empty_dataset_gets_one_empty_shard() {
        let data = slice_dataset(&banded(), 0, 0);
        let mut db = ShardedDb::new(data, 4);
        assert_eq!(db.shard_count(), 1);
        assert_eq!(db.n_rows(), 0);
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 9)], MissingPolicy::IsMatch).unwrap();
        let exec = db.execute_with_stats(&q).unwrap();
        assert!(exec.rows.is_empty());
        assert_eq!(exec.shards_pruned, 1, "an empty shard is always prunable");
        db.insert(&[v(5)]).unwrap();
        assert_eq!(db.execute(&q).unwrap().rows(), &[0]);
    }

    #[test]
    fn invalid_queries_error_regardless_of_pruning() {
        let db = ShardedDb::new(banded(), 2);
        let over =
            RangeQuery::new(vec![Predicate::range(0, 1, 10)], MissingPolicy::IsMatch).unwrap();
        assert!(db.execute(&over).is_err(), "hi beyond cardinality");
        let out = RangeQuery::new(vec![Predicate::point(7, 1)], MissingPolicy::IsMatch).unwrap();
        assert!(db.execute(&out).is_err(), "attr beyond schema");
    }
}

#[cfg(test)]
mod delete_tests {
    use super::*;
    use ibis_core::{scan, MissingPolicy, Predicate};

    fn v(x: u16) -> Cell {
        Cell::present(x)
    }
    fn m() -> Cell {
        Cell::MISSING
    }

    fn small_db() -> IncompleteDb {
        let data = Dataset::from_rows(
            &[("a", 5)],
            &[vec![v(1)], vec![v(3)], vec![m()], vec![v(3)], vec![v(5)]],
        )
        .unwrap();
        IncompleteDb::new(data)
    }

    #[test]
    fn deletes_hide_rows_immediately() {
        let mut d = small_db();
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(d.execute(&q).unwrap().rows(), &[1, 2, 3]);
        assert!(d.delete(1));
        assert!(!d.delete(1), "double delete is a no-op");
        assert!(!d.delete(99), "unknown row");
        assert_eq!(d.execute(&q).unwrap().rows(), &[2, 3]);
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.deleted_len(), 1);
    }

    #[test]
    fn deletes_apply_to_delta_rows_too() {
        let mut d = small_db();
        d.insert(&[v(3)]).unwrap(); // row id 5
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(d.execute(&q).unwrap().rows(), &[1, 3, 5]);
        assert!(d.delete(5));
        assert_eq!(d.execute(&q).unwrap().rows(), &[1, 3]);
    }

    #[test]
    fn compaction_renumbers_and_preserves_answers() {
        let mut d = small_db();
        d.insert(&[v(2)]).unwrap(); // id 5
        d.delete(0); // value 1
        d.delete(3); // one of the 3s
        let q =
            RangeQuery::new(vec![Predicate::range(0, 1, 5)], MissingPolicy::IsNotMatch).unwrap();
        let live_before = d.count(&q).unwrap();
        d.compact();
        assert_eq!(d.deleted_len(), 0);
        assert_eq!(d.delta_len(), 0);
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.count(&q).unwrap(), live_before);
        // Survivors renumbered 0..4: values 3, ∅, 5, 2 in original order.
        assert_eq!(d.cell(0, 0), v(3));
        assert_eq!(d.cell(1, 0), m());
        assert_eq!(d.cell(2, 0), v(5));
        assert_eq!(d.cell(3, 0), v(2));
        // And the rebuilt index agrees with a scan over the new base.
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(d.execute(&q).unwrap(), scan::execute(&d.base, &q));
    }

    #[test]
    fn delete_everything() {
        let mut d = small_db();
        for r in 0..5 {
            assert!(d.delete(r));
        }
        assert_eq!(d.n_rows(), 0);
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 5)], MissingPolicy::IsMatch).unwrap();
        assert!(d.execute(&q).unwrap().is_empty());
        d.compact();
        assert_eq!(d.n_rows(), 0);
        assert!(d.execute(&q).unwrap().is_empty());
    }
}
