//! [`ConcurrentDb`] — snapshot-isolated concurrent serving.
//!
//! The ownership inversion that makes "readers never block behind
//! writers" true end to end:
//!
//! * **Readers** call [`ConcurrentDb::snapshot`]: one lock-free
//!   [`SnapshotCell::load`] returning an `Arc<DbSnapshot>`. Every query
//!   runs against that frozen shard-set; a reader holding a snapshot is
//!   invisible to writers and vice versa.
//! * **Writers** (`insert`/`delete`/`compact`/`checkpoint`) serialize
//!   behind one internal mutex, apply the mutation to the backend
//!   (in-memory [`ShardedDb`] or durable [`DurableDb`] — WAL first), and
//!   **publish**: shallow-clone the shard-set (copy-on-write `Arc`s, so
//!   this is a pointer bump per shard), stamp it with the bumped
//!   watermark, and atomically swap it into the cell. Compaction rebuilds
//!   shards *inside the writer section* and swaps the rebuilt set in the
//!   same way — in-flight queries keep their pre-compaction snapshot and
//!   never stall.
//!
//! Publish ordering is the whole contract: the WAL append (durable
//! backend) happens before the in-memory apply, the apply happens before
//! the publication swap, and the swap is a `SeqCst` pointer exchange — so
//! a snapshot with watermark `w` contains *exactly* the first `w` logical
//! mutations, never a torn prefix. See `DESIGN.md` §14 and
//! [`epoch`](crate::epoch) for the reclamation proof.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use ibis_core::Cell;

use crate::db::{DbConfig, ShardedDb};
use crate::engine::DurableDb;
use crate::epoch::SnapshotCell;
use crate::snapshot::DbSnapshot;

/// The mutable truth behind the writer lock: either a plain in-memory
/// sharded store or the WAL-backed durable engine.
enum Backend {
    Mem(ShardedDb),
    Durable(DurableDb),
}

impl Backend {
    fn db(&self) -> &ShardedDb {
        match self {
            Backend::Mem(db) => db,
            Backend::Durable(d) => d.db(),
        }
    }
}

/// Writer state: the backend plus the logical mutation clock.
struct Writer {
    backend: Backend,
    watermark: u64,
}

/// A sharded incomplete database served under snapshot isolation:
/// lock-free readers, serialized writers, atomic publication.
///
/// ```
/// use ibis_core::gen::census_scaled;
/// use ibis_core::{MissingPolicy, Predicate, RangeQuery};
/// use ibis_storage::ConcurrentDb;
///
/// let db = ConcurrentDb::new_mem(census_scaled(100, 7), 32);
/// let snap = db.snapshot(); // lock-free acquire
/// let q = RangeQuery::new(vec![Predicate::range(0, 1, 2)], MissingPolicy::IsMatch).unwrap();
/// let before = snap.execute(&q).unwrap();
/// db.delete(3).unwrap(); // writers never invalidate a held snapshot
/// assert_eq!(snap.execute(&q).unwrap(), before);
/// assert!(db.snapshot().watermark() > snap.watermark());
/// ```
pub struct ConcurrentDb {
    writer: Mutex<Writer>,
    published: SnapshotCell<DbSnapshot>,
}

impl ConcurrentDb {
    fn from_backend(backend: Backend) -> ConcurrentDb {
        let first = DbSnapshot::freeze(backend.db(), 0);
        ConcurrentDb {
            writer: Mutex::new(Writer {
                backend,
                watermark: 0,
            }),
            published: SnapshotCell::new(Arc::new(first)),
        }
    }

    /// Serves an in-memory sharded database (no durability).
    pub fn new_mem(dataset: ibis_core::Dataset, shard_rows: usize) -> ConcurrentDb {
        Self::from_sharded(ShardedDb::new(dataset, shard_rows))
    }

    /// Serves an existing [`ShardedDb`] (no durability).
    pub fn from_sharded(db: ShardedDb) -> ConcurrentDb {
        Self::from_backend(Backend::Mem(db))
    }

    /// Creates a durable database at `dir` and serves it. See
    /// [`DurableDb::create`].
    pub fn create_durable(
        dir: &Path,
        dataset: ibis_core::Dataset,
        shard_rows: usize,
        config: DbConfig,
    ) -> io::Result<ConcurrentDb> {
        let d = DurableDb::create(dir, dataset, shard_rows, config)?;
        Ok(Self::from_backend(Backend::Durable(d)))
    }

    /// Opens (= crash-recovers) the durable database at `dir` and serves
    /// it. See [`DurableDb::open`].
    pub fn open_durable(dir: &Path) -> io::Result<ConcurrentDb> {
        let d = DurableDb::open(dir)?;
        Ok(Self::from_backend(Backend::Durable(d)))
    }

    /// Serves an already-open [`DurableDb`].
    pub fn from_durable(db: DurableDb) -> ConcurrentDb {
        Self::from_backend(Backend::Durable(db))
    }

    /// Acquires the currently-published snapshot. Lock-free: one atomic
    /// pointer load under an epoch pin — never blocks, regardless of any
    /// concurrent insert, delete, compaction, or checkpoint.
    pub fn snapshot(&self) -> Arc<DbSnapshot> {
        self.published.load()
    }

    /// Whether mutations are WAL-backed.
    pub fn is_durable(&self) -> bool {
        matches!(self.lock_writer().backend, Backend::Durable(_))
    }

    fn lock_writer(&self) -> MutexGuard<'_, Writer> {
        // A poisoned lock means a writer panicked mid-mutation; the
        // backend may hold a half-applied state, so serving must stop.
        self.writer.lock().expect("writer panicked mid-mutation")
    }

    /// Publishes `w`'s current state at its current watermark.
    fn publish(&self, w: &Writer) {
        self.published
            .store(Arc::new(DbSnapshot::freeze(w.backend.db(), w.watermark)));
    }

    /// Appends one row (durably when WAL-backed) and publishes the new
    /// snapshot. Readers holding older snapshots are unaffected.
    pub fn insert(&self, row: &[Cell]) -> io::Result<()> {
        let mut w = self.lock_writer();
        match &mut w.backend {
            Backend::Mem(db) => db
                .insert(row)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?,
            Backend::Durable(d) => d.insert(row)?,
        }
        w.watermark += 1;
        self.publish(&w);
        Ok(())
    }

    /// Tombstones a global row id; returns whether the row was alive.
    /// Counts as one logical mutation (and publishes) even on a miss, so
    /// the watermark tracks the *attempted* history deterministically.
    pub fn delete(&self, row: u32) -> io::Result<bool> {
        let mut w = self.lock_writer();
        let hit = match &mut w.backend {
            Backend::Mem(db) => db.delete(row),
            Backend::Durable(d) => d.delete(row)?,
        };
        w.watermark += 1;
        self.publish(&w);
        Ok(hit)
    }

    /// Folds deltas and tombstones into rebuilt shards, then swaps the
    /// rebuilt shard-set in atomically. In-flight queries finish on their
    /// pre-compaction snapshot; the next [`snapshot`](Self::snapshot)
    /// acquire sees the compacted one. Returns shards rebuilt.
    pub fn compact(&self) -> io::Result<usize> {
        let mut w = self.lock_writer();
        let rebuilt = match &mut w.backend {
            Backend::Mem(db) => db.compact(),
            Backend::Durable(d) => d.compact()?,
        };
        w.watermark += 1;
        self.publish(&w);
        Ok(rebuilt)
    }

    /// Rolls the WAL into a fresh on-disk snapshot (durable backend only;
    /// a no-op for in-memory serving). Not a logical mutation: the
    /// watermark does not advance and no new snapshot is published —
    /// checkpointing changes how the state is stored, not what it is.
    pub fn checkpoint(&self) -> io::Result<()> {
        let mut w = self.lock_writer();
        match &mut w.backend {
            Backend::Mem(_) => Ok(()),
            Backend::Durable(d) => d.checkpoint(),
        }
    }

    /// Runs `f` against the durable engine's read API (generation, WAL
    /// bytes, backup) under the writer lock. `None` for in-memory serving.
    pub fn with_durable<R>(&self, f: impl FnOnce(&DurableDb) -> R) -> Option<R> {
        match &self.lock_writer().backend {
            Backend::Mem(_) => None,
            Backend::Durable(d) => Some(f(d)),
        }
    }
}

impl std::fmt::Debug for ConcurrentDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ConcurrentDb")
            .field("watermark", &snap.watermark())
            .field("n_rows", &snap.n_rows())
            .field("shards", &snap.shard_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::gen::census_scaled;
    use ibis_core::{MissingPolicy, Predicate, RangeQuery};

    fn q() -> RangeQuery {
        RangeQuery::new(vec![Predicate::range(0, 1, 2)], MissingPolicy::IsMatch).unwrap()
    }

    #[test]
    fn snapshots_are_isolated_from_writes() {
        let db = ConcurrentDb::new_mem(census_scaled(120, 9), 32);
        let s0 = db.snapshot();
        assert_eq!(s0.watermark(), 0);
        let before = s0.execute(&q()).unwrap();
        let row = vec![Cell::present(1); s0.n_attrs()];
        db.insert(&row).unwrap();
        assert!(db.delete(0).unwrap());
        assert!(!db.delete(9999).unwrap(), "miss still ticks the clock");
        assert!(db.compact().unwrap() >= 1);
        // The old snapshot is untouched; the new one reflects all 4 ops.
        assert_eq!(s0.execute(&q()).unwrap(), before);
        let s4 = db.snapshot();
        assert_eq!(s4.watermark(), 4);
        assert_eq!(s4.n_rows(), 120); // +1 insert, −1 delete
                                      // A snapshot taken *after* compaction is itself frozen: a further
                                      // delete is invisible to it.
        assert!(db.delete(5).unwrap());
        assert_eq!(s4.n_rows(), 120);
        assert_eq!(db.snapshot().n_rows(), 119);
        assert_eq!(db.snapshot().watermark(), 5);
    }

    #[test]
    fn watermarks_are_monotonic_per_thread() {
        let db = Arc::new(ConcurrentDb::new_mem(census_scaled(40, 11), 16));
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..200u32 {
                    db.delete(i % 40).unwrap();
                }
            })
        };
        let mut last = 0;
        while last < 200 {
            let w = db.snapshot().watermark();
            assert!(w >= last, "watermark went backwards: {w} < {last}");
            last = last.max(w);
        }
        writer.join().unwrap();
        assert_eq!(db.snapshot().watermark(), 200);
    }

    #[test]
    fn durable_backend_serves_and_recovers() {
        let dir = std::env::temp_dir().join(format!("ibis-conc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        {
            let db = ConcurrentDb::create_durable(&dir, census_scaled(60, 13), 16, DbConfig::all())
                .unwrap();
            assert!(db.is_durable());
            let row = vec![Cell::present(1); db.snapshot().n_attrs()];
            db.insert(&row).unwrap();
            db.delete(1).unwrap();
            db.checkpoint().unwrap();
            assert_eq!(
                db.snapshot().watermark(),
                2,
                "checkpoint is not a logical mutation"
            );
        }
        let db = ConcurrentDb::open_durable(&dir).unwrap();
        assert_eq!(db.snapshot().n_rows(), 60);
        assert!(db.with_durable(|d| d.generation()).unwrap() >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
