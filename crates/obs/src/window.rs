//! Rolling time-bucketed metric rings: the live-telemetry complement to
//! the cumulative registry.
//!
//! A window is a fixed ring of `capacity` buckets, each covering
//! `bucket_ms` milliseconds of wall time. Bucket *index* `i` covers the
//! absolute time range `[i * bucket_ms, (i + 1) * bucket_ms)`; a sample
//! recorded at time `t` lands in bucket `t / bucket_ms`, stored at ring
//! slot `index % capacity`. Writing into a slot that still holds an older
//! bucket index evicts it — that is the entire decay story, which makes it
//! **merge-consistent**: because decay only ever drops *whole buckets by
//! index*, and [`WindowedHistogram::merge`] combines rings bucket-index by
//! bucket-index (newer index wins a slot), merging two rings and then
//! reading the live window equals recording both sample streams —
//! interleaved in time order — into a single ring. The same property the
//! flat [`Histogram`] proves for its `merge` extends to the windowed form.
//!
//! Time is always passed in explicitly (`now_ms`) so the rings are
//! deterministic under test; the process-global entry points in the crate
//! root ([`crate::window_observe`], [`crate::window_counter_add`]) feed
//! them milliseconds since the recording epoch.

use crate::hist::Histogram;
use crate::snapshot::HistogramSnapshot;

/// Default bucket width for process-global windows: 1 second.
pub const DEFAULT_BUCKET_MS: u64 = 1_000;
/// Default ring capacity for process-global windows: ~64 s of history.
pub const DEFAULT_CAPACITY: usize = 64;

/// One ring slot: the absolute bucket index it currently holds, or empty.
#[derive(Debug, Clone)]
struct Slot<T> {
    index: u64,
    value: T,
    live: bool,
}

impl<T: Default> Default for Slot<T> {
    fn default() -> Self {
        Slot {
            index: 0,
            value: T::default(),
            live: false,
        }
    }
}

/// A rolling ring of [`Histogram`]s, one per time bucket.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    bucket_ms: u64,
    slots: Vec<Slot<Histogram>>,
}

/// A rolling ring of counters, one sum per time bucket.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    bucket_ms: u64,
    slots: Vec<Slot<u64>>,
}

/// Shared ring arithmetic: which bucket a timestamp falls in, and which
/// bucket indexes are still inside the live window at a given `now`.
fn bucket_index(now_ms: u64, bucket_ms: u64) -> u64 {
    now_ms / bucket_ms
}

/// Oldest bucket index still live at `now_ms` for a ring of `capacity`.
fn oldest_live(now_ms: u64, bucket_ms: u64, capacity: usize) -> u64 {
    bucket_index(now_ms, bucket_ms).saturating_sub(capacity as u64 - 1)
}

impl WindowedHistogram {
    /// An empty ring of `capacity` buckets of `bucket_ms` each (both are
    /// clamped to at least 1).
    pub fn new(bucket_ms: u64, capacity: usize) -> WindowedHistogram {
        WindowedHistogram {
            bucket_ms: bucket_ms.max(1),
            slots: vec![Slot::default(); capacity.max(1)],
        }
    }

    /// A ring with the process-global defaults (1 s × 64 buckets).
    pub fn with_defaults() -> WindowedHistogram {
        WindowedHistogram::new(DEFAULT_BUCKET_MS, DEFAULT_CAPACITY)
    }

    /// Bucket width in milliseconds.
    pub fn bucket_ms(&self) -> u64 {
        self.bucket_ms
    }

    /// Ring capacity in buckets.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one sample observed at `now_ms`. A slot still holding an
    /// older bucket is reset first (whole-bucket decay); a sample older
    /// than the slot's current bucket is dropped rather than polluting a
    /// newer bucket.
    pub fn record_at(&mut self, now_ms: u64, value: u64) {
        let index = bucket_index(now_ms, self.bucket_ms);
        let cap = self.slots.len();
        let slot = &mut self.slots[(index % cap as u64) as usize];
        if !slot.live || slot.index < index {
            slot.index = index;
            slot.value = Histogram::new();
            slot.live = true;
        } else if slot.index > index {
            return; // stale sample: its bucket was already evicted
        }
        slot.value.record(value);
    }

    /// Fold `other` into this ring (same `bucket_ms` and capacity
    /// required; mismatched shapes are merged best-effort by bucket
    /// index). Equal bucket indexes merge their histograms; a newer index
    /// evicts an older one, exactly as live recording would.
    pub fn merge(&mut self, other: &WindowedHistogram) {
        let cap = self.slots.len();
        for o in other.slots.iter().filter(|s| s.live) {
            let slot = &mut self.slots[(o.index % cap as u64) as usize];
            if !slot.live || slot.index < o.index {
                slot.index = o.index;
                slot.value = o.value.clone();
                slot.live = true;
            } else if slot.index == o.index {
                slot.value.merge(&o.value);
            }
        }
    }

    /// Freeze the buckets still live at `now_ms` into a serializable
    /// snapshot (ascending bucket index; empty histograms are kept out).
    pub fn snapshot_at(&self, now_ms: u64) -> WindowSnapshot {
        let oldest = oldest_live(now_ms, self.bucket_ms, self.slots.len());
        let mut buckets: Vec<(u64, HistogramSnapshot)> = self
            .slots
            .iter()
            .filter(|s| s.live && s.index >= oldest && s.value.count() > 0)
            .map(|s| (s.index, s.value.snapshot()))
            .collect();
        buckets.sort_by_key(|&(i, _)| i);
        WindowSnapshot {
            bucket_ms: self.bucket_ms,
            capacity: self.slots.len() as u32,
            buckets,
        }
    }
}

impl WindowedCounter {
    /// An empty ring of `capacity` buckets of `bucket_ms` each.
    pub fn new(bucket_ms: u64, capacity: usize) -> WindowedCounter {
        WindowedCounter {
            bucket_ms: bucket_ms.max(1),
            slots: vec![Slot::default(); capacity.max(1)],
        }
    }

    /// A ring with the process-global defaults (1 s × 64 buckets).
    pub fn with_defaults() -> WindowedCounter {
        WindowedCounter::new(DEFAULT_BUCKET_MS, DEFAULT_CAPACITY)
    }

    /// Add `delta` to the bucket covering `now_ms` (same decay rules as
    /// [`WindowedHistogram::record_at`]).
    pub fn add_at(&mut self, now_ms: u64, delta: u64) {
        let index = bucket_index(now_ms, self.bucket_ms);
        let cap = self.slots.len();
        let slot = &mut self.slots[(index % cap as u64) as usize];
        if !slot.live || slot.index < index {
            slot.index = index;
            slot.value = 0;
            slot.live = true;
        } else if slot.index > index {
            return;
        }
        slot.value = slot.value.saturating_add(delta);
    }

    /// Fold `other` into this ring by bucket index (newer evicts older,
    /// equal indexes sum) — see [`WindowedHistogram::merge`].
    pub fn merge(&mut self, other: &WindowedCounter) {
        let cap = self.slots.len();
        for o in other.slots.iter().filter(|s| s.live) {
            let slot = &mut self.slots[(o.index % cap as u64) as usize];
            if !slot.live || slot.index < o.index {
                *slot = o.clone();
            } else if slot.index == o.index {
                slot.value = slot.value.saturating_add(o.value);
            }
        }
    }

    /// Freeze the buckets still live at `now_ms` (ascending bucket index,
    /// zero buckets kept out).
    pub fn snapshot_at(&self, now_ms: u64) -> WindowCounterSnapshot {
        let oldest = oldest_live(now_ms, self.bucket_ms, self.slots.len());
        let mut buckets: Vec<(u64, u64)> = self
            .slots
            .iter()
            .filter(|s| s.live && s.index >= oldest && s.value > 0)
            .map(|s| (s.index, s.value))
            .collect();
        buckets.sort_by_key(|&(i, _)| i);
        WindowCounterSnapshot {
            bucket_ms: self.bucket_ms,
            capacity: self.slots.len() as u32,
            buckets,
        }
    }
}

/// Frozen form of a [`WindowedHistogram`]: the live buckets at snapshot
/// time, each an ordinary [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Bucket width in milliseconds.
    pub bucket_ms: u64,
    /// Ring capacity (buckets) of the source window.
    pub capacity: u32,
    /// `(bucket index, histogram)` for every live non-empty bucket,
    /// ascending by index. Bucket `i` covers absolute time
    /// `[i * bucket_ms, (i + 1) * bucket_ms)`.
    pub buckets: Vec<(u64, HistogramSnapshot)>,
}

impl WindowSnapshot {
    /// Merge every retained bucket into one flat histogram — "the last
    /// `capacity × bucket_ms` milliseconds" as a single distribution.
    pub fn merged(&self) -> HistogramSnapshot {
        merge_hist_snapshots(self.buckets.iter().map(|(_, h)| h))
    }

    /// Total samples across the retained buckets.
    pub fn total_count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, (_, h)| acc.saturating_add(h.count))
    }

    /// Wall-clock span actually covered by the retained buckets, in
    /// milliseconds (0 when empty; used to turn counts into rates).
    pub fn covered_ms(&self) -> u64 {
        match (self.buckets.first(), self.buckets.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => (hi - lo + 1).saturating_mul(self.bucket_ms),
            _ => 0,
        }
    }

    pub(crate) fn is_valid(&self) -> bool {
        let mut prev = None;
        self.bucket_ms > 0
            && self.capacity > 0
            && self.buckets.len() <= self.capacity as usize
            && self.buckets.iter().all(|(i, h)| {
                let ok = prev.is_none_or(|p| *i > p) && h.count > 0 && h.is_valid();
                prev = Some(*i);
                ok
            })
    }
}

/// Frozen form of a [`WindowedCounter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowCounterSnapshot {
    /// Bucket width in milliseconds.
    pub bucket_ms: u64,
    /// Ring capacity (buckets) of the source window.
    pub capacity: u32,
    /// `(bucket index, sum)` for every live non-zero bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl WindowCounterSnapshot {
    /// Sum across the retained buckets.
    pub fn total(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, (_, v)| acc.saturating_add(*v))
    }

    /// Average events per second over the covered span (0 when empty).
    pub fn rate_per_sec(&self) -> f64 {
        let ms = match (self.buckets.first(), self.buckets.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => (hi - lo + 1).saturating_mul(self.bucket_ms),
            _ => return 0.0,
        };
        self.total() as f64 / (ms as f64 / 1e3)
    }

    pub(crate) fn is_valid(&self) -> bool {
        let mut prev = None;
        self.bucket_ms > 0
            && self.capacity > 0
            && self.buckets.len() <= self.capacity as usize
            && self.buckets.iter().all(|(i, v)| {
                let ok = prev.is_none_or(|p| *i > p) && *v > 0;
                prev = Some(*i);
                ok
            })
    }
}

/// Merge any number of [`HistogramSnapshot`]s into one (sparse-bucket
/// union; exact min/max/sum/count combine like [`Histogram::merge`]).
pub fn merge_hist_snapshots<'a>(
    parts: impl IntoIterator<Item = &'a HistogramSnapshot>,
) -> HistogramSnapshot {
    let mut counts: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    let mut out = HistogramSnapshot {
        count: 0,
        min: u64::MAX,
        max: 0,
        sum: 0,
        buckets: Vec::new(),
    };
    let mut any = false;
    for h in parts {
        if h.count == 0 {
            continue;
        }
        any = true;
        out.count = out.count.saturating_add(h.count);
        out.min = out.min.min(h.min);
        out.max = out.max.max(h.max);
        out.sum = out.sum.saturating_add(h.sum);
        for &(b, c) in &h.buckets {
            let e = counts.entry(b).or_insert(0);
            *e = e.saturating_add(c);
        }
    }
    if !any {
        out.min = 0;
    }
    out.buckets = counts.into_iter().collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_time_buckets_and_decay_whole_buckets() {
        let mut w = WindowedHistogram::new(100, 4);
        w.record_at(0, 1); // bucket 0
        w.record_at(150, 2); // bucket 1
        w.record_at(350, 3); // bucket 3
        let snap = w.snapshot_at(350);
        assert_eq!(
            snap.buckets.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        assert_eq!(snap.total_count(), 3);
        // Advancing 4 buckets evicts bucket 0 from the *view*…
        let snap = w.snapshot_at(420);
        assert_eq!(
            snap.buckets.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![1, 3, 4].into_iter().take(2).collect::<Vec<_>>()
        );
        // …and recording into bucket 4 evicts it from the *ring* (same slot).
        w.record_at(420, 9);
        let snap = w.snapshot_at(420);
        assert_eq!(
            snap.buckets.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
        assert_eq!(snap.merged().max, 9);
    }

    #[test]
    fn stale_samples_are_dropped_not_misfiled() {
        let mut w = WindowedCounter::new(10, 2);
        w.add_at(100, 5); // bucket 10
        w.add_at(5, 99); // bucket 0: slot already holds bucket 10 → dropped
        assert_eq!(w.snapshot_at(100).total(), 5);
    }

    #[test]
    fn merge_equals_interleaved_single_stream() {
        // Two streams recorded into separate rings, versus both recorded
        // (time-ordered) into one ring: identical snapshots at every probe.
        let samples_a = [(0u64, 10u64), (120, 11), (450, 12), (451, 13)];
        let samples_b = [(5u64, 20u64), (250, 21), (455, 22)];
        let mut a = WindowedHistogram::new(100, 4);
        let mut b = WindowedHistogram::new(100, 4);
        let mut one = WindowedHistogram::new(100, 4);
        let mut all: Vec<(u64, u64)> = samples_a.iter().chain(&samples_b).copied().collect();
        all.sort();
        for &(t, v) in &all {
            one.record_at(t, v);
        }
        for &(t, v) in &samples_a {
            a.record_at(t, v);
        }
        for &(t, v) in &samples_b {
            b.record_at(t, v);
        }
        a.merge(&b);
        for probe in [460, 700, 1000] {
            assert_eq!(a.snapshot_at(probe), one.snapshot_at(probe), "at {probe}");
        }
    }

    #[test]
    fn counter_rates_cover_the_observed_span() {
        let mut c = WindowedCounter::new(1000, 8);
        c.add_at(0, 10);
        c.add_at(2500, 20);
        let s = c.snapshot_at(2500);
        assert_eq!(s.total(), 30);
        // Buckets 0..=2 → 3 s of coverage → 10 events/s.
        assert!(
            (s.rate_per_sec() - 10.0).abs() < 1e-9,
            "{}",
            s.rate_per_sec()
        );
    }

    #[test]
    fn merged_histogram_matches_flat_recording() {
        let mut w = WindowedHistogram::new(50, 8);
        let mut flat = Histogram::new();
        for (i, v) in (1..=200u64).enumerate() {
            w.record_at(i as u64, v); // all within the live window
            flat.record(v);
        }
        let merged = w.snapshot_at(200);
        assert_eq!(merged.merged(), flat.snapshot());
    }
}
