//! Prometheus text exposition (format version 0.0.4) for [`Snapshot`],
//! plus a small validator used by tests and CI to reject malformed export.
//!
//! Mapping:
//! * counters → `# TYPE ibis_<name> counter` with the cumulative value;
//! * gauges → `gauge`;
//! * cumulative histograms → `histogram` with cumulative `_bucket{le=…}`
//!   series derived from the log-linear bucket uppers, plus `_sum`/`_count`;
//! * windowed histograms → the live window merged into one distribution,
//!   exported as a histogram under `<name>_win`;
//! * windowed counters → `gauge` under `<name>_win_total` (the rolling
//!   total resets as buckets decay, so a Prometheus `counter` contract —
//!   monotone nondecreasing — would be a lie).
//!
//! Metric names are sanitized to `[a-zA-Z0-9_:]` and prefixed `ibis_`, so
//! `server.exec_us` exports as `ibis_server_exec_us`.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::hist::bucket_upper;
use crate::snapshot::{HistogramSnapshot, Snapshot};

/// `server.exec_us` → `ibis_server_exec_us`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(5 + name.len());
    out.push_str("ibis_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_f64(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn push_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for &(bucket, count) in &h.buckets {
        cum = cum.saturating_add(count);
        let upper = bucket_upper(bucket as usize);
        if upper == u64::MAX {
            // The top log-linear bucket is the +Inf bucket.
            continue;
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render `snap`'s metrics (spans are not representable) in Prometheus
/// text exposition format. Deterministic: maps are already sorted.
pub(crate) fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snap.counters {
        let name = prom_name(k);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (k, v) in &snap.gauges {
        let name = prom_name(k);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = write!(out, "{name} ");
        push_f64(&mut out, *v);
        out.push('\n');
    }
    for (k, h) in &snap.histograms {
        push_histogram(&mut out, &prom_name(k), h);
    }
    for (k, w) in &snap.windows {
        push_histogram(&mut out, &format!("{}_win", prom_name(k)), &w.merged());
    }
    for (k, w) in &snap.window_counters {
        let name = format!("{}_win_total", prom_name(k));
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", w.total());
    }
    out
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validate a Prometheus text-format document: line grammar, `# TYPE`
/// declarations preceding their samples, numeric sample values, cumulative
/// (nondecreasing) histogram buckets ending in `+Inf`, and
/// `+Inf == _count` for every histogram. Returns the first problem found.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    // name → declared type
    let mut types: HashMap<String, &str> = HashMap::new();
    // histogram name → (last cumulative bucket, saw +Inf, inf value, count value)
    struct HistState {
        last_cum: f64,
        inf: Option<f64>,
        count: Option<f64>,
    }
    let mut hists: HashMap<String, HistState> = HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(ty), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!("line {n}: malformed TYPE line"));
                };
                if !valid_name(name) {
                    return Err(format!("line {n}: invalid metric name {name:?}"));
                }
                let ty = match ty {
                    "counter" => "counter",
                    "gauge" => "gauge",
                    "histogram" => "histogram",
                    "summary" => "summary",
                    "untyped" => "untyped",
                    _ => return Err(format!("line {n}: unknown metric type {ty:?}")),
                };
                if types.insert(name.to_string(), ty).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for {name:?}"));
                }
                if ty == "histogram" {
                    hists.insert(
                        name.to_string(),
                        HistState {
                            last_cum: 0.0,
                            inf: None,
                            count: None,
                        },
                    );
                }
            }
            // "# HELP" and plain comments are fine.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let (series, rest) = match line.find(['{', ' ']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close = line[i..]
                    .find('}')
                    .map(|j| i + j)
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (&line[..close + 1], line[close + 1..].trim_start())
            }
            Some(i) => (&line[..i], line[i..].trim_start()),
            None => return Err(format!("line {n}: sample without a value")),
        };
        let (name, labels) = match series.find('{') {
            Some(i) => (&series[..i], Some(&series[i + 1..series.len() - 1])),
            None => (series, None),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        let mut fields = rest.split_whitespace();
        let Some(value) = fields.next() else {
            return Err(format!("line {n}: sample without a value"));
        };
        if fields.clone().count() > 1 {
            return Err(format!("line {n}: trailing tokens after sample"));
        }
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| format!("line {n}: bad sample value {v:?}"))?,
        };

        // Match the sample to its family: exact name, or histogram series.
        let family = if types.contains_key(name) {
            name.to_string()
        } else {
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"));
            match base {
                Some(b) if types.get(b).copied() == Some("histogram") => b.to_string(),
                _ => return Err(format!("line {n}: sample {name:?} has no TYPE declaration")),
            }
        };

        if types.get(&family).copied() == Some("histogram") {
            let st = hists
                .get_mut(&family)
                .ok_or_else(|| format!("line {n}: internal: lost histogram {family:?}"))?;
            if name.ends_with("_bucket") {
                let labels = labels.ok_or_else(|| format!("line {n}: _bucket without le label"))?;
                let le = labels
                    .split(',')
                    .find_map(|l| l.trim().strip_prefix("le="))
                    .ok_or_else(|| format!("line {n}: _bucket without le label"))?
                    .trim_matches('"');
                if value < st.last_cum {
                    return Err(format!(
                        "line {n}: histogram {family:?} buckets not cumulative"
                    ));
                }
                st.last_cum = value;
                if le == "+Inf" {
                    if st.inf.is_some() {
                        return Err(format!("line {n}: duplicate +Inf bucket for {family:?}"));
                    }
                    st.inf = Some(value);
                } else if le.parse::<f64>().is_err() {
                    return Err(format!("line {n}: bad le value {le:?}"));
                } else if st.inf.is_some() {
                    return Err(format!("line {n}: bucket after +Inf for {family:?}"));
                }
            } else if name.ends_with("_count") {
                st.count = Some(value);
            }
        } else if value.is_nan() {
            return Err(format!("line {n}: NaN sample for {name:?}"));
        }
    }

    for (name, st) in &hists {
        let Some(inf) = st.inf else {
            return Err(format!("histogram {name:?}: missing +Inf bucket"));
        };
        let Some(count) = st.count else {
            return Err(format!("histogram {name:?}: missing _count"));
        };
        if inf != count {
            return Err(format!(
                "histogram {name:?}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, WindowedCounter, WindowedHistogram};

    fn sample() -> Snapshot {
        let mut h = Histogram::new();
        for v in [1u64, 9, 1000] {
            h.record(v);
        }
        let mut w = WindowedHistogram::new(100, 4);
        w.record_at(0, 5);
        w.record_at(150, 50);
        let mut wc = WindowedCounter::new(100, 4);
        wc.add_at(10, 7);
        Snapshot {
            counters: [("server.requests".to_string(), 42)].into(),
            gauges: [("server.queue_depth".to_string(), 3.5)].into(),
            histograms: [("server.exec_us".to_string(), h.snapshot())].into(),
            windows: [("server.exec_us".to_string(), w.snapshot_at(150))].into(),
            window_counters: [("server.admitted".to_string(), wc.snapshot_at(150))].into(),
            ..Snapshot::default()
        }
    }

    #[test]
    fn export_is_valid_and_contains_all_families() {
        let text = sample().to_prometheus();
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(
            text.contains("# TYPE ibis_server_requests counter"),
            "{text}"
        );
        assert!(text.contains("ibis_server_requests 42"), "{text}");
        assert!(
            text.contains("# TYPE ibis_server_queue_depth gauge"),
            "{text}"
        );
        assert!(text.contains("ibis_server_queue_depth 3.5"), "{text}");
        assert!(
            text.contains("# TYPE ibis_server_exec_us histogram"),
            "{text}"
        );
        assert!(
            text.contains("ibis_server_exec_us_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("ibis_server_exec_us_sum 1010"), "{text}");
        assert!(
            text.contains("# TYPE ibis_server_exec_us_win histogram"),
            "{text}"
        );
        assert!(text.contains("ibis_server_admitted_win_total 7"), "{text}");
    }

    #[test]
    fn empty_snapshot_exports_empty_and_valid() {
        let text = Snapshot::default().to_prometheus();
        assert!(text.is_empty());
        validate_prometheus(&text).unwrap();
    }

    #[test]
    fn saturated_histogram_still_exports_valid_text() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(3);
        let snap = Snapshot {
            histograms: [("big".to_string(), h.snapshot())].into(),
            ..Snapshot::default()
        };
        let text = snap.to_prometheus();
        validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        // The u64::MAX sample lives in the +Inf bucket, not an le="MAX" one.
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX)), "{text}");
        assert!(text.contains("ibis_big_bucket{le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (bad, why) in [
            ("ibis_x 1\n", "sample without TYPE"),
            ("# TYPE ibis_x counter\nibis_x\n", "missing value"),
            ("# TYPE ibis_x counter\nibis_x one\n", "non-numeric value"),
            ("# TYPE ibis_x wat\n", "unknown type"),
            ("# TYPE ibis_x counter\n# TYPE ibis_x counter\n", "dup TYPE"),
            ("# TYPE 9x counter\n9x 1\n", "bad name"),
            (
                "# TYPE ibis_h histogram\nibis_h_bucket{le=\"1\"} 2\nibis_h_bucket{le=\"+Inf\"} 1\nibis_h_sum 1\nibis_h_count 1\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE ibis_h histogram\nibis_h_bucket{le=\"+Inf\"} 2\nibis_h_sum 1\nibis_h_count 1\n",
                "+Inf != count",
            ),
            (
                "# TYPE ibis_h histogram\nibis_h_sum 1\nibis_h_count 1\n",
                "missing +Inf",
            ),
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted ({why}): {bad}");
        }
    }

    #[test]
    fn validator_accepts_help_comments_and_timestamps() {
        let ok = "# HELP ibis_x something\n# TYPE ibis_x gauge\nibis_x 1.5 1700000000\n";
        validate_prometheus(ok).unwrap();
    }
}
