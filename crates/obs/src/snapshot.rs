//! Immutable snapshots of a recording: span records, metric values, and
//! their human (`Display`) and JSON representations.

use std::collections::BTreeMap;
use std::fmt;

use crate::hist::{bucket_upper, NUM_BUCKETS};
use crate::window::{WindowCounterSnapshot, WindowSnapshot};

/// One finished span as captured by [`crate::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the parent span, 0 for roots.
    pub parent: u64,
    /// Static name the span was opened with, e.g. `"bitmap.fetch"`.
    pub name: String,
    /// Small dense id of the thread that recorded the span.
    pub thread: u64,
    /// Start time in nanoseconds since the process recording epoch.
    pub start_ns: u64,
    /// Monotonic wall time the span was open for.
    pub elapsed_ns: u64,
    /// Named values attached via [`crate::SpanGuard::add_field`], in
    /// insertion order (duplicate names accumulate).
    pub fields: Vec<(String, u64)>,
}

/// Frozen form of a [`crate::Histogram`]: exact count/min/max/sum plus the
/// sparse non-empty log-linear buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`, within 12.5% relative error and
    /// clamped to the exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bucket, count) in &self.buckets {
            seen = seen.saturating_add(count);
            if seen >= target {
                return bucket_upper(bucket as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub(crate) fn is_valid(&self) -> bool {
        let mut prev = None;
        let mut total = 0u64;
        for &(b, c) in &self.buckets {
            if (b as usize) >= NUM_BUCKETS || c == 0 || prev.is_some_and(|p| b <= p) {
                return false;
            }
            total = total.saturating_add(c);
            prev = Some(b);
        }
        total == self.count
    }
}

/// Aggregate of every span sharing one name: how often the phase ran, total
/// time inside it, and the sums of its fields. Produced by
/// [`Snapshot::phase_totals`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Span name, e.g. `"bitmap.and_reduce"`.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed inclusive elapsed nanoseconds.
    pub total_ns: u64,
    /// Field sums across all spans of the phase.
    pub fields: BTreeMap<String, u64>,
}

/// Everything the recorder held at the moment [`crate::snapshot`] was
/// called. Comparable (`PartialEq`), renderable (`Display`), and
/// round-trippable through [`Snapshot::to_json`] / [`Snapshot::from_json`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Finished spans ordered by start time.
    pub spans: Vec<SpanRecord>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (always finite).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Rolling windowed histograms by name (live buckets only).
    pub windows: BTreeMap<String, WindowSnapshot>,
    /// Rolling windowed counters by name (live buckets only).
    pub window_counters: BTreeMap<String, WindowCounterSnapshot>,
}

impl Snapshot {
    /// Ids of spans without a recorded parent, in start order.
    pub fn roots(&self) -> Vec<u64> {
        let have: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        self.spans
            .iter()
            .filter(|s| s.parent == 0 || !have.contains(&s.parent))
            .map(|s| s.id)
            .collect()
    }

    /// The span with the given id, if present.
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Restrict to the spans reachable from `root` (metrics are kept).
    /// Useful to isolate one query's trace out of a shared recording.
    pub fn subtree(&self, root: u64) -> Snapshot {
        let mut keep: std::collections::HashSet<u64> = std::collections::HashSet::new();
        keep.insert(root);
        // Spans are start-ordered, so parents generally precede children;
        // loop until closure to be safe about cross-thread timing skew.
        loop {
            let before = keep.len();
            for s in &self.spans {
                if keep.contains(&s.parent) {
                    keep.insert(s.id);
                }
            }
            if keep.len() == before {
                break;
            }
        }
        Snapshot {
            spans: self
                .spans
                .iter()
                .filter(|s| keep.contains(&s.id))
                .cloned()
                .collect(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            windows: self.windows.clone(),
            window_counters: self.window_counters.clone(),
        }
    }

    fn children_of(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// Render the tree under `root` with inclusive and exclusive times.
    /// Exclusive ("self") time is the span's elapsed time minus its
    /// children's; for cross-thread fan-out children overlap in wall time,
    /// so self time is clamped at zero.
    pub fn render_tree(&self, root: u64) -> String {
        let mut out = String::new();
        if let Some(s) = self.span(root) {
            self.render_node(&mut out, s, "", "", true);
        }
        out
    }

    fn render_node(
        &self,
        out: &mut String,
        s: &SpanRecord,
        lead: &str,
        child_lead: &str,
        _last: bool,
    ) {
        let kids = self.children_of(s.id);
        let kid_ns: u64 = kids.iter().map(|k| k.elapsed_ns).sum();
        let exclusive = s.elapsed_ns.saturating_sub(kid_ns);
        // Pad prefix + name together so the time columns stay aligned at
        // every depth (format width counts chars, so the box-drawing lead
        // contributes its visible width).
        let label = format!("{lead}{}", s.name);
        let mut line = format!(
            "{label:<28} {:>10}  (self {:>10})  [t{}]",
            fmt_ns(s.elapsed_ns),
            fmt_ns(exclusive),
            s.thread,
        );
        if !s.fields.is_empty() {
            let fields: Vec<String> = s.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            line.push_str(&format!("  {{{}}}", fields.join(" ")));
        }
        line.push('\n');
        out.push_str(&line);
        let n = kids.len();
        for (i, k) in kids.into_iter().enumerate() {
            let last = i + 1 == n;
            let (tee, bar) = if last {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            self.render_node(
                out,
                k,
                &format!("{child_lead}{tee}"),
                &format!("{child_lead}{bar}"),
                last,
            );
        }
    }

    /// Aggregate spans by name: call count, total time, summed fields.
    /// Sorted by descending total time.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut by_name: BTreeMap<&str, PhaseTotal> = BTreeMap::new();
        for s in &self.spans {
            let t = by_name.entry(&s.name).or_insert_with(|| PhaseTotal {
                name: s.name.clone(),
                count: 0,
                total_ns: 0,
                fields: BTreeMap::new(),
            });
            t.count += 1;
            t.total_ns = t.total_ns.saturating_add(s.elapsed_ns);
            for (k, v) in &s.fields {
                let f = t.fields.entry(k.clone()).or_insert(0);
                *f = f.saturating_add(*v);
            }
        }
        let mut totals: Vec<PhaseTotal> = by_name.into_values().collect();
        totals.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        totals
    }

    /// Serialize to a single-line JSON document. The exact schema is stable
    /// and parsed back by [`Snapshot::from_json`].
    pub fn to_json(&self) -> String {
        crate::json::to_json(self)
    }

    /// Parse a document produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let snap = crate::json::from_json(text)?;
        for (name, h) in &snap.histograms {
            if !h.is_valid() {
                return Err(format!("histogram {name:?}: inconsistent buckets"));
            }
        }
        for (name, w) in &snap.windows {
            if !w.is_valid() {
                return Err(format!("window {name:?}: inconsistent buckets"));
            }
        }
        for (name, w) in &snap.window_counters {
            if !w.is_valid() {
                return Err(format!("window counter {name:?}: inconsistent buckets"));
            }
        }
        Ok(snap)
    }

    /// Export in Prometheus text exposition format (see `crate::prom`).
    pub fn to_prometheus(&self) -> String {
        crate::prom::to_prometheus(self)
    }
}

/// `1234` → `"1.23 µs"`, etc. Two significant decimals, fixed width-friendly.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (k, v) in &self.counters {
                writeln!(f, "  {k:<32} {v:>14}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (k, v) in &self.gauges {
                writeln!(f, "  {k:<32} {v:>14.3}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            writeln!(
                f,
                "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "p50", "p90", "p99", "max"
            )?;
            for (k, h) in &self.histograms {
                writeln!(
                    f,
                    "  {k:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    h.count,
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                )?;
            }
        }
        if !self.windows.is_empty() {
            writeln!(f, "windows:")?;
            writeln!(
                f,
                "  {:<24} {:>8} {:>8} {:>10} {:>10} {:>10}",
                "name", "buckets", "count", "p50", "p99", "max"
            )?;
            for (k, w) in &self.windows {
                let m = w.merged();
                writeln!(
                    f,
                    "  {k:<24} {:>8} {:>8} {:>10} {:>10} {:>10}",
                    w.buckets.len(),
                    m.count,
                    m.p50(),
                    m.p99(),
                    m.max
                )?;
            }
        }
        if !self.window_counters.is_empty() {
            writeln!(f, "window counters:")?;
            for (k, w) in &self.window_counters {
                writeln!(
                    f,
                    "  {k:<32} {:>14}  ({:>10.1}/s)",
                    w.total(),
                    w.rate_per_sec()
                )?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "spans:")?;
            for root in self.roots() {
                f.write_str(&self.render_tree(root))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_fixture() -> Snapshot {
        let mk = |id, parent, name: &str, start_ns, elapsed_ns| SpanRecord {
            id,
            parent,
            name: name.to_string(),
            thread: 0,
            start_ns,
            elapsed_ns,
            fields: vec![("rows".to_string(), id)],
        };
        Snapshot {
            spans: vec![
                mk(1, 0, "query", 0, 1000),
                mk(2, 1, "fetch", 10, 300),
                mk(3, 1, "fetch", 320, 200),
                mk(4, 3, "leaf", 330, 50),
                mk(5, 0, "other_root", 2000, 10),
            ],
            ..Snapshot::default()
        }
    }

    #[test]
    fn subtree_isolates_one_root() {
        let snap = spans_fixture();
        assert_eq!(snap.roots(), vec![1, 5]);
        let sub = snap.subtree(1);
        let ids: Vec<u64> = sub.spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn tree_render_shows_inclusive_and_exclusive() {
        let snap = spans_fixture();
        let tree = snap.render_tree(1);
        assert!(tree.contains("query"), "{tree}");
        // query self = 1000 - (300 + 200) = 500ns
        assert!(tree.contains("(self     500 ns)"), "{tree}");
        assert!(tree.contains("├─ fetch"), "{tree}");
        assert!(tree.contains("└─ fetch"), "{tree}");
        assert!(tree.contains("   └─ leaf"), "{tree}");
        assert!(tree.contains("{rows=4}"), "{tree}");
    }

    #[test]
    fn phase_totals_aggregate_by_name() {
        let snap = spans_fixture();
        let totals = snap.phase_totals();
        let fetch = totals.iter().find(|t| t.name == "fetch").unwrap();
        assert_eq!(fetch.count, 2);
        assert_eq!(fetch.total_ns, 500);
        assert_eq!(fetch.fields["rows"], 5);
        // Sorted by descending total time: query (1000) first.
        assert_eq!(totals[0].name, "query");
    }
}
