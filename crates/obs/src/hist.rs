//! Log-linear histogram: 8 sub-buckets per power of two.
//!
//! Values below 8 get an exact bucket each; above that, each octave
//! `[2^k, 2^(k+1))` is split into 8 equal-width buckets, bounding the
//! relative quantile error at 12.5% while covering the full `u64` range in
//! 496 fixed buckets. Exact `min`/`max`/`sum`/`count` are kept alongside so
//! extreme quantiles can be clamped to observed values.

use crate::snapshot::HistogramSnapshot;

const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS; // 8 sub-buckets per octave
pub(crate) const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize; // 496

/// A mergeable log-linear histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>, // NUM_BUCKETS entries
    count: u64,
    min: u64,
    max: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

pub(crate) fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    group * SUB as usize + sub
}

/// Largest value that maps into `bucket` (saturating at `u64::MAX`).
pub(crate) fn bucket_upper(bucket: usize) -> u64 {
    if bucket < SUB as usize {
        return bucket as u64;
    }
    let group = (bucket as u32) / SUB as u32;
    let sub = (bucket as u128) % SUB as u128;
    let msb = group + SUB_BITS - 1;
    let base = 1u128 << msb;
    let width = 1u128 << (msb - SUB_BITS);
    let upper = base + (sub + 1) * width - 1;
    upper.min(u64::MAX as u128) as u64
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] = self.counts[bucket_of(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another histogram into this one; the merged quantiles are
    /// identical to recording both sample streams into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Freeze into the serializable, sparse snapshot form.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            sum: self.sum,
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = bucket_of(0);
        assert_eq!(prev, 0);
        for v in 1..4096u64 {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket regressed at {v}");
            assert!(v <= bucket_upper(b), "{v} above its bucket upper bound");
            prev = b;
        }
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
        assert_eq!(bucket_upper(bucket_of(u64::MAX)), u64::MAX);
    }

    #[test]
    fn exact_below_eight() {
        for v in 0..8u64 {
            assert_eq!(bucket_upper(bucket_of(v)), v);
        }
    }

    #[test]
    fn saturation_at_u64_max_is_exact() {
        // u64::MAX must land in the final in-range bucket, whose upper
        // bound is exactly u64::MAX — no overflow past NUM_BUCKETS, no
        // wrapped bucket_upper.
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);

        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, u64::MAX);
        // Sum saturates instead of wrapping.
        assert_eq!(s.sum, u64::MAX);
        // Extreme quantiles clamp to the exact observed max.
        assert_eq!(s.quantile(1.0), u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
        assert!(s.is_valid());
        // The top bucket survives the snapshot round trip.
        assert_eq!(
            s.buckets.last().copied(),
            Some(((NUM_BUCKETS - 1) as u32, 2))
        );
    }

    #[test]
    fn merge_quantiles_match_concatenated_stream_at_extremes() {
        // Two disjoint streams that both include the extreme edges of the
        // u64 range: merging the histograms must yield the same quantiles
        // (and exact min/max/count) as recording the concatenation.
        let stream_a: Vec<u64> = vec![0, 1, 7, 8, 1000, u64::MAX];
        let stream_b: Vec<u64> = vec![3, 500, u64::MAX - 1, u64::MAX];

        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut concat = Histogram::new();
        for &v in &stream_a {
            a.record(v);
            concat.record(v);
        }
        for &v in &stream_b {
            b.record(v);
            concat.record(v);
        }
        a.merge(&b);
        let merged = a.snapshot();
        let direct = concat.snapshot();
        assert_eq!(merged, direct);
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), direct.quantile(q), "q={q}");
        }
        assert_eq!(merged.quantile(0.0), 0); // exact observed min
        assert_eq!(merged.quantile(1.0), u64::MAX); // exact observed max
    }

    #[test]
    fn merge_saturates_counts_instead_of_wrapping() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for h in [&mut a, &mut b] {
            h.count = u64::MAX - 1;
            h.counts[0] = u64::MAX - 1;
            h.sum = u64::MAX - 1;
            h.min = 0;
            h.max = 0;
        }
        a.merge(&b);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.counts[0], u64::MAX);
        assert_eq!(a.sum, u64::MAX);
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Log-linear buckets guarantee <= 12.5% relative error.
        let p50 = s.p50() as f64;
        let p99 = s.p99() as f64;
        assert!((p50 - 500.0).abs() / 500.0 <= 0.125, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 <= 0.125, "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
    }
}
