//! Hand-rolled JSON for [`Snapshot`] — same spirit as `ibis-core`'s
//! `wire.rs`: a fixed schema, written and parsed by hand so the offline
//! build needs no serde. The writer emits a single line; the parser is a
//! small recursive-descent reader over a generic value tree, strict enough
//! to reject malformed documents with a positioned error.

use std::collections::BTreeMap;

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanRecord};
use crate::window::{WindowCounterSnapshot, WindowSnapshot};

// ---------------------------------------------------------------- writing

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    // Gauges are clamped finite at the recording boundary; keep the writer
    // total anyway.
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push('0');
    }
}

fn push_span(out: &mut String, s: &SpanRecord) {
    out.push_str(&format!(
        "{{\"id\":{},\"parent\":{},\"name\":",
        s.id, s.parent
    ));
    push_escaped(out, &s.name);
    out.push_str(&format!(
        ",\"thread\":{},\"start_ns\":{},\"elapsed_ns\":{},\"fields\":[",
        s.thread, s.start_ns, s.elapsed_ns
    ));
    for (i, (k, v)) in s.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_escaped(out, k);
        out.push_str(&format!(",{v}]"));
    }
    out.push_str("]}");
}

fn push_hist(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"buckets\":[",
        h.count, h.min, h.max, h.sum
    ));
    for (i, (b, c)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{b},{c}]"));
    }
    out.push_str("]}");
}

pub(crate) fn to_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(256 + snap.spans.len() * 96);
    out.push_str("{\"spans\":[");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_span(&mut out, s);
    }
    out.push_str("],\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, k);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, k);
        out.push(':');
        push_f64(&mut out, *v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, k);
        out.push(':');
        push_hist(&mut out, h);
    }
    out.push_str("},\"windows\":{");
    for (i, (k, w)) in snap.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, k);
        out.push_str(&format!(
            ":{{\"bucket_ms\":{},\"capacity\":{},\"buckets\":[",
            w.bucket_ms, w.capacity
        ));
        for (j, (idx, h)) in w.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{idx},"));
            push_hist(&mut out, h);
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("},\"window_counters\":{");
    for (i, (k, w)) in snap.window_counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, k);
        out.push_str(&format!(
            ":{{\"bucket_ms\":{},\"capacity\":{},\"buckets\":[",
            w.bucket_ms, w.capacity
        ));
        for (j, (idx, v)) in w.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{idx},{v}]"));
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

// ---------------------------------------------------------------- parsing

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        if float || text.starts_with('-') {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("bad integer"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar, however many bytes it takes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(items));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            items.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(items));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse_value(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

// ------------------------------------------------ value-tree → Snapshot

fn as_obj(v: &Value, what: &str) -> Result<Vec<(String, Value)>, String> {
    match v {
        Value::Obj(items) => Ok(items.clone()),
        _ => Err(format!("{what}: expected an object")),
    }
}

fn as_arr<'v>(v: &'v Value, what: &str) -> Result<&'v [Value], String> {
    match v {
        Value::Arr(items) => Ok(items),
        _ => Err(format!("{what}: expected an array")),
    }
}

fn as_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::UInt(n) => Ok(*n),
        _ => Err(format!("{what}: expected an unsigned integer")),
    }
}

fn as_f64(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::UInt(n) => Ok(*n as f64),
        Value::Float(f) => Ok(*f),
        _ => Err(format!("{what}: expected a number")),
    }
}

fn as_str(v: &Value, what: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("{what}: expected a string")),
    }
}

fn field(obj: &[(String, Value)], key: &str, what: &str) -> Result<Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| format!("{what}: missing {key:?}"))
}

fn span_from(v: &Value) -> Result<SpanRecord, String> {
    let o = as_obj(v, "span")?;
    let fields = as_arr(&field(&o, "fields", "span")?, "span.fields")?
        .iter()
        .map(|pair| {
            let pair = as_arr(pair, "span.fields entry")?;
            if pair.len() != 2 {
                return Err("span.fields entry: expected [name, value]".to_string());
            }
            Ok((
                as_str(&pair[0], "span.fields name")?,
                as_u64(&pair[1], "span.fields value")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SpanRecord {
        id: as_u64(&field(&o, "id", "span")?, "span.id")?,
        parent: as_u64(&field(&o, "parent", "span")?, "span.parent")?,
        name: as_str(&field(&o, "name", "span")?, "span.name")?,
        thread: as_u64(&field(&o, "thread", "span")?, "span.thread")?,
        start_ns: as_u64(&field(&o, "start_ns", "span")?, "span.start_ns")?,
        elapsed_ns: as_u64(&field(&o, "elapsed_ns", "span")?, "span.elapsed_ns")?,
        fields,
    })
}

fn hist_from(v: &Value) -> Result<HistogramSnapshot, String> {
    let o = as_obj(v, "histogram")?;
    let buckets = as_arr(&field(&o, "buckets", "histogram")?, "histogram.buckets")?
        .iter()
        .map(|pair| {
            let pair = as_arr(pair, "bucket")?;
            if pair.len() != 2 {
                return Err("bucket: expected [index, count]".to_string());
            }
            let idx = as_u64(&pair[0], "bucket index")?;
            let idx = u32::try_from(idx).map_err(|_| "bucket index out of range".to_string())?;
            Ok((idx, as_u64(&pair[1], "bucket count")?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(HistogramSnapshot {
        count: as_u64(&field(&o, "count", "histogram")?, "histogram.count")?,
        min: as_u64(&field(&o, "min", "histogram")?, "histogram.min")?,
        max: as_u64(&field(&o, "max", "histogram")?, "histogram.max")?,
        sum: as_u64(&field(&o, "sum", "histogram")?, "histogram.sum")?,
        buckets,
    })
}

fn window_from(v: &Value) -> Result<WindowSnapshot, String> {
    let o = as_obj(v, "window")?;
    let buckets = as_arr(&field(&o, "buckets", "window")?, "window.buckets")?
        .iter()
        .map(|pair| {
            let pair = as_arr(pair, "window bucket")?;
            if pair.len() != 2 {
                return Err("window bucket: expected [index, histogram]".to_string());
            }
            Ok((
                as_u64(&pair[0], "window bucket index")?,
                hist_from(&pair[1])?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let capacity = as_u64(&field(&o, "capacity", "window")?, "window.capacity")?;
    Ok(WindowSnapshot {
        bucket_ms: as_u64(&field(&o, "bucket_ms", "window")?, "window.bucket_ms")?,
        capacity: u32::try_from(capacity)
            .map_err(|_| "window.capacity out of range".to_string())?,
        buckets,
    })
}

fn window_counter_from(v: &Value) -> Result<WindowCounterSnapshot, String> {
    let o = as_obj(v, "window counter")?;
    let buckets = as_arr(
        &field(&o, "buckets", "window counter")?,
        "window_counter.buckets",
    )?
    .iter()
    .map(|pair| {
        let pair = as_arr(pair, "window counter bucket")?;
        if pair.len() != 2 {
            return Err("window counter bucket: expected [index, sum]".to_string());
        }
        Ok((
            as_u64(&pair[0], "window counter bucket index")?,
            as_u64(&pair[1], "window counter bucket sum")?,
        ))
    })
    .collect::<Result<Vec<_>, String>>()?;
    let capacity = as_u64(
        &field(&o, "capacity", "window counter")?,
        "window_counter.capacity",
    )?;
    Ok(WindowCounterSnapshot {
        bucket_ms: as_u64(
            &field(&o, "bucket_ms", "window counter")?,
            "window_counter.bucket_ms",
        )?,
        capacity: u32::try_from(capacity)
            .map_err(|_| "window_counter.capacity out of range".to_string())?,
        buckets,
    })
}

pub(crate) fn from_json(text: &str) -> Result<Snapshot, String> {
    let root = as_obj(&parse_value(text)?, "snapshot")?;
    let spans = as_arr(&field(&root, "spans", "snapshot")?, "snapshot.spans")?
        .iter()
        .map(span_from)
        .collect::<Result<Vec<_>, String>>()?;
    let mut counters = BTreeMap::new();
    for (k, v) in as_obj(&field(&root, "counters", "snapshot")?, "snapshot.counters")? {
        counters.insert(k.clone(), as_u64(&v, &format!("counter {k:?}"))?);
    }
    let mut gauges = BTreeMap::new();
    for (k, v) in as_obj(&field(&root, "gauges", "snapshot")?, "snapshot.gauges")? {
        gauges.insert(k.clone(), as_f64(&v, &format!("gauge {k:?}"))?);
    }
    let mut histograms = BTreeMap::new();
    for (k, v) in as_obj(
        &field(&root, "histograms", "snapshot")?,
        "snapshot.histograms",
    )? {
        histograms.insert(k.clone(), hist_from(&v)?);
    }
    let mut windows = BTreeMap::new();
    for (k, v) in as_obj(&field(&root, "windows", "snapshot")?, "snapshot.windows")? {
        windows.insert(k.clone(), window_from(&v)?);
    }
    let mut window_counters = BTreeMap::new();
    for (k, v) in as_obj(
        &field(&root, "window_counters", "snapshot")?,
        "snapshot.window_counters",
    )? {
        window_counters.insert(k.clone(), window_counter_from(&v)?);
    }
    Ok(Snapshot {
        spans,
        counters,
        gauges,
        histograms,
        windows,
        window_counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut h = crate::Histogram::new();
        for v in [1u64, 5, 9, 1000, u64::MAX] {
            h.record(v);
        }
        let mut w = crate::WindowedHistogram::new(100, 4);
        w.record_at(0, 10);
        w.record_at(150, 20);
        let mut wc = crate::WindowedCounter::new(100, 4);
        wc.add_at(0, 3);
        wc.add_at(250, 4);
        Snapshot {
            spans: vec![SpanRecord {
                id: 3,
                parent: 0,
                name: "bitmap.fetch \"quoted\"\n".to_string(),
                thread: 2,
                start_ns: 123,
                elapsed_ns: u64::MAX,
                fields: vec![("rows".to_string(), 7), ("rows".to_string(), 2)],
            }],
            counters: [("oracle.cases".to_string(), u64::MAX)].into(),
            gauges: [("threads".to_string(), 4.25), ("neg".to_string(), -1.5)].into(),
            histograms: [("lat".to_string(), h.snapshot())].into(),
            windows: [("lat.win".to_string(), w.snapshot_at(250))].into(),
            window_counters: [("req.win".to_string(), wc.snapshot_at(250))].into(),
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let snap = sample();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // And the JSON of the parse is byte-identical (canonical form).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[]",
            "{\"spans\":[],\"counters\":{},\"gauges\":{}}", // missing histograms
            // missing windows / window_counters
            "{\"spans\":[],\"counters\":{},\"gauges\":{},\"histograms\":{}}",
            "{\"spans\":[],\"counters\":{},\"gauges\":{},\"histograms\":{},\"windows\":{}}",
            "{\"spans\":[{}],\"counters\":{},\"gauges\":{},\"histograms\":{},\"windows\":{},\"window_counters\":{}}",
            "{\"spans\":[],\"counters\":{\"x\":-1},\"gauges\":{},\"histograms\":{},\"windows\":{},\"window_counters\":{}}",
            "{\"spans\":[],\"counters\":{},\"gauges\":{},\"histograms\":{},\"windows\":{},\"window_counters\":{}} trailing",
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn rejects_inconsistent_histograms() {
        // count says 2 but buckets sum to 1.
        let bad = "{\"spans\":[],\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\"count\":2,\"min\":1,\"max\":1,\"sum\":2,\"buckets\":[[1,1]]}},\"windows\":{},\"window_counters\":{}}";
        assert!(Snapshot::from_json(bad).is_err());
    }

    #[test]
    fn rejects_inconsistent_windows() {
        // Bucket indexes must be strictly ascending and non-empty.
        let dup = "{\"spans\":[],\"counters\":{},\"gauges\":{},\"histograms\":{},\"windows\":{\"w\":{\"bucket_ms\":100,\"capacity\":4,\"buckets\":[[2,{\"count\":1,\"min\":1,\"max\":1,\"sum\":1,\"buckets\":[[1,1]]}],[2,{\"count\":1,\"min\":1,\"max\":1,\"sum\":1,\"buckets\":[[1,1]]}]]}},\"window_counters\":{}}";
        assert!(Snapshot::from_json(dup).is_err());
        let zero = "{\"spans\":[],\"counters\":{},\"gauges\":{},\"histograms\":{},\"windows\":{},\"window_counters\":{\"c\":{\"bucket_ms\":100,\"capacity\":4,\"buckets\":[[1,0]]}}}";
        assert!(Snapshot::from_json(zero).is_err());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }
}
