//! Zero-dependency observability for the ibis engine.
//!
//! Three pieces, all process-global and all free when disabled:
//!
//! * **Spans** — [`span()`] / [`span!`] return an RAII [`SpanGuard`] that
//!   records monotonic elapsed nanoseconds, the emitting thread, a link to
//!   the enclosing span, and optional named `u64` fields (used by the engine
//!   to attach per-phase `WorkCounters` deltas). Finished spans land in a
//!   lock-free thread-local buffer that is drained into the global recorder
//!   when the thread's outermost span closes (or the thread exits), so the
//!   hot path never takes a lock.
//! * **Metrics** — [`counter_add`], [`gauge_set`] and [`observe`] maintain a
//!   registry of counters, gauges and log-linear histograms keyed by
//!   `&'static str`.
//! * **Snapshots** — [`snapshot`] freezes everything into a [`Snapshot`]
//!   that renders as a human table / span tree (`Display`), exports to JSON
//!   ([`Snapshot::to_json`]) and parses back ([`Snapshot::from_json`]).
//!
//! Recording is off by default. `Recorder::enabled().install()` turns it on;
//! `Recorder::disabled().install()` turns it off again and discards state.
//! When disabled every entry point is a single relaxed atomic load — no
//! allocation, no clock read, no lock — so instrumented code can stay
//! instrumented in production builds.
//!
//! `WorkCounters` live in `ibis-core`, which depends on this crate (not the
//! other way around), keeping `ibis-obs` dependency-free.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod hist;
mod json;
mod prom;
mod snapshot;
mod window;

pub use hist::Histogram;
pub use prom::validate_prometheus;
pub use snapshot::{HistogramSnapshot, PhaseTotal, Snapshot, SpanRecord};
pub use window::{
    merge_hist_snapshots, WindowCounterSnapshot, WindowSnapshot, WindowedCounter, WindowedHistogram,
};

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global on/off switch. Relaxed is enough: recording is advisory and a
/// stale read merely delays when a thread notices an install.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every [`Recorder::install`]; spans started under an older
/// generation are discarded instead of polluting the new recording.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Span ids are process-unique and never reused (0 = "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static GLOBAL: OnceLock<Mutex<GlobalState>> = OnceLock::new();

/// Drain a thread-local buffer into the global recorder once it holds this
/// many spans, even if the thread's root span is still open.
const FLUSH_HIGH_WATER: usize = 256;

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn global() -> &'static Mutex<GlobalState> {
    GLOBAL.get_or_init(|| Mutex::new(GlobalState::default()))
}

fn lock_global() -> std::sync::MutexGuard<'static, GlobalState> {
    // A panic while holding the lock only interrupts bookkeeping, never
    // leaves the state half-written in a way later readers can't use.
    global().lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Default)]
struct GlobalState {
    spans: Vec<RawSpan>,
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, f64>,
    histograms: HashMap<&'static str, Histogram>,
    windows: HashMap<&'static str, window::WindowedHistogram>,
    window_counters: HashMap<&'static str, window::WindowedCounter>,
}

/// A finished span, still using `&'static str` names (stringified only when
/// a [`Snapshot`] is taken).
struct RawSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    thread: u64,
    start_ns: u64,
    elapsed_ns: u64,
    fields: Vec<(&'static str, u64)>,
}

struct ThreadState {
    thread: u64,
    generation: u64,
    /// Ids of the currently open spans on this thread, outermost first.
    stack: Vec<u64>,
    buf: Vec<RawSpan>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            generation: u64::MAX,
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }

    /// Reset per-recording state when a new recorder generation is observed.
    fn sync_generation(&mut self, generation: u64) {
        if self.generation != generation {
            self.generation = generation;
            self.stack.clear();
            self.buf.clear();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.generation == GENERATION.load(Ordering::Relaxed) && is_enabled() {
            lock_global().spans.append(&mut self.buf);
        } else {
            self.buf.clear();
        }
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Configures the process-global recorder.
///
/// ```
/// ibis_obs::Recorder::enabled().install();
/// {
///     let mut g = ibis_obs::span("demo.work");
///     g.add_field("rows", 42);
/// }
/// let snap = ibis_obs::snapshot();
/// assert_eq!(snap.spans.len(), 1);
/// ibis_obs::Recorder::disabled().install();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Recorder {
    enabled: bool,
}

impl Recorder {
    /// A recorder that records spans and metrics.
    pub fn enabled() -> Self {
        Recorder { enabled: true }
    }

    /// A recorder that makes every API entry point a no-op (the default).
    pub fn disabled() -> Self {
        Recorder { enabled: false }
    }

    /// Install this recorder globally, discarding anything recorded so far.
    /// Spans that are still open when an install happens belong to the old
    /// generation and are dropped on close, never mixed into the new run.
    pub fn install(self) {
        let mut g = lock_global();
        GENERATION.fetch_add(1, Ordering::Relaxed);
        *g = GlobalState::default();
        ENABLED.store(self.enabled, Ordering::Relaxed);
    }
}

/// Whether the installed recorder is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Payload of a live, recording span.
struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    generation: u64,
    start: Instant,
    start_ns: u64,
    fields: Vec<(&'static str, u64)>,
}

/// RAII guard returned by [`span()`]; records the span when dropped.
///
/// When the recorder is disabled the guard is inert: construction did not
/// read the clock and `Drop` does nothing.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// The span's unique id (0 when the recorder is disabled).
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.id)
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attach a named value to the span (no-op when disabled). Values with
    /// the same name accumulate by appearing once each in the record.
    pub fn add_field(&mut self, name: &'static str, value: u64) {
        if let Some(a) = self.0.as_mut() {
            a.fields.push((name, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let elapsed_ns = a.start.elapsed().as_nanos() as u64;
        TLS.with(|tls| {
            let mut ts = tls.borrow_mut();
            if ts.generation != a.generation {
                return; // recorder swapped while this span was open
            }
            if ts.stack.last() == Some(&a.id) {
                ts.stack.pop();
            }
            let thread = ts.thread;
            ts.buf.push(RawSpan {
                id: a.id,
                parent: a.parent,
                name: a.name,
                thread,
                start_ns: a.start_ns,
                elapsed_ns,
                fields: a.fields,
            });
            if ts.stack.is_empty() || ts.buf.len() >= FLUSH_HIGH_WATER {
                ts.flush();
            }
        });
    }
}

/// Open a span named `name`, parented to the innermost open span on this
/// thread (or a root if there is none). Returns an inert guard when the
/// recorder is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    span_slow(name, None)
}

/// Open a span with an explicit fallback parent, used to stitch the trace
/// across threads: when the current thread has no open span (a fresh worker)
/// the given id becomes the parent; otherwise normal nesting wins.
#[inline]
pub fn span_with_parent(name: &'static str, parent: u64) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    span_slow(name, Some(parent))
}

fn span_slow(name: &'static str, fallback_parent: Option<u64>) -> SpanGuard {
    let generation = GENERATION.load(Ordering::Relaxed);
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let start_ns = start.duration_since(epoch()).as_nanos() as u64;
    TLS.with(|tls| {
        let mut ts = tls.borrow_mut();
        ts.sync_generation(generation);
        let parent = ts.stack.last().copied().or(fallback_parent).unwrap_or(0);
        ts.stack.push(id);
        SpanGuard(Some(ActiveSpan {
            id,
            parent,
            name,
            generation,
            start,
            start_ns,
            fields: Vec::new(),
        }))
    })
}

/// Id of the innermost open span on this thread (0 if none). Capture this
/// before handing work to another thread and pass it to
/// [`span_with_parent`] there.
pub fn current_span_id() -> u64 {
    if !is_enabled() {
        return 0;
    }
    TLS.with(|tls| {
        let mut ts = tls.borrow_mut();
        ts.sync_generation(GENERATION.load(Ordering::Relaxed));
        ts.stack.last().copied().unwrap_or(0)
    })
}

/// Open a span. `span!("bee.and_reduce")` is shorthand for
/// [`span("bee.and_reduce")`](span()); the two-argument form supplies a
/// cross-thread fallback parent as in [`span_with_parent`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, parent = $parent:expr) => {
        $crate::span_with_parent($name, $parent)
    };
}

/// Add `delta` to the counter `name` (no-op when disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut g = lock_global();
    let c = g.counters.entry(name).or_insert(0);
    *c = c.saturating_add(delta);
}

/// Set the gauge `name` to `value`; non-finite values are recorded as 0 so
/// snapshots stay JSON-serializable (no-op when disabled).
pub fn gauge_set(name: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    let v = if value.is_finite() { value } else { 0.0 };
    lock_global().gauges.insert(name, v);
}

/// Adjust the gauge `name` by `delta` (which may be negative), creating it
/// at 0 first. Non-finite results are clamped to 0; no-op when disabled.
pub fn gauge_add(name: &'static str, delta: f64) {
    if !is_enabled() {
        return;
    }
    let mut g = lock_global();
    let v = g.gauges.entry(name).or_insert(0.0);
    let next = *v + delta;
    *v = if next.is_finite() { next } else { 0.0 };
}

/// Milliseconds since the process recording epoch — the time base every
/// windowed metric records against.
pub fn now_ms() -> u64 {
    epoch().elapsed().as_millis() as u64
}

/// Record `value` into the rolling windowed histogram `name` (1 s × 64
/// bucket ring; no-op when disabled). The live window is exported by
/// [`snapshot`] / [`Registry::export`] under the same name.
pub fn window_observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let now = now_ms();
    lock_global()
        .windows
        .entry(name)
        .or_insert_with(window::WindowedHistogram::with_defaults)
        .record_at(now, value);
}

/// Add `delta` to the rolling windowed counter `name` (1 s × 64 bucket
/// ring; no-op when disabled).
pub fn window_counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let now = now_ms();
    lock_global()
        .window_counters
        .entry(name)
        .or_insert_with(window::WindowedCounter::with_defaults)
        .add_at(now, delta);
}

/// Record `value` into the log-linear histogram `name` (no-op when
/// disabled).
pub fn observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    lock_global()
        .histograms
        .entry(name)
        .or_default()
        .record(value);
}

/// Freeze the current recording into an immutable [`Snapshot`].
///
/// Flushes the calling thread's buffer first; spans recorded by other
/// threads are visible once those threads closed their outermost span or
/// exited — both are guaranteed for `ExecPool` scoped workers by the time
/// the pool call returns.
pub fn snapshot() -> Snapshot {
    TLS.with(|tls| tls.borrow_mut().flush());
    let now = now_ms();
    let g = lock_global();
    let mut spans: Vec<SpanRecord> = g
        .spans
        .iter()
        .map(|r| SpanRecord {
            id: r.id,
            parent: r.parent,
            name: r.name.to_string(),
            thread: r.thread,
            start_ns: r.start_ns,
            elapsed_ns: r.elapsed_ns,
            fields: r.fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        })
        .collect();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    Snapshot {
        spans,
        counters: g
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect(),
        gauges: g.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
        histograms: g
            .histograms
            .iter()
            .map(|(&k, h)| (k.to_string(), h.snapshot()))
            .collect(),
        windows: g
            .windows
            .iter()
            .map(|(&k, w)| (k.to_string(), w.snapshot_at(now)))
            .collect(),
        window_counters: g
            .window_counters
            .iter()
            .map(|(&k, w)| (k.to_string(), w.snapshot_at(now)))
            .collect(),
    }
}

/// Handle over the process-global metrics registry.
///
/// [`Registry::export`] freezes the metric state — counters, gauges,
/// cumulative histograms and the live windowed rings — *without* the span
/// log, which is what a telemetry endpoint wants: metrics are cheap and
/// bounded, spans are neither. The returned [`Snapshot`] renders to both
/// wire formats: canonical JSON via [`Snapshot::to_json`] and Prometheus
/// text exposition via [`Snapshot::to_prometheus`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Registry;

impl Registry {
    /// Export the metric registry (no spans) as a [`Snapshot`].
    pub fn export() -> Snapshot {
        let now = now_ms();
        let g = lock_global();
        Snapshot {
            spans: Vec::new(),
            counters: g
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: g.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), h.snapshot()))
                .collect(),
            windows: g
                .windows
                .iter()
                .map(|(&k, w)| (k.to_string(), w.snapshot_at(now)))
                .collect(),
            window_counters: g
                .window_counters
                .iter()
                .map(|(&k, w)| (k.to_string(), w.snapshot_at(now)))
                .collect(),
        }
    }
}

/// Remove and return the span subtree rooted at `root` from the recorder.
///
/// Flushes the calling thread's buffer first, then extracts every recorded
/// span reachable from `root` (including the root itself), leaving all
/// other spans and every metric untouched. This is how a long-running
/// server keeps span memory bounded: wrap each traced request in a root
/// span, then drain exactly that tree once the request finishes. Returns
/// records sorted by `(start_ns, id)`; empty when the recorder is disabled
/// or the root was never recorded.
pub fn drain_subtree(root: u64) -> Vec<SpanRecord> {
    if root == 0 || !is_enabled() {
        return Vec::new();
    }
    TLS.with(|tls| tls.borrow_mut().flush());
    let mut g = lock_global();
    let mut keep: std::collections::HashSet<u64> = std::collections::HashSet::new();
    keep.insert(root);
    // Parents usually precede children, but cross-thread flush order is
    // arbitrary; iterate to closure.
    loop {
        let before = keep.len();
        for s in &g.spans {
            if keep.contains(&s.parent) {
                keep.insert(s.id);
            }
        }
        if keep.len() == before {
            break;
        }
    }
    let mut out: Vec<SpanRecord> = Vec::new();
    let mut rest: Vec<RawSpan> = Vec::with_capacity(g.spans.len());
    for r in g.spans.drain(..) {
        if keep.contains(&r.id) {
            out.push(SpanRecord {
                id: r.id,
                parent: r.parent,
                name: r.name.to_string(),
                thread: r.thread,
                start_ns: r.start_ns,
                elapsed_ns: r.elapsed_ns,
                fields: r.fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            });
        } else {
            rest.push(r);
        }
    }
    g.spans = rest;
    out.sort_by_key(|s| (s.start_ns, s.id));
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// Tests that install/inspect the process-global recorder must not
    /// interleave; serialize them on this lock.
    pub fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let _serial = testutil::serial();
        Recorder::disabled().install();
        let mut g = span!("noop");
        assert_eq!(g.id(), 0);
        assert!(!g.is_recording());
        g.add_field("rows", 1);
        drop(g);
        counter_add("c", 1);
        gauge_set("g", 1.0);
        observe("h", 1);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_and_carry_fields() {
        let _serial = testutil::serial();
        Recorder::enabled().install();
        let root_id;
        {
            let mut root = span!("root");
            root_id = root.id();
            root.add_field("total", 7);
            {
                let mut child = span!("child");
                assert_eq!(current_span_id(), child.id());
                child.add_field("rows", 3);
            }
            let _sibling = span!("sibling");
        }
        let snap = snapshot();
        Recorder::disabled().install();

        assert_eq!(snap.spans.len(), 3);
        let root = snap.spans.iter().find(|s| s.name == "root").unwrap();
        let child = snap.spans.iter().find(|s| s.name == "child").unwrap();
        let sibling = snap.spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(root.id, root_id);
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root_id);
        assert_eq!(sibling.parent, root_id);
        assert_eq!(child.fields, vec![("rows".to_string(), 3)]);
        assert!(root.elapsed_ns >= child.elapsed_ns);
    }

    #[test]
    fn explicit_parent_used_only_at_stack_bottom() {
        let _serial = testutil::serial();
        Recorder::enabled().install();
        let outer = span!("outer");
        let outer_id = outer.id();
        {
            // Stack is non-empty: nesting wins over the explicit parent.
            let nested = span_with_parent("nested", 9999);
            assert_eq!(nested.id(), current_span_id());
        }
        drop(outer);
        // Fresh "thread": no open span, so the fallback parent applies.
        let adopted = span_with_parent("adopted", outer_id);
        drop(adopted);
        let snap = snapshot();
        Recorder::disabled().install();

        let nested = snap.spans.iter().find(|s| s.name == "nested").unwrap();
        let adopted = snap.spans.iter().find(|s| s.name == "adopted").unwrap();
        assert_eq!(nested.parent, outer_id);
        assert_eq!(adopted.parent, outer_id);
    }

    #[test]
    fn install_discards_previous_recording_and_open_spans() {
        let _serial = testutil::serial();
        Recorder::enabled().install();
        let stale = span!("stale");
        Recorder::enabled().install(); // new generation while `stale` is open
        let fresh = span!("fresh");
        assert_eq!(fresh.parent_for_test(), 0);
        drop(fresh);
        drop(stale); // belongs to the old generation: discarded
        let snap = snapshot();
        Recorder::disabled().install();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "fresh");
    }

    #[test]
    fn metrics_registry_records_and_saturates() {
        let _serial = testutil::serial();
        Recorder::enabled().install();
        counter_add("queries", 2);
        counter_add("queries", 3);
        counter_add("big", u64::MAX);
        counter_add("big", 10); // must saturate, not wrap
        gauge_set("threads", 4.0);
        gauge_set("weird", f64::NAN); // clamped to 0 for JSON safety
        for v in [1u64, 2, 3, 1000] {
            observe("lat", v);
        }
        let snap = snapshot();
        Recorder::disabled().install();

        assert_eq!(snap.counters["queries"], 5);
        assert_eq!(snap.counters["big"], u64::MAX);
        assert_eq!(snap.gauges["threads"], 4.0);
        assert_eq!(snap.gauges["weird"], 0.0);
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1006);
    }

    impl SpanGuard {
        fn parent_for_test(&self) -> u64 {
            self.0.as_ref().map_or(0, |a| a.parent)
        }
    }

    #[test]
    fn gauge_add_accumulates_and_clamps() {
        let _serial = testutil::serial();
        Recorder::enabled().install();
        gauge_add("depth", 3.0);
        gauge_add("depth", 2.5);
        gauge_add("depth", -1.5);
        gauge_add("bad", f64::INFINITY); // clamped to 0
        let snap = snapshot();
        Recorder::disabled().install();
        assert_eq!(snap.gauges["depth"], 4.0);
        assert_eq!(snap.gauges["bad"], 0.0);
    }

    #[test]
    fn windowed_globals_feed_registry_export() {
        let _serial = testutil::serial();
        Recorder::enabled().install();
        window_observe("lat.win", 100);
        window_observe("lat.win", 200);
        window_counter_add("req.win", 5);
        counter_add("total", 1);
        {
            let _g = span!("not.exported.by.registry");
        }
        let export = Registry::export();
        let full = snapshot();
        Recorder::disabled().install();

        assert!(export.spans.is_empty(), "Registry::export carries no spans");
        assert_eq!(full.spans.len(), 1);
        let w = &export.windows["lat.win"];
        assert_eq!(w.merged().count, 2);
        assert_eq!(w.merged().max, 200);
        assert_eq!(export.window_counters["req.win"].total(), 5);
        assert_eq!(export.counters["total"], 1);
        // The export is itself a valid canonical snapshot document.
        assert_eq!(
            Snapshot::from_json(&export.to_json()).unwrap().to_json(),
            export.to_json()
        );
    }

    #[test]
    fn drain_subtree_extracts_one_tree_and_keeps_the_rest() {
        let _serial = testutil::serial();
        Recorder::enabled().install();
        let root_a;
        {
            let a = span!("req.a");
            root_a = a.id();
            let _child = span!("req.a.exec");
        }
        {
            let _b = span!("req.b");
        }
        let drained = drain_subtree(root_a);
        let leftover = snapshot();
        Recorder::disabled().install();

        assert_eq!(drained.len(), 2);
        assert!(drained.iter().any(|s| s.name == "req.a"));
        assert!(drained.iter().any(|s| s.name == "req.a.exec"));
        // Drained spans are gone from the recorder; unrelated ones remain.
        assert_eq!(leftover.spans.len(), 1);
        assert_eq!(leftover.spans[0].name, "req.b");
        // Draining again (or a bogus root) is empty, not an error.
        assert!(drain_subtree(root_a).is_empty());
        assert!(drain_subtree(0).is_empty());
    }
}
