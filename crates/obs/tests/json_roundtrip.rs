//! Snapshot JSON round-trip coverage for gauges and the windowed rings:
//! `to_json` → `from_json` must reproduce the snapshot exactly, and
//! re-serializing must be byte-identical (the JSON form is canonical).

use ibis_obs::{Snapshot, WindowedCounter, WindowedHistogram};

fn assert_byte_identical_roundtrip(snap: &Snapshot) {
    let text = snap.to_json();
    let back = Snapshot::from_json(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(&back, snap);
    assert_eq!(back.to_json(), text, "canonical JSON must be a fixed point");
}

#[test]
fn gauges_roundtrip_exactly() {
    let snap = Snapshot {
        gauges: [
            ("zero".to_string(), 0.0),
            ("neg".to_string(), -12.75),
            ("queue".to_string(), 17.0),
            ("frac".to_string(), 0.001953125), // exact binary fraction
        ]
        .into(),
        ..Snapshot::default()
    };
    assert_byte_identical_roundtrip(&snap);
}

#[test]
fn windowed_rings_roundtrip_exactly() {
    let mut w = WindowedHistogram::new(250, 8);
    for (t, v) in [(0u64, 3u64), (10, 5), (300, 900), (1900, u64::MAX)] {
        w.record_at(t, v);
    }
    let mut wc = WindowedCounter::new(250, 8);
    wc.add_at(5, 2);
    wc.add_at(1900, 40);
    let snap = Snapshot {
        windows: [("server.exec_us".to_string(), w.snapshot_at(1900))].into(),
        window_counters: [("server.admitted".to_string(), wc.snapshot_at(1900))].into(),
        ..Snapshot::default()
    };
    assert!(!snap.windows["server.exec_us"].buckets.is_empty());
    assert_byte_identical_roundtrip(&snap);
}

#[test]
fn empty_window_degeneracy_roundtrips() {
    // A ring that exists but whose buckets have all decayed out of view:
    // serialized with an empty bucket list, parsed back identically.
    let mut w = WindowedHistogram::new(10, 2);
    w.record_at(0, 1);
    let stale = w.snapshot_at(1_000_000); // far past: nothing live
    assert!(stale.buckets.is_empty());
    let mut wc = WindowedCounter::new(10, 2);
    wc.add_at(0, 1);
    let stale_c = wc.snapshot_at(1_000_000);
    assert!(stale_c.buckets.is_empty());
    let snap = Snapshot {
        windows: [("w".to_string(), stale)].into(),
        window_counters: [("c".to_string(), stale_c)].into(),
        ..Snapshot::default()
    };
    assert_byte_identical_roundtrip(&snap);
    assert_eq!(snap.windows["w"].merged().count, 0);
    assert_eq!(snap.window_counters["c"].total(), 0);
    assert_eq!(snap.window_counters["c"].rate_per_sec(), 0.0);
}

#[test]
fn single_bucket_degeneracy_roundtrips() {
    let mut w = WindowedHistogram::new(1000, 64);
    w.record_at(500, 77);
    let one = w.snapshot_at(999);
    assert_eq!(one.buckets.len(), 1);
    let mut wc = WindowedCounter::new(1000, 64);
    wc.add_at(500, 9);
    let snap = Snapshot {
        windows: [("w".to_string(), one)].into(),
        window_counters: [("c".to_string(), wc.snapshot_at(999))].into(),
        ..Snapshot::default()
    };
    assert_byte_identical_roundtrip(&snap);
    // A single bucket merges to itself and covers exactly one bucket width.
    assert_eq!(snap.windows["w"].merged().max, 77);
    assert_eq!(snap.windows["w"].covered_ms(), 1000);
    assert_eq!(snap.window_counters["c"].rate_per_sec(), 9.0);
}
