//! Concurrency guarantees of the global recorder: many threads emitting
//! overlapping spans and metrics must produce a consistent snapshot — no
//! lost spans, no double counting, and parent links that resolve.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

use ibis_obs::{snapshot, span, span_with_parent, Recorder};

/// Tests in this binary share the process-global recorder; serialize them.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const THREADS: usize = 8;
const SPANS_PER_THREAD: usize = 300;

#[test]
fn eight_threads_no_lost_or_duplicated_spans() {
    let _serial = serial();
    Recorder::enabled().install();

    let root = span("root");
    let root_id = root.id();
    let barrier = Barrier::new(THREADS);
    let field_sum = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let barrier = &barrier;
            let field_sum = &field_sum;
            s.spawn(move || {
                barrier.wait(); // maximize overlap
                for i in 0..SPANS_PER_THREAD {
                    let mut outer = span_with_parent("worker.outer", root_id);
                    let v = (t * SPANS_PER_THREAD + i) as u64;
                    outer.add_field("work", v);
                    field_sum.fetch_add(v, Ordering::Relaxed);
                    let _inner = span("worker.inner");
                    ibis_obs::counter_add("spans.emitted", 1);
                    ibis_obs::observe("work.value", v);
                }
            });
        }
    });
    drop(root);

    let snap = snapshot();
    Recorder::disabled().install();

    let total = THREADS * SPANS_PER_THREAD;
    let outers: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.name == "worker.outer")
        .collect();
    let inners: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.name == "worker.inner")
        .collect();
    assert_eq!(snap.spans.len(), 2 * total + 1, "lost or duplicated spans");
    assert_eq!(outers.len(), total);
    assert_eq!(inners.len(), total);

    // No id appears twice (each span recorded exactly once).
    let mut ids: Vec<u64> = snap.spans.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), snap.spans.len(), "duplicate span ids");

    // Parent links resolve: every outer hangs off the root, every inner off
    // an outer on the same thread.
    for o in &outers {
        assert_eq!(o.parent, root_id);
    }
    for i in &inners {
        let parent = snap.span(i.parent).expect("dangling parent link");
        assert_eq!(parent.name, "worker.outer");
        assert_eq!(parent.thread, i.thread, "inner parented across threads");
    }

    // Field payloads all survived (sum over all outer spans).
    let recorded: u64 = outers
        .iter()
        .flat_map(|s| s.fields.iter().map(|f| f.1))
        .sum();
    assert_eq!(recorded, field_sum.load(Ordering::Relaxed));

    // Metrics agree with the span count.
    assert_eq!(snap.counters["spans.emitted"], total as u64);
    let h = &snap.histograms["work.value"];
    assert_eq!(h.count, total as u64);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, total as u64 - 1);

    // The whole forest is one tree under the root.
    assert_eq!(snap.roots(), vec![root_id]);
    assert_eq!(snap.subtree(root_id).spans.len(), snap.spans.len());
}

#[test]
fn snapshot_during_activity_is_internally_consistent() {
    let _serial = serial();
    Recorder::enabled().install();

    // Threads record complete span trees while the main thread snapshots
    // concurrently: every observed snapshot must contain only complete
    // parent-resolving trees (a worker's spans appear all-or-nothing).
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..200 {
                    let outer = span("pair.outer");
                    let outer_id = outer.id();
                    let inner = span("pair.inner");
                    assert_eq!(
                        ibis_obs::current_span_id(),
                        inner.id(),
                        "stack top must be the innermost span"
                    );
                    drop(inner);
                    drop(outer);
                    let _ = outer_id;
                }
            });
        }
        for _ in 0..20 {
            let snap = snapshot();
            for span in snap.spans.iter().filter(|s| s.name == "pair.inner") {
                assert!(
                    snap.span(span.parent).is_some(),
                    "inner span visible before its parent"
                );
            }
        }
    });

    let snap = snapshot();
    Recorder::disabled().install();
    assert_eq!(
        snap.spans.iter().filter(|s| s.name == "pair.inner").count(),
        4 * 200
    );
}
