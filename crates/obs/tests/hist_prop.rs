//! Property tests for the log-linear histogram (vendored proptest):
//! quantile ordering, count preservation across merges, and quantile
//! accuracy bounds.

use ibis_obs::Histogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantiles_are_ordered_and_clamped(values in proptest::collection::vec(0u64..=u64::MAX, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let (p50, p90, p99, max) = (s.p50(), s.p90(), s.p99(), s.max);
        prop_assert!(p50 <= p90, "p50={p50} > p90={p90}");
        prop_assert!(p90 <= p99, "p90={p90} > p99={p99}");
        prop_assert!(p99 <= max, "p99={p99} > max={max}");
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= lo && v <= hi, "quantile({q})={v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn merge_preserves_count_sum_and_extremes(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);

        // Merging must equal recording the concatenated stream.
        let mut all = Histogram::new();
        for &v in a.iter().chain(&b) {
            all.record(v);
        }
        prop_assert_eq!(merged.snapshot(), all.snapshot());
    }

    #[test]
    fn median_relative_error_bounded(values in proptest::collection::vec(1u64..1_000_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = sorted[(values.len() - 1) / 2] as f64;
        let approx = h.snapshot().p50() as f64;
        // 8 sub-buckets per octave bound the relative error at 12.5%.
        prop_assert!(
            approx >= exact * 0.999 && approx <= exact * 1.125 + 1.0,
            "p50 approx={approx} exact={exact}"
        );
    }
}
