//! The VA+-file extension: equi-depth quantization for skewed data.
//!
//! The paper's closing remark: "The same modifications made to the basic
//! VA-file to account for missing data could also be applied to the VA-plus
//! file, a technique to quantize skewed data sets described in [6]."
//! [`VaPlusFile`] does exactly that: the missing code `0^b` is unchanged,
//! but the value bins are chosen **equi-depth** from the observed value
//! histogram instead of equal-width, so heavily-populated values stop
//! flooding one bin with candidates.

use crate::vafile::{default_bits, VaCost};
use crate::{Quantizer, VaFile};
use ibis_core::{Dataset, RangeQuery, Result, RowSet};

/// A VA-file with equi-depth (VA+-style) bins. Same storage, same query
/// path, same missing-data handling — only the lookup tables differ.
#[derive(Clone, Debug)]
pub struct VaPlusFile {
    inner: VaFile,
}

impl VaPlusFile {
    /// Builds with the paper's default widths `b_i = ⌈log₂(C_i + 1)⌉` and
    /// equi-depth bins fitted to `dataset`'s value distribution.
    pub fn build(dataset: &Dataset) -> VaPlusFile {
        let bits: Vec<u8> = dataset
            .columns()
            .iter()
            .map(|c| default_bits(c.cardinality()))
            .collect();
        VaPlusFile::with_bits(dataset, &bits)
    }

    /// Builds with explicit per-attribute code widths (`1..=16` bits each).
    pub fn with_bits(dataset: &Dataset, bits: &[u8]) -> VaPlusFile {
        let quantizers: Vec<Quantizer> = dataset
            .columns()
            .iter()
            .zip(bits)
            .map(|(col, &b)| {
                assert!((1..=16).contains(&b), "code width must be 1..=16 bits");
                let n_bins = ((1u32 << b) - 1).min(u16::MAX as u32) as u16;
                Quantizer::equi_depth(&col.value_counts(), n_bins)
            })
            .collect();
        VaPlusFile {
            inner: VaFile::with_quantizers(dataset, bits, quantizers),
        }
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.inner.n_rows()
    }

    /// The underlying VA-file (layout and packed matrix are shared; only
    /// the lookup tables differ).
    pub fn inner(&self) -> &VaFile {
        &self.inner
    }

    /// Bits per approximation record.
    pub fn row_bits(&self) -> usize {
        self.inner.row_bits()
    }

    /// Total index size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    /// Executes a query exactly (filter + refinement).
    pub fn execute(&self, dataset: &Dataset, query: &RangeQuery) -> Result<RowSet> {
        self.inner.execute(dataset, query)
    }

    /// Executes a query, also returning scan/refinement counters.
    pub fn execute_with_cost(
        &self,
        dataset: &Dataset,
        query: &RangeQuery,
    ) -> Result<(RowSet, VaCost)> {
        self.inner.execute_with_cost(dataset, query)
    }

    /// Executes a query with a partitioned parallel filter scan; see
    /// [`VaFile::execute_with_cost_threads`].
    pub fn execute_with_cost_threads(
        &self,
        dataset: &Dataset,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, VaCost)> {
        self.inner
            .execute_with_cost_threads(dataset, query, threads)
    }

    /// Serializes the file. The format is identical to [`VaFile`]'s — the
    /// lookup tables already carry the equi-depth boundaries.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        self.inner.write_to(w)
    }

    /// Deserializes a file written by [`Self::write_to`] (or by a plain
    /// [`VaFile`]; only the boundaries differ).
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<VaPlusFile> {
        Ok(VaPlusFile {
            inner: VaFile::read_from(r)?,
        })
    }

    /// Writes the file to `path`.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.inner.save(path)
    }

    /// Reads a file from `path`.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<VaPlusFile> {
        Ok(VaPlusFile {
            inner: VaFile::load(path)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::gen::{census_scaled, workload, QuerySpec};
    use ibis_core::{scan, MissingPolicy};

    #[test]
    fn exact_on_skewed_data() {
        let d = census_scaled(2_000, 21);
        let bits: Vec<u8> = d
            .columns()
            .iter()
            .map(|c| {
                // Force lossy codes so the quantizer actually matters.
                (default_bits(c.cardinality()).saturating_sub(2)).max(1)
            })
            .collect();
        let vap = VaPlusFile::with_bits(&d, &bits);
        let spec = QuerySpec {
            n_queries: 20,
            k: 4,
            global_selectivity: 0.02,
            policy: MissingPolicy::IsMatch,
            candidate_attrs: vec![],
        };
        for q in workload(&d, &spec, 3) {
            assert_eq!(vap.execute(&d, &q).unwrap(), scan::execute(&d, &q));
        }
    }

    #[test]
    fn fewer_refinements_than_uniform_on_skewed_data() {
        // The VA+ rationale: on Zipf data, equal-width bins concentrate the
        // hot values in one bin; equi-depth bins spread them, cutting the
        // candidate/refinement load for the same bit budget.
        let d = census_scaled(4_000, 22);
        let bits: Vec<u8> = d
            .columns()
            .iter()
            .map(|c| (default_bits(c.cardinality()).saturating_sub(3)).max(1))
            .collect();
        let va = VaFile::with_bits(&d, &bits);
        let vap = VaPlusFile::with_bits(&d, &bits);
        let spec = QuerySpec {
            n_queries: 30,
            k: 3,
            global_selectivity: 0.02,
            policy: MissingPolicy::IsNotMatch,
            candidate_attrs: (0..d.n_attrs())
                .filter(|&a| d.column(a).cardinality() >= 30)
                .collect(),
        };
        let (mut ref_uniform, mut ref_plus) = (0usize, 0usize);
        for q in workload(&d, &spec, 7) {
            let (ru, cu) = va.execute_with_cost(&d, &q).unwrap();
            let (rp, cp) = vap.execute_with_cost(&d, &q).unwrap();
            assert_eq!(ru, rp, "both must stay exact");
            ref_uniform += cu.rows_refined;
            ref_plus += cp.rows_refined;
        }
        assert!(
            ref_plus < ref_uniform,
            "VA+ should refine less on skewed data: {ref_plus} vs {ref_uniform}"
        );
    }

    #[test]
    fn same_size_as_uniform_for_same_bits() {
        let d = census_scaled(1_000, 23);
        let va = VaFile::build(&d);
        let vap = VaPlusFile::build(&d);
        assert_eq!(va.size_bytes(), vap.size_bytes());
        assert_eq!(va.row_bits(), vap.row_bits());
    }
}
