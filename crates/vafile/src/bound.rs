//! [`AccessMethod`] adapters for the VA families.
//!
//! A [`VaFile`] needs the base dataset at query time — refinement "reads the
//! actual database pages" — so the file alone cannot implement the
//! dataset-free [`AccessMethod`] surface. Binding a file to an
//! [`Arc<Dataset>`] closes over that dependency and yields a self-contained
//! access method the engine-layer registry can hold alongside the bitmap
//! indexes.

use crate::{VaFile, VaPlusFile};
use ibis_core::{AccessMethod, Dataset, RangeQuery, Result, RowSet, WorkCounters};
use std::sync::Arc;

/// A [`VaFile`] bound to its base dataset.
#[derive(Clone, Debug)]
pub struct BoundVaFile {
    file: VaFile,
    base: Arc<Dataset>,
}

/// A [`VaPlusFile`] bound to its base dataset.
#[derive(Clone, Debug)]
pub struct BoundVaPlusFile {
    file: VaPlusFile,
    base: Arc<Dataset>,
}

impl VaFile {
    /// Binds the file to the dataset it was built from, producing an
    /// [`AccessMethod`].
    ///
    /// # Panics
    /// Panics if `base` has a different row count than the file.
    pub fn bind(self, base: Arc<Dataset>) -> BoundVaFile {
        assert_eq!(base.n_rows(), self.n_rows(), "dataset/index row mismatch");
        BoundVaFile { file: self, base }
    }
}

impl VaPlusFile {
    /// Binds the file to the dataset it was built from, producing an
    /// [`AccessMethod`].
    ///
    /// # Panics
    /// Panics if `base` has a different row count than the file.
    pub fn bind(self, base: Arc<Dataset>) -> BoundVaPlusFile {
        assert_eq!(base.n_rows(), self.n_rows(), "dataset/index row mismatch");
        BoundVaPlusFile { file: self, base }
    }
}

impl BoundVaFile {
    /// The underlying VA-file.
    pub fn file(&self) -> &VaFile {
        &self.file
    }
}

impl BoundVaPlusFile {
    /// The underlying VA+-file.
    pub fn file(&self) -> &VaPlusFile {
        &self.file
    }
}

/// The filter scan reads `n` rows × `b_i + 1` bits per queried attribute
/// (the +1 absorbs decode and boundary-refinement work), in words.
fn estimate(file: &VaFile, query: &RangeQuery) -> f64 {
    let n = file.n_rows() as f64;
    query
        .predicates()
        .iter()
        .map(|p| match file.attrs.get(p.attr) {
            Some(a) => n * (a.bits as f64 + 1.0) / 64.0,
            None => f64::INFINITY,
        })
        .sum()
}

impl AccessMethod for BoundVaFile {
    fn name(&self) -> &'static str {
        "va-file"
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, WorkCounters)> {
        self.file.execute_with_cost(&self.base, query)
    }

    fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, WorkCounters)> {
        self.file
            .execute_with_cost_threads(&self.base, query, threads)
    }

    fn size_bytes(&self) -> usize {
        self.file.size_bytes()
    }

    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        estimate(&self.file, query)
    }
}

impl AccessMethod for BoundVaPlusFile {
    fn name(&self) -> &'static str {
        "va-plus-file"
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, WorkCounters)> {
        self.file.execute_with_cost(&self.base, query)
    }

    fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, WorkCounters)> {
        self.file
            .execute_with_cost_threads(&self.base, query, threads)
    }

    fn size_bytes(&self) -> usize {
        self.file.size_bytes()
    }

    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        estimate(self.file.inner(), query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::gen::census_scaled;
    use ibis_core::{scan, MissingPolicy, Predicate};

    #[test]
    fn bound_files_agree_with_unbound_and_scan() {
        let d = Arc::new(census_scaled(300, 90));
        let va = VaFile::build(&d).bind(Arc::clone(&d));
        let vap = VaPlusFile::build(&d).bind(Arc::clone(&d));
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(vec![Predicate::range(0, 1, 2)], policy).unwrap();
            let expect = scan::execute(&d, &q);
            assert_eq!(va.execute(&q).unwrap(), expect, "{policy}");
            assert_eq!(vap.execute(&q).unwrap(), expect, "{policy}");
            assert_eq!(va.execute_count(&q).unwrap(), expect.len());
        }
        assert_eq!(va.name(), "va-file");
        assert_eq!(vap.name(), "va-plus-file");
        assert!(va.size_bytes() > 0);
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        assert!(va.estimated_cost(&q).is_finite());
        assert!(va.estimated_cost(&q) > 0.0);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn bind_rejects_mismatched_dataset() {
        let d = census_scaled(100, 91);
        let other = Arc::new(census_scaled(50, 92));
        let _ = VaFile::build(&d).bind(other);
    }
}
