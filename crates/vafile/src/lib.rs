//! # ibis-vafile
//!
//! The paper's second index family (§4.5): **VA-files** (vector
//! approximations, Weber/Schek/Blott) adapted to incomplete databases.
//!
//! Each attribute `A_i` is quantized into `2^{b_i}` bins. The all-zeros code
//! `0^{b_i}` is **reserved for missing data**; the remaining `2^{b_i} − 1`
//! codes cover the value domain through a lookup table. The paper sets
//! `b_i = ⌈log₂(C_i + 1)⌉` (every value distinguishable, so the filter step
//! is already exact); [`VaFile::with_bits`] also supports coarser codes —
//! the classic lossy VA-file of the paper's Table 5/6 example — where a
//! refinement step against the actual data removes false positives.
//!
//! Query translation (§4.5): `v1 ≤ A_i ≤ v2` becomes
//! `VA(v1) ≤ VA(A_i) ≤ VA(v2)`, ORed with `VA(A_i) = 0^b` when missing data
//! is a match. Execution is a sequential scan of the packed approximation
//! file — the design that gives VA-files their dimensionality-robustness —
//! followed by refinement of boundary-bin candidates.
//!
//! [`VaPlusFile`] implements the paper's closing future-work item: VA+-style
//! equi-depth quantization for skewed data (its reference \[6\]), which evens
//! out bin populations and cuts the refinement workload.
//!
//! ```
//! use ibis_vafile::VaFile;
//! use ibis_core::{Cell, Dataset, MissingPolicy, Predicate, RangeQuery};
//!
//! // The paper's Table 5 example: C = 6, values {6, 1, 3, missing}.
//! let data = Dataset::from_rows(
//!     &[("a", 6)],
//!     &[vec![Cell::present(6)], vec![Cell::present(1)],
//!       vec![Cell::present(3)], vec![Cell::MISSING]],
//! )?;
//! let va = VaFile::with_bits(&data, &[2]); // the paper's 2-bit codes
//! let q = RangeQuery::new(vec![Predicate::range(0, 4, 5)], MissingPolicy::IsMatch)?;
//! assert_eq!(va.execute(&data, &q)?.rows(), &[3]); // only the missing row
//! # Ok::<(), ibis_core::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bound;
mod packed;
mod quantizer;
mod vafile;
mod vaplus;

pub use bound::{BoundVaFile, BoundVaPlusFile};
pub use packed::PackedMatrix;
pub use quantizer::Quantizer;
pub use vafile::{VaCost, VaFile};
pub use vaplus::VaPlusFile;
