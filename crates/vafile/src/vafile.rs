//! The VA-file index with missing-data support (§4.5).

use crate::{PackedMatrix, Quantizer};
use ibis_core::parallel::{partition, ExecPool};
use ibis_core::{Dataset, MissingPolicy, RangeQuery, Result, RowSet};

/// Per-attribute layout inside the packed approximation file.
#[derive(Clone, Debug)]
pub(crate) struct VaAttr {
    pub(crate) cardinality: u16,
    /// Field width `b_i` in bits; codes run `0` (missing) to `2^{b_i} − 1`.
    pub(crate) bits: u8,
    /// Bit offset of this attribute's field within a row.
    pub(crate) offset: usize,
    pub(crate) quantizer: Quantizer,
}

/// Work performed by one VA-file query — the machine-independent companion
/// to wall-clock time (the paper explains VA-file timing by the "about
/// 500,000 vector approximations" it must scan). An alias of the unified
/// [`ibis_core::WorkCounters`]; the VA families fill `approx_fields_read`,
/// `candidates`, `rows_refined`, `false_positives`, and `words_processed`.
pub type VaCost = ibis_core::WorkCounters;

/// The VA-file over an incomplete relation.
///
/// Build once from a [`Dataset`]; queries scan the packed approximations and
/// refine against the dataset (the in-memory stand-in for "reading actual
/// database pages"). With the paper's default `b_i = ⌈log₂(C_i + 1)⌉` the
/// approximation is lossless and refinement only fires on bins that would
/// need it — i.e. never — while [`VaFile::with_bits`] trades bits for
/// candidates exactly like the paper's Table 5 example.
#[derive(Clone, Debug)]
pub struct VaFile {
    pub(crate) attrs: Vec<VaAttr>,
    pub(crate) packed: PackedMatrix,
}

impl VaFile {
    /// Builds with the paper's default precision `b_i = ⌈log₂(C_i + 1)⌉`
    /// and uniform (equal-width) bins.
    pub fn build(dataset: &Dataset) -> VaFile {
        let bits: Vec<u8> = dataset
            .columns()
            .iter()
            .map(|c| default_bits(c.cardinality()))
            .collect();
        VaFile::with_bits(dataset, &bits)
    }

    /// Builds with explicit per-attribute code widths (each `1..=16`).
    /// Width `b` yields `2^b − 1` value bins (code 0 stays reserved for
    /// missing), so `b = 1` forces every value into one bin.
    ///
    /// # Panics
    /// Panics if `bits.len() != dataset.n_attrs()` or any width is 0 or >16.
    pub fn with_bits(dataset: &Dataset, bits: &[u8]) -> VaFile {
        let quantizers: Vec<Quantizer> = dataset
            .columns()
            .iter()
            .zip(bits)
            .map(|(col, &b)| {
                assert!((1..=16).contains(&b), "code width must be 1..=16 bits");
                Quantizer::uniform(
                    col.cardinality(),
                    ((1u32 << b) - 1).min(u16::MAX as u32) as u16,
                )
            })
            .collect();
        VaFile::with_quantizers(dataset, bits, quantizers)
    }

    pub(crate) fn with_quantizers(
        dataset: &Dataset,
        bits: &[u8],
        quantizers: Vec<Quantizer>,
    ) -> VaFile {
        assert_eq!(
            bits.len(),
            dataset.n_attrs(),
            "one code width per attribute"
        );
        let mut attrs = Vec::with_capacity(bits.len());
        let mut offset = 0usize;
        for ((col, &b), q) in dataset.columns().iter().zip(bits).zip(quantizers) {
            attrs.push(VaAttr {
                cardinality: col.cardinality(),
                bits: b,
                offset,
                quantizer: q,
            });
            offset += b as usize;
        }
        let mut packed = PackedMatrix::new(dataset.n_rows(), offset);
        for (a, col) in attrs.iter().zip(dataset.columns()) {
            for (row, &raw) in col.raw().iter().enumerate() {
                if raw != 0 {
                    packed.set(row, a.offset, a.bits as usize, a.quantizer.bin_of(raw));
                }
                // Missing stays the all-zeros code.
            }
        }
        VaFile { attrs, packed }
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.packed.n_rows()
    }

    /// Number of indexed attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Bits per approximation record (`Σ b_i`).
    pub fn row_bits(&self) -> usize {
        self.packed.row_bits()
    }

    /// Total index size: packed approximations plus lookup tables. The
    /// paper's Fig. 4 size metric.
    pub fn size_bytes(&self) -> usize {
        self.packed.size_bytes()
            + self
                .attrs
                .iter()
                .map(|a| a.quantizer.size_bytes())
                .sum::<usize>()
    }

    /// Appends one record to the approximation file (`O(k)` field writes).
    /// The quantizers are fixed at build time, so appended values use the
    /// existing bins (exactness is unaffected; only VA+ bin balance can
    /// drift until a rebuild).
    ///
    /// # Errors
    /// Rejects rows of the wrong width or with out-of-domain values,
    /// leaving the file unchanged.
    pub fn append_row(&mut self, row: &[ibis_core::Cell]) -> Result<()> {
        ibis_core::validate_row(row, |a| self.attrs[a].cardinality, self.attrs.len())?;
        self.packed.push_row();
        let row_id = self.packed.n_rows() - 1;
        for (&cell, a) in row.iter().zip(&self.attrs) {
            if let Some(v) = cell.value() {
                self.packed
                    .set(row_id, a.offset, a.bits as usize, a.quantizer.bin_of(v));
            }
        }
        Ok(())
    }

    /// The stored approximation code of (`row`, `attr`) — 0 means missing.
    pub fn code(&self, row: usize, attr: usize) -> u16 {
        let a = &self.attrs[attr];
        self.packed.get(row, a.offset, a.bits as usize)
    }

    /// Executes a query exactly (filter scan + refinement).
    ///
    /// `dataset` must be the dataset the file was built from; it plays the
    /// role of the database pages the paper reads during refinement.
    pub fn execute(&self, dataset: &Dataset, query: &RangeQuery) -> Result<RowSet> {
        Ok(self.execute_with_cost(dataset, query)?.0)
    }

    /// Executes a query, also returning scan/refinement counters.
    pub fn execute_with_cost(
        &self,
        dataset: &Dataset,
        query: &RangeQuery,
    ) -> Result<(RowSet, VaCost)> {
        self.execute_with_cost_threads(dataset, query, 1)
    }

    /// Executes a query with a row-range–partitioned parallel filter scan:
    /// up to `threads` workers each run the filter + refinement loop over a
    /// contiguous row slice, and the ordered partial results are
    /// concatenated. Rows and counters are identical to the sequential run
    /// for any thread count — every counter is a per-row sum, and the word
    /// total is derived once from the merged bit/refinement totals (summing
    /// per-partition `div_ceil`s would over-count).
    pub fn execute_with_cost_threads(
        &self,
        dataset: &Dataset,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, VaCost)> {
        query.validate_schema(self.attrs.len(), |a| self.attrs[a].cardinality)?;
        assert_eq!(
            dataset.n_rows(),
            self.n_rows(),
            "dataset/index row mismatch"
        );
        let plans = self.plan_predicates(query);
        let n = self.n_rows();
        // The whole filter+refine pass runs under one `va.scan` span; it
        // carries the derived word total, while each `va.chunk` below it
        // carries the per-slice counters — so a profile's span deltas sum
        // exactly to the final counters.
        let mut scan_span = ibis_obs::span("va.scan");
        let (parts, mut cost, bits_read) = if threads <= 1 || n < 2 {
            let (out, cost, bits) = self.scan_range(dataset, query, &plans, 0..n);
            (vec![out], cost, bits)
        } else {
            let partials = ExecPool::new(threads).map(partition(n, threads), |range| {
                self.scan_range(dataset, query, &plans, range)
            });
            let mut cost = VaCost::default();
            let mut bits_read = 0usize;
            let mut parts = Vec::with_capacity(partials.len());
            for (out, c, bits) in partials {
                cost.merge(c);
                bits_read += bits;
                parts.push(out);
            }
            (parts, cost, bits_read)
        };
        // Common work currency: approximation bits scanned plus the 16-bit
        // cells fetched during refinement, in 64-bit words.
        cost.words_processed =
            (bits_read + cost.rows_refined * query.dimensionality() * 16).div_ceil(64);
        if scan_span.is_recording() {
            let words_only = VaCost {
                words_processed: cost.words_processed,
                ..VaCost::default()
            };
            words_only.record_into(&mut scan_span);
        }
        drop(scan_span);
        let rows = RowSet::concat_sorted(parts.into_iter().map(RowSet::from_sorted));
        Ok((rows, cost))
    }

    /// Per-predicate bin intervals: VA(v1) ..= VA(v2), plus whether each
    /// boundary bin is exact (fully inside the value interval).
    fn plan_predicates(&self, query: &RangeQuery) -> Vec<Plan> {
        query
            .predicates()
            .iter()
            .map(|p| {
                let a = &self.attrs[p.attr];
                let (b1, b2) = (
                    a.quantizer.bin_of(p.interval.lo),
                    a.quantizer.bin_of(p.interval.hi),
                );
                Plan {
                    offset: a.offset,
                    bits: a.bits as usize,
                    b1,
                    b2,
                    needs_refine_low: !a.quantizer.bin_inside(b1, p.interval.lo, p.interval.hi),
                    needs_refine_high: !a.quantizer.bin_inside(b2, p.interval.lo, p.interval.hi),
                }
            })
            .collect()
    }

    /// One worker's share of the filter scan: filter + refinement over the
    /// row slice `rows`, returning matching ids, this slice's counters
    /// (`words_processed` left unset — the caller derives it from merged
    /// totals), and the approximation bits scanned.
    fn scan_range(
        &self,
        dataset: &Dataset,
        query: &RangeQuery,
        plans: &[Plan],
        rows: std::ops::Range<usize>,
    ) -> (Vec<u32>, VaCost, usize) {
        let policy = query.policy();
        let mut span = ibis_obs::span("va.chunk");
        span.add_field("rows", rows.len() as u64);
        let mut cost = VaCost::default();
        let mut out = Vec::new();
        let mut bits_read = 0usize;
        'rows: for row in rows {
            let mut boundary = false;
            for plan in plans {
                cost.approx_fields_read += 1;
                bits_read += plan.bits;
                let code = self.packed.get(row, plan.offset, plan.bits);
                if code == 0 {
                    // Missing: a filter-level match only under match
                    // semantics (the paper's `∨ VA(A_i) = 0^b` term).
                    if policy == MissingPolicy::IsNotMatch {
                        continue 'rows;
                    }
                } else {
                    if code < plan.b1 || code > plan.b2 {
                        continue 'rows;
                    }
                    if (code == plan.b1 && plan.needs_refine_low)
                        || (code == plan.b2 && plan.needs_refine_high)
                    {
                        boundary = true;
                    }
                }
            }
            cost.candidates += 1;
            if boundary {
                // Refinement: fetch the record and re-check exactly.
                cost.rows_refined += 1;
                if query.matches_row(dataset, row) {
                    out.push(row as u32);
                } else {
                    cost.false_positives += 1;
                }
            } else {
                out.push(row as u32);
            }
        }
        // `words_processed` is still zero here (derived from merged totals
        // by the caller), so the chunk span carries only per-slice work.
        cost.record_into(&mut span);
        (out, cost, bits_read)
    }
}

/// One predicate's compiled filter step: its field location in the packed
/// matrix and its bin interval (see [`VaFile::plan_predicates`]).
struct Plan {
    offset: usize,
    bits: usize,
    b1: u16,
    b2: u16,
    /// Candidate rows in these bins need refinement.
    needs_refine_low: bool,
    needs_refine_high: bool,
}

impl VaFile {
    const MAGIC: &'static [u8; 4] = b"IBVA";
    const VERSION: u16 = 1;

    /// Serializes the VA-file: the per-attribute layout, the lookup tables,
    /// and the packed approximation matrix.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use ibis_core::wire::*;
        write_header(w, Self::MAGIC, Self::VERSION)?;
        write_len(w, self.packed.n_rows())?;
        write_len(w, self.attrs.len())?;
        for a in &self.attrs {
            write_u16(w, a.cardinality)?;
            write_u8(w, a.bits)?;
            write_vec_u16(w, a.quantizer.uppers())?;
        }
        self.packed.write_payload(w)
    }

    /// Deserializes a VA-file written by [`Self::write_to`].
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<VaFile> {
        use crate::Quantizer;
        use ibis_core::wire::*;
        read_header(r, Self::MAGIC, Self::VERSION)?;
        let n_rows = read_len(r)?;
        let n_attrs = read_len(r)?;
        let mut attrs = Vec::with_capacity(n_attrs.min(1 << 20));
        let mut offset = 0usize;
        for _ in 0..n_attrs {
            let cardinality = read_u16(r)?;
            let bits = read_u8(r)?;
            if bits == 0 || bits > 16 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "code width outside 1..=16",
                ));
            }
            let uppers = read_vec_u16(r)?;
            let quantizer = Quantizer::from_uppers(uppers)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            if quantizer.cardinality() != cardinality || quantizer.n_bins() as u32 >= (1u32 << bits)
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "lookup table disagrees with cardinality or code width",
                ));
            }
            attrs.push(VaAttr {
                cardinality,
                bits,
                offset,
                quantizer,
            });
            offset += bits as usize;
        }
        let packed = crate::PackedMatrix::read_payload(r, n_rows, offset)?;
        Ok(VaFile { attrs, packed })
    }

    /// Writes the VA-file to `path` (buffered).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        use std::io::Write as _;
        w.flush()
    }

    /// Reads a VA-file from `path` (buffered).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<VaFile> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        VaFile::read_from(&mut r)
    }
}

/// The paper's default code width: `⌈log₂(C + 1)⌉`.
pub(crate) fn default_bits(cardinality: u16) -> u8 {
    let needed = cardinality as u32 + 1; // values plus the missing code
    (32 - (needed - 1).leading_zeros()).max(1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_core::{scan, Cell, Column, Predicate};

    fn m() -> Cell {
        Cell::MISSING
    }
    fn v(x: u16) -> Cell {
        Cell::present(x)
    }

    /// The paper's Table 5 example: values {6, 1, 3, missing}, C = 6, two
    /// bits per code.
    fn table5() -> Dataset {
        Dataset::from_rows(
            &[("a", 6)],
            &[vec![v(6)], vec![v(1)], vec![v(3)], vec![m()]],
        )
        .unwrap()
    }

    #[test]
    fn default_bits_formula() {
        assert_eq!(default_bits(1), 1);
        assert_eq!(default_bits(2), 2); // codes {0,1,2} need 2 bits
        assert_eq!(default_bits(3), 2);
        assert_eq!(default_bits(5), 3);
        assert_eq!(default_bits(6), 3);
        assert_eq!(default_bits(7), 3);
        assert_eq!(default_bits(100), 7);
        assert_eq!(default_bits(165), 8);
    }

    #[test]
    fn table5_codes_reproduced() {
        let d = table5();
        let va = VaFile::with_bits(&d, &[2]);
        // Table 5: record 1 (value 6) → 11, record 2 (1) → 01,
        // record 3 (3) → 10, record 4 (missing) → 00.
        assert_eq!(va.code(0, 0), 0b11);
        assert_eq!(va.code(1, 0), 0b01);
        assert_eq!(va.code(2, 0), 0b10);
        assert_eq!(va.code(3, 0), 0b00);
    }

    #[test]
    fn table5_query_filter_and_refine() {
        // Paper: query "value in [4,5]" under match semantics returns bins
        // {00, 10, 11} as candidates; refinement rejects record 1 (value 6)…
        // wait — bin 10 = values 3-4 and bin 11 = 5-6, so candidates are
        // records 1 (11), 3 (10), 4 (00); refinement keeps only record 4
        // plus any true 4/5 values. Verified against the scan.
        let d = table5();
        let va = VaFile::with_bits(&d, &[2]);
        let q = RangeQuery::new(vec![Predicate::range(0, 4, 5)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost) = va.execute_with_cost(&d, &q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        assert_eq!(rows.rows(), &[3]); // only the missing record matches
        assert_eq!(cost.candidates, 3); // records 0, 2, 3 pass the filter
        assert_eq!(cost.rows_refined, 2); // records 0 and 2 sit in boundary bins
        assert_eq!(cost.false_positives, 2);

        let q = q.with_policy(MissingPolicy::IsNotMatch);
        let (rows, cost) = va.execute_with_cost(&d, &q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        assert!(rows.is_empty());
        assert_eq!(cost.candidates, 2); // missing record no longer passes
    }

    #[test]
    fn default_precision_is_lossless() {
        // With b = ⌈log₂(C+1)⌉ every value has its own bin: no refinement.
        let d = table5();
        let va = VaFile::build(&d);
        assert_eq!(va.row_bits(), 3);
        for policy in MissingPolicy::ALL {
            for lo in 1..=6u16 {
                for hi in lo..=6u16 {
                    let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                    let (rows, cost) = va.execute_with_cost(&d, &q).unwrap();
                    assert_eq!(rows, scan::execute(&d, &q), "{policy} [{lo},{hi}]");
                    assert_eq!(cost.rows_refined, 0, "lossless codes never refine");
                }
            }
        }
    }

    #[test]
    fn lossy_codes_stay_exact_through_refinement() {
        let d = Dataset::new(vec![
            Column::from_raw("a", 50, (0..200).map(|i| (i % 51) as u16).collect()).unwrap(),
            Column::from_raw("b", 20, (0..200).map(|i| ((i * 7) % 21) as u16).collect()).unwrap(),
        ])
        .unwrap();
        let va = VaFile::with_bits(&d, &[3, 2]); // far below lossless
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![Predicate::range(0, 10, 30), Predicate::range(1, 5, 15)],
                policy,
            )
            .unwrap();
            let (rows, cost) = va.execute_with_cost(&d, &q).unwrap();
            assert_eq!(rows, scan::execute(&d, &q), "{policy}");
            assert!(cost.rows_refined > 0, "coarse codes must refine");
        }
    }

    #[test]
    fn multi_attribute_scan_reads_k_fields_per_row() {
        let d = Dataset::from_rows(
            &[("a", 4), ("b", 4), ("c", 4)],
            &[vec![v(1), v(2), v(3)], vec![v(4), m(), v(1)]],
        )
        .unwrap();
        let va = VaFile::build(&d);
        let q = RangeQuery::new(
            vec![Predicate::range(0, 1, 4), Predicate::range(1, 1, 4)],
            MissingPolicy::IsMatch,
        )
        .unwrap();
        let (_, cost) = va.execute_with_cost(&d, &q).unwrap();
        // 2 rows × 2 queried fields; attribute c is never touched.
        assert_eq!(cost.approx_fields_read, 4);
    }

    #[test]
    fn size_grows_slowly_with_cardinality() {
        // Fig. 4(a): VA size is logarithmic in C while bitmaps are linear.
        let n = 1000usize;
        let size_for = |c: u16| {
            let col = Column::from_raw(
                "a",
                c,
                (0..n).map(|i| (i % c as usize) as u16 + 1).collect(),
            )
            .unwrap();
            VaFile::build(&Dataset::new(vec![col]).unwrap()).size_bytes()
        };
        let (s2, s100) = (size_for(2), size_for(100));
        // 2 bits vs 7 bits per record: ratio 3.5, not 50.
        assert!(s100 < 5 * s2, "s2={s2} s100={s100}");
    }

    #[test]
    fn invalid_queries_rejected() {
        let d = table5();
        let va = VaFile::build(&d);
        let q = RangeQuery::new(vec![Predicate::point(2, 1)], MissingPolicy::IsMatch).unwrap();
        assert!(va.execute(&d, &q).is_err());
        let q = RangeQuery::new(vec![Predicate::point(0, 7)], MissingPolicy::IsMatch).unwrap();
        assert!(va.execute(&d, &q).is_err());
    }

    #[test]
    fn partitioned_scan_matches_sequential_rows_and_cost() {
        // Lossy codes so the partitioned path exercises refinement and the
        // word total mixes bits scanned with cells fetched.
        let d = Dataset::new(vec![
            Column::from_raw("a", 50, (0..100).map(|i| (i % 51) as u16).collect()).unwrap(),
            Column::from_raw("b", 20, (0..100).map(|i| ((i * 7) % 21) as u16).collect()).unwrap(),
        ])
        .unwrap();
        let va = VaFile::with_bits(&d, &[3, 2]);
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![Predicate::range(0, 10, 30), Predicate::range(1, 5, 15)],
                policy,
            )
            .unwrap();
            let seq = va.execute_with_cost(&d, &q).unwrap();
            for threads in [1, 2, 3, 8] {
                assert_eq!(
                    va.execute_with_cost_threads(&d, &q, threads).unwrap(),
                    seq,
                    "{policy} t={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_key_matches_all() {
        let d = table5();
        let va = VaFile::build(&d);
        let q = RangeQuery::new(vec![], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(va.execute(&d, &q).unwrap(), RowSet::all(4));
    }
}
