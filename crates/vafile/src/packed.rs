//! Bit-packed approximation storage.

/// A row-major matrix of bit-packed fields — the VA *file* itself.
///
/// Each row is `row_bits` wide and rows are laid out back to back in a
/// `u64` buffer, so a full scan walks memory sequentially exactly like the
/// paper's sequential read of the approximation file. Fields are written
/// once at build time and read with [`get`](PackedMatrix::get).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedMatrix {
    data: Vec<u64>,
    row_bits: usize,
    n_rows: usize,
}

impl PackedMatrix {
    /// Allocates an all-zeros matrix (`0…0` is the missing code, so rows
    /// start out "all missing"). A zero-width matrix (no attributes) is
    /// valid and empty.
    pub fn new(n_rows: usize, row_bits: usize) -> PackedMatrix {
        let total_bits = n_rows
            .checked_mul(row_bits)
            .expect("VA-file size overflows usize");
        PackedMatrix {
            data: vec![0; total_bits.div_ceil(64)],
            row_bits,
            n_rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Bits per row (`Σ_i b_i`).
    pub fn row_bits(&self) -> usize {
        self.row_bits
    }

    /// Heap bytes of the packed buffer — the paper's VA-file size metric.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * 8
    }

    /// Writes `width ≤ 16` bits of `value` at (`row`, `offset` bits into the
    /// row). The target bits must still be zero (write-once build).
    ///
    /// # Panics
    /// Panics on out-of-range coordinates or `value >= 2^width` (debug).
    pub fn set(&mut self, row: usize, offset: usize, width: usize, value: u16) {
        debug_assert!((1..=16).contains(&width));
        debug_assert!(offset + width <= self.row_bits, "field overflows the row");
        debug_assert!(row < self.n_rows, "row out of range");
        debug_assert!((value as u32) < (1u32 << width), "value wider than field");
        let start = row * self.row_bits + offset;
        let (wi, off) = (start / 64, start % 64);
        self.data[wi] |= (value as u64) << off;
        if off + width > 64 {
            self.data[wi + 1] |= (value as u64) >> (64 - off);
        }
    }

    /// Serializes the raw packed words (header-less; the owner writes
    /// shape information).
    pub fn write_payload(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        ibis_core::wire::write_vec_u64(w, &self.data)
    }

    /// Deserializes words written by [`Self::write_payload`] for a matrix
    /// of the given shape.
    pub fn read_payload(
        r: &mut impl std::io::Read,
        n_rows: usize,
        row_bits: usize,
    ) -> std::io::Result<PackedMatrix> {
        let data = ibis_core::wire::read_vec_u64(r)?;
        let total_bits = n_rows.checked_mul(row_bits).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "matrix size overflow")
        })?;
        if data.len() != total_bits.div_ceil(64) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "packed payload length disagrees with matrix shape",
            ));
        }
        let tail = total_bits % 64;
        if tail != 0 {
            if let Some(&last) = data.last() {
                if last >> tail != 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "set bits past the end of the packed matrix",
                    ));
                }
            }
        }
        Ok(PackedMatrix {
            data,
            row_bits,
            n_rows,
        })
    }

    /// Appends one all-zeros row (the all-missing code); fields are then
    /// written with [`Self::set`].
    pub fn push_row(&mut self) {
        self.n_rows += 1;
        let needed = (self.n_rows * self.row_bits).div_ceil(64);
        self.data.resize(needed, 0);
    }

    /// Reads `width ≤ 16` bits at (`row`, `offset`).
    #[inline]
    pub fn get(&self, row: usize, offset: usize, width: usize) -> u16 {
        debug_assert!(offset + width <= self.row_bits && row < self.n_rows);
        let start = row * self.row_bits + offset;
        let (wi, off) = (start / 64, start % 64);
        let mut bits = self.data[wi] >> off;
        if off + width > 64 {
            bits |= self.data[wi + 1] << (64 - off);
        }
        (bits & ((1u64 << width) - 1)) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_word() {
        let mut m = PackedMatrix::new(4, 10);
        m.set(0, 0, 3, 0b101);
        m.set(0, 3, 7, 0b1111111);
        m.set(3, 0, 3, 0b010);
        assert_eq!(m.get(0, 0, 3), 0b101);
        assert_eq!(m.get(0, 3, 7), 0b1111111);
        assert_eq!(m.get(3, 0, 3), 0b010);
        assert_eq!(m.get(1, 0, 3), 0); // untouched rows read as missing
    }

    #[test]
    fn fields_straddle_word_boundaries() {
        // 13-bit rows: row 5 starts at bit 65, fields cross the u64 seam.
        let mut m = PackedMatrix::new(8, 13);
        for row in 0..8 {
            m.set(row, 0, 6, (row as u16 * 7) % 64);
            m.set(row, 6, 7, (row as u16 * 11) % 128);
        }
        for row in 0..8 {
            assert_eq!(m.get(row, 0, 6), (row as u16 * 7) % 64, "row {row}");
            assert_eq!(m.get(row, 6, 7), (row as u16 * 11) % 128, "row {row}");
        }
    }

    #[test]
    fn sixteen_bit_fields() {
        let mut m = PackedMatrix::new(3, 16);
        m.set(1, 0, 16, u16::MAX);
        assert_eq!(m.get(1, 0, 16), u16::MAX);
        assert_eq!(m.get(0, 0, 16), 0);
        assert_eq!(m.get(2, 0, 16), 0);
    }

    #[test]
    fn size_accounting() {
        // 1000 rows × 9 bits = 9000 bits = 141 u64 words.
        let m = PackedMatrix::new(1000, 9);
        assert_eq!(m.size_bytes(), 9000usize.div_ceil(64) * 8);
        assert_eq!(m.n_rows(), 1000);
        assert_eq!(m.row_bits(), 9);
    }
}
