//! Value-domain quantization: the VA-file lookup table.

/// Maps domain values `1..=C` onto bins `1..=n_bins`; bin `0` is reserved
/// for missing data by the callers (this type never produces it).
///
/// Internally a sorted list of inclusive upper bounds, one per bin: bin `k`
/// covers `(upper[k-2], upper[k-1]]`. This single representation serves both
/// the uniform (equal-width) quantizer of the basic VA-file and the
/// equi-depth quantizer of the VA+ extension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quantizer {
    uppers: Vec<u16>,
}

impl Quantizer {
    /// Equal-width bins: `bin(v) = 1 + ⌊(v − 1)·n_bins / C⌋` — the lookup
    /// table of the paper's Table 6 (`C = 6`, 2 bits: `01 → 1-2`,
    /// `10 → 3-4`, `11 → 5-6`).
    ///
    /// # Panics
    /// Panics if `n_bins == 0` or `cardinality == 0`.
    pub fn uniform(cardinality: u16, n_bins: u16) -> Quantizer {
        assert!(
            n_bins > 0 && cardinality > 0,
            "need at least one bin and one value"
        );
        let n_bins = n_bins.min(cardinality);
        let uppers = (1..=n_bins as u32)
            .map(|k| (k * cardinality as u32 / n_bins as u32) as u16)
            .collect();
        Quantizer { uppers }
    }

    /// Equi-depth bins from a value histogram: bin boundaries are chosen so
    /// every bin holds roughly the same number of *present* rows. `counts[v]`
    /// is the number of rows with value `v` (`counts[0]`, the missing count,
    /// is ignored — missing has its own code).
    ///
    /// # Panics
    /// Panics if `n_bins == 0` or `counts` has no value slots.
    pub fn equi_depth(counts: &[usize], n_bins: u16) -> Quantizer {
        assert!(n_bins > 0, "need at least one bin");
        assert!(counts.len() >= 2, "counts must cover values 1..=C");
        let c = (counts.len() - 1) as u16;
        let n_bins = n_bins.min(c);
        let total: usize = counts[1..].iter().sum();
        if total == 0 {
            // Degenerate: no present values; fall back to uniform widths.
            return Quantizer::uniform(c, n_bins);
        }
        let mut uppers: Vec<u16> = Vec::with_capacity(n_bins as usize);
        let mut acc = 0u64;
        for v in 1..=c {
            let bins_done = uppers.len() as u32;
            if bins_done == n_bins as u32 {
                break;
            }
            acc += counts[v as usize] as u64;
            let bins_left = n_bins as u32 - bins_done; // including the open one
            let values_left = (c - v) as u32;
            // Close the open bin at `v` once its cumulative mass target is
            // reached (never closing the final bin early), or when forced
            // because each remaining value must close one remaining bin.
            let target = total as u64 * (bins_done as u64 + 1) / n_bins as u64;
            if (acc >= target && bins_done + 1 < n_bins as u32) || values_left < bins_left {
                uppers.push(v);
            }
        }
        debug_assert_eq!(uppers.len(), n_bins as usize);
        debug_assert_eq!(*uppers.last().expect("non-empty"), c);
        Quantizer { uppers }
    }

    /// Rebuilds a quantizer from its serialized upper bounds, validating
    /// that they are strictly increasing and start above zero.
    pub fn from_uppers(uppers: Vec<u16>) -> Result<Quantizer, String> {
        if uppers.is_empty() {
            return Err("quantizer needs at least one bin".into());
        }
        if uppers[0] == 0 {
            return Err("bin upper bounds start at 1".into());
        }
        if !uppers.windows(2).all(|w| w[0] < w[1]) {
            return Err("bin upper bounds must be strictly increasing".into());
        }
        Ok(Quantizer { uppers })
    }

    /// The inclusive per-bin upper bounds (the serialized lookup table).
    pub fn uppers(&self) -> &[u16] {
        &self.uppers
    }

    /// Number of bins.
    pub fn n_bins(&self) -> u16 {
        self.uppers.len() as u16
    }

    /// Cardinality of the underlying domain.
    pub fn cardinality(&self) -> u16 {
        *self.uppers.last().expect("at least one bin")
    }

    /// The bin (1-based) holding value `v`.
    ///
    /// # Panics
    /// Panics if `v` is 0 or above the domain.
    #[inline]
    pub fn bin_of(&self, v: u16) -> u16 {
        assert!(v >= 1 && v <= self.cardinality(), "value {v} out of domain");
        self.uppers.partition_point(|&u| u < v) as u16 + 1
    }

    /// The inclusive value range `(lo, hi)` covered by bin `k` (1-based).
    ///
    /// # Panics
    /// Panics if `k` is 0 or above [`Self::n_bins`].
    pub fn bin_range(&self, k: u16) -> (u16, u16) {
        assert!(k >= 1 && k <= self.n_bins(), "bin {k} out of range");
        let hi = self.uppers[k as usize - 1];
        let lo = if k == 1 {
            1
        } else {
            self.uppers[k as usize - 2] + 1
        };
        (lo, hi)
    }

    /// `true` if bin `k` lies entirely inside `[v1, v2]` — records in such
    /// bins are definite matches and skip refinement.
    pub fn bin_inside(&self, k: u16, v1: u16, v2: u16) -> bool {
        let (lo, hi) = self.bin_range(k);
        v1 <= lo && hi <= v2
    }

    /// Approximate memory footprint of the lookup table.
    pub fn size_bytes(&self) -> usize {
        self.uppers.len() * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_lookup_reproduced() {
        // Paper Table 6: C = 6, two bits → 3 value bins.
        let q = Quantizer::uniform(6, 3);
        assert_eq!(q.bin_range(1), (1, 2));
        assert_eq!(q.bin_range(2), (3, 4));
        assert_eq!(q.bin_range(3), (5, 6));
        assert_eq!(q.bin_of(1), 1);
        assert_eq!(q.bin_of(2), 1);
        assert_eq!(q.bin_of(3), 2);
        assert_eq!(q.bin_of(6), 3);
    }

    #[test]
    fn identity_when_bins_cover_domain() {
        let q = Quantizer::uniform(5, 7);
        assert_eq!(q.n_bins(), 5); // clamped to cardinality
        for v in 1..=5 {
            assert_eq!(q.bin_of(v), v);
            assert_eq!(q.bin_range(v), (v, v));
        }
    }

    #[test]
    fn bins_partition_domain() {
        for (c, b) in [(10u16, 3u16), (100, 7), (165, 31), (7, 7), (2, 1)] {
            let q = Quantizer::uniform(c, b);
            let mut next = 1u16;
            for k in 1..=q.n_bins() {
                let (lo, hi) = q.bin_range(k);
                assert_eq!(lo, next, "C={c} b={b} bin {k}");
                assert!(hi >= lo);
                next = hi + 1;
            }
            assert_eq!(next, c + 1);
            for v in 1..=c {
                let k = q.bin_of(v);
                let (lo, hi) = q.bin_range(k);
                assert!(lo <= v && v <= hi);
            }
        }
    }

    #[test]
    fn equi_depth_balances_mass() {
        // ~76% of mass on value 1 (Zipf-like): equi-depth isolates it.
        let counts = vec![0usize, 800, 50, 50, 50, 50, 50];
        let q = Quantizer::equi_depth(&counts, 3);
        assert_eq!(q.n_bins(), 3);
        assert_eq!(q.bin_range(1), (1, 1), "hot value gets its own bin");
        // Compare against uniform: bin 1 of uniform(6,3) covers 1..=2,
        // lumping 850 of 1050 rows together.
        let u = Quantizer::uniform(6, 3);
        assert_eq!(u.bin_range(1), (1, 2));
    }

    #[test]
    fn equi_depth_degenerates_gracefully() {
        // All mass missing → uniform fallback.
        let counts = vec![10usize, 0, 0, 0];
        let q = Quantizer::equi_depth(&counts, 2);
        assert_eq!(q.n_bins(), 2);
        assert_eq!(q.cardinality(), 3);
        // More bins than values → one value per bin.
        let counts = vec![0usize, 5, 5];
        let q = Quantizer::equi_depth(&counts, 8);
        assert_eq!(q.n_bins(), 2);
    }

    #[test]
    fn bin_inside_detects_interior_bins() {
        let q = Quantizer::uniform(10, 5); // bins of width 2
        assert!(q.bin_inside(2, 3, 6)); // bin 2 = [3,4] ⊆ [3,6]
        assert!(!q.bin_inside(3, 3, 5)); // bin 3 = [5,6] ⊄ [3,5]
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn zero_value_rejected() {
        Quantizer::uniform(5, 5).bin_of(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn equi_depth_always_partitions_domain(
            counts in proptest::collection::vec(0usize..500, 2..40),
            n_bins in 1u16..20,
        ) {
            // counts[0] = missing; values 1..=C.
            let c = (counts.len() - 1) as u16;
            let q = Quantizer::equi_depth(&counts, n_bins);
            prop_assert_eq!(q.cardinality(), c);
            prop_assert!(q.n_bins() <= n_bins.min(c));
            // Bins tile 1..=C with no gaps or overlaps.
            let mut next = 1u16;
            for k in 1..=q.n_bins() {
                let (lo, hi) = q.bin_range(k);
                prop_assert_eq!(lo, next);
                prop_assert!(hi >= lo);
                next = hi + 1;
            }
            prop_assert_eq!(next, c + 1);
            // bin_of is consistent with bin_range.
            for v in 1..=c {
                let k = q.bin_of(v);
                let (lo, hi) = q.bin_range(k);
                prop_assert!(lo <= v && v <= hi);
            }
        }

        #[test]
        fn uniform_always_partitions_domain(c in 1u16..300, n_bins in 1u16..40) {
            let q = Quantizer::uniform(c, n_bins);
            let mut next = 1u16;
            for k in 1..=q.n_bins() {
                let (lo, hi) = q.bin_range(k);
                prop_assert_eq!(lo, next);
                next = hi + 1;
            }
            prop_assert_eq!(next, c + 1);
        }

        #[test]
        fn serialization_roundtrip(c in 1u16..200, n_bins in 1u16..30) {
            let q = Quantizer::uniform(c, n_bins);
            let back = Quantizer::from_uppers(q.uppers().to_vec()).unwrap();
            prop_assert_eq!(back, q);
        }
    }
}
