//! Machine-independent query-cost accounting.
//!
//! The paper measures query execution time in milliseconds on 2005 hardware;
//! wall-clock shapes on other machines are noisy, so alongside timing the
//! benchmark harness reports *work counters*: how many bitmaps a query
//! touched and how many logical operations it performed. The paper's own
//! analysis is phrased in exactly these terms ("the number of bitvectors
//! used in the worst case … is `min(AS, 1 − AS)·C + 1`"; BRE uses "between
//! 1 and 3 bitmaps per query dimension").
//!
//! Since the engine-layer unification the counter type itself lives in
//! [`ibis_core::WorkCounters`], shared by every access method in the
//! workspace; `QueryCost` remains as the bitmap-flavoured name for it.

/// Work counters for bitmap query execution — an alias of the unified
/// [`ibis_core::WorkCounters`]; the bitmap indexes fill
/// `bitmaps_accessed`, `logical_ops`, and `words_processed`.
pub type QueryCost = ibis_core::WorkCounters;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_accumulates_like_the_unified_type() {
        let mut c = QueryCost::zero();
        c.read_bitmap();
        c.read_bitmaps(2);
        c.op();
        assert_eq!(c.bitmaps_accessed, 3);
        assert_eq!(c.logical_ops, 1);
        let d = c + c;
        assert_eq!(d.bitmaps_accessed, 6);
        let mut e = QueryCost::zero();
        e += d;
        assert_eq!(e, d);
        // The alias really is the engine-layer type.
        let w: ibis_core::WorkCounters = e;
        assert_eq!(w.logical_ops, 2);
    }
}
