//! Machine-independent query-cost accounting.
//!
//! The paper measures query execution time in milliseconds on 2005 hardware;
//! wall-clock shapes on other machines are noisy, so alongside timing the
//! benchmark harness reports *work counters*: how many bitmaps a query
//! touched and how many logical operations it performed. The paper's own
//! analysis is phrased in exactly these terms ("the number of bitvectors
//! used in the worst case … is `min(AS, 1 − AS)·C + 1`"; BRE uses "between
//! 1 and 3 bitmaps per query dimension").

/// Work performed while executing one query (or one interval).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Stored bitmaps read (each counted once per read, as the paper counts
    /// "bitvectors used").
    pub bitmaps_accessed: usize,
    /// Logical operations (AND/OR/XOR/NOT) executed.
    pub logical_ops: usize,
}

impl QueryCost {
    /// Zero cost.
    pub fn zero() -> QueryCost {
        QueryCost::default()
    }

    /// Records a stored-bitmap read.
    #[inline]
    pub fn read_bitmap(&mut self) {
        self.bitmaps_accessed += 1;
    }

    /// Records `n` stored-bitmap reads.
    #[inline]
    pub fn read_bitmaps(&mut self, n: usize) {
        self.bitmaps_accessed += n;
    }

    /// Records one logical operation.
    #[inline]
    pub fn op(&mut self) {
        self.logical_ops += 1;
    }
}

impl std::ops::Add for QueryCost {
    type Output = QueryCost;
    fn add(self, rhs: QueryCost) -> QueryCost {
        QueryCost {
            bitmaps_accessed: self.bitmaps_accessed + rhs.bitmaps_accessed,
            logical_ops: self.logical_ops + rhs.logical_ops,
        }
    }
}

impl std::ops::AddAssign for QueryCost {
    fn add_assign(&mut self, rhs: QueryCost) {
        self.bitmaps_accessed += rhs.bitmaps_accessed;
        self.logical_ops += rhs.logical_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut c = QueryCost::zero();
        c.read_bitmap();
        c.read_bitmaps(2);
        c.op();
        assert_eq!(
            c,
            QueryCost {
                bitmaps_accessed: 3,
                logical_ops: 1
            }
        );
        let d = c + c;
        assert_eq!(d.bitmaps_accessed, 6);
        let mut e = QueryCost::zero();
        e += d;
        assert_eq!(e, d);
    }
}
