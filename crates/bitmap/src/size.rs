//! Index-size accounting shared by both bitmap encodings.

/// Size of one attribute's bitmap set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttrSize {
    /// Attribute index.
    pub attr: usize,
    /// Number of stored bitmaps.
    pub n_bitmaps: usize,
    /// Encoded bytes actually stored.
    pub bytes: usize,
    /// Bytes a verbatim (uncompressed) copy of the same bitmaps would take:
    /// `n_bitmaps × ceil(n_rows / 8)` — the denominator of the paper's
    /// compression ratios.
    pub uncompressed_bytes: usize,
}

impl AttrSize {
    pub(crate) fn new(attr: usize, n_bitmaps: usize, bytes: usize, n_rows: usize) -> AttrSize {
        AttrSize {
            attr,
            n_bitmaps,
            bytes,
            uncompressed_bytes: n_bitmaps * n_rows.div_ceil(8),
        }
    }

    /// `bytes / uncompressed_bytes`; below 1 means the encoding saved space.
    pub fn compression_ratio(&self) -> f64 {
        if self.uncompressed_bytes == 0 {
            1.0
        } else {
            self.bytes as f64 / self.uncompressed_bytes as f64
        }
    }
}

/// Whole-index size accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizeReport {
    /// Per-attribute entries, in attribute order.
    pub per_attr: Vec<AttrSize>,
}

impl SizeReport {
    /// Total encoded bytes.
    pub fn total_bytes(&self) -> usize {
        self.per_attr.iter().map(|a| a.bytes).sum()
    }

    /// Total verbatim-bitmap bytes.
    pub fn total_uncompressed_bytes(&self) -> usize {
        self.per_attr.iter().map(|a| a.uncompressed_bytes).sum()
    }

    /// Overall compression ratio.
    pub fn compression_ratio(&self) -> f64 {
        let u = self.total_uncompressed_bytes();
        if u == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / u as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let a = AttrSize::new(0, 4, 10, 80); // uncompressed = 4 * 10 = 40
        assert_eq!(a.uncompressed_bytes, 40);
        assert!((a.compression_ratio() - 0.25).abs() < 1e-12);
        let r = SizeReport {
            per_attr: vec![a, AttrSize::new(1, 1, 30, 80)],
        };
        assert_eq!(r.total_bytes(), 40);
        assert_eq!(r.total_uncompressed_bytes(), 50);
        assert!((r.compression_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_ratio_one() {
        let r = SizeReport { per_attr: vec![] };
        assert_eq!(r.compression_ratio(), 1.0);
        assert_eq!(r.total_bytes(), 0);
    }
}
