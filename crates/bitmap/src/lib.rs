//! # ibis-bitmap
//!
//! The paper's primary contribution: bitmap indexes adapted to incomplete
//! databases (§4.1–§4.4 of *"Indexing Incomplete Databases"*, EDBT 2006).
//!
//! Two encodings are provided, both generic over the bit-vector backend
//! ([`ibis_bitvec::BitStore`]: plain, WAH, or BBC):
//!
//! * [`EqualityBitmapIndex`] (**BEE**) — one bitmap per attribute value,
//!   plus an extra bitmap `B_{i,0}` flagging missing rows for attributes
//!   that have them (§4.2). Interval evaluation follows Fig. 2: OR the
//!   in-range bitmaps (adding `B_0` under match semantics), or complement
//!   the out-of-range OR when the range covers more than half the domain.
//! * [`RangeBitmapIndex`] (**BRE**) — bitmap `B_{i,j}` holds rows with
//!   value ≤ j, with missing treated as the smallest value (below 1), so
//!   missing rows are set in *every* bitmap and `B_{i,0}` doubles as the
//!   missing flag (§4.3). Interval evaluation follows Fig. 3 and touches at
//!   most 3 bitmaps per dimension (match) or 2 (not-match).
//!
//! Both indexes answer queries *exactly* under either [`MissingPolicy`];
//! differential tests against the sequential scan are in the crate tests and
//! in the workspace-level integration suite.
//!
//! Extras beyond the paper's core:
//!
//! * [`AdaptiveBitmapIndex`] — the equality encoding stored in
//!   [`ibis_bitvec::Adaptive`] roaring-style containers, with a
//!   container-exact work-accounting driver (see its module docs);
//! * [`cost::QueryCost`] — machine-independent work counters (bitmaps
//!   touched, logical ops) used by the benchmark harness alongside
//!   wall-clock time;
//! * [`rejected`] — the in-band missing encodings the paper considers and
//!   rejects in §4.2/§4.3, implemented to demonstrate the paper's
//!   objections;
//! * [`reorder`] — row-reordering heuristics (the paper's future-work item
//!   for improving run-length compression).
//!
//! ```
//! use ibis_bitmap::RangeBitmapIndex;
//! use ibis_bitvec::Wah;
//! use ibis_core::{AccessMethod, Cell, Dataset, MissingPolicy, Predicate, RangeQuery};
//!
//! let data = Dataset::from_rows(
//!     &[("severity", 5)],
//!     &[vec![Cell::present(4)], vec![Cell::MISSING], vec![Cell::present(1)]],
//! )?;
//! let bre = RangeBitmapIndex::<Wah>::build(&data);
//! let q = RangeQuery::new(vec![Predicate::range(0, 3, 5)], MissingPolicy::IsMatch)?;
//! assert_eq!(bre.execute(&q)?.rows(), &[0, 1]); // row 1 matches via missing
//! # Ok::<(), ibis_core::Error>(())
//! ```
//!
//! [`MissingPolicy`]: ibis_core::MissingPolicy

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive;
mod bee;
mod bie;
mod bre;
pub mod cost;
mod decomposed;
mod engine;
pub mod rejected;
pub mod reorder;
pub mod size;

pub use adaptive::AdaptiveBitmapIndex;
pub use bee::EqualityBitmapIndex;
pub use bie::IntervalBitmapIndex;
pub use bre::RangeBitmapIndex;
pub use cost::QueryCost;
pub use decomposed::DecomposedBitmapIndex;
pub use size::{AttrSize, SizeReport};

use ibis_bitvec::{BitStore, BitVec64};
use ibis_core::Column;

/// ORs a sequence of stored bitmaps, counting reads and ops — the shared
/// inner step of equality-style interval evaluation.
pub(crate) fn or_all<'a, B: BitStore + 'a>(
    bitmaps: impl Iterator<Item = &'a B>,
    cost: &mut cost::QueryCost,
) -> Option<B> {
    let mut acc: Option<B> = None;
    for b in bitmaps {
        cost.read_bitmap();
        acc = Some(match acc {
            None => b.clone(),
            Some(x) => {
                cost.op();
                x.or(b)
            }
        });
    }
    acc
}

/// Reads and validates the shared index-file preamble (magic, version,
/// backend name) and returns `(n_rows, n_attrs)`.
pub(crate) fn read_index_preamble<B: BitStore>(
    r: &mut impl std::io::Read,
    magic: &'static [u8; 4],
    version: u16,
) -> std::io::Result<(usize, usize)> {
    use ibis_core::wire::*;
    read_header(r, magic, version)?;
    let backend = read_str(r)?;
    if backend != B::backend_name() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "index stored with backend {backend:?}, loading as {:?}",
                B::backend_name()
            ),
        ));
    }
    Ok((read_len(r)?, read_len(r)?))
}

/// The shared query driver: evaluates every predicate's interval and ANDs
/// the results (§4.1's "ANDing the answers together"), charging one logical
/// op per AND. `None` means an empty search key (all rows match).
pub(crate) fn fold_query<B: BitStore>(
    query: &ibis_core::RangeQuery,
    cost: &mut cost::QueryCost,
    mut eval: impl FnMut(usize, ibis_core::Interval, &mut cost::QueryCost) -> B,
) -> Option<B> {
    let mut acc: Option<B> = None;
    for p in query.predicates() {
        let iv = eval(p.attr, p.interval, cost);
        acc = Some(match acc {
            None => iv,
            Some(x) => {
                cost.op();
                x.and(&iv)
            }
        });
    }
    acc
}

/// Builds the equality bit vectors of one column: `out[0]` flags missing
/// rows, `out[v]` flags rows with value `v`. Shared by both encodings (BRE
/// derives its threshold bitmaps by prefix-OR).
pub(crate) fn equality_bitvecs(column: &Column) -> Vec<BitVec64> {
    let n = column.len();
    let c = column.cardinality() as usize;
    let mut out = vec![BitVec64::zeros(n); c + 1];
    for (row, &raw) in column.raw().iter().enumerate() {
        out[raw as usize].set(row, true);
    }
    out
}
