//! Adaptive-container equality index — equality encoding (§4.2) over the
//! [`Adaptive`] roaring-style backend, with *exact* work accounting.
//!
//! The WAH/BBC families report `words_processed` derived from the §6 rule
//! (every bitmap read or combined is charged the uncompressed
//! `⌈n_rows/64⌉` words). The adaptive backend can do better: every
//! container operation knows exactly how many payload words each operand
//! holds and what shape (array / bitmap / run) it is, so this index runs
//! its own copy of the fetch/AND-reduce driver and fills
//! `words_processed` with the words the kernels *actually* touched, plus
//! the per-kind [`ibis_core::WorkCounters::containers_array`] /
//! `containers_bitmap` / `containers_run` counts. The per-phase span
//! deltas (`bitmap.fetch`, `bitmap.and_reduce`) carry the same exact
//! numbers, so a `query --profile` breakdown sums to the final counters
//! field for field — the same invariant the derived-words families keep,
//! but over measured work instead of a bound.

use crate::cost::QueryCost;
use crate::engine::BitmapExec;
use crate::size::{AttrSize, SizeReport};
use ibis_bitvec::{Adaptive, BitStore, OpTally};
use ibis_core::parallel::ExecPool;
use ibis_core::{AccessMethod, Dataset, Interval, MissingPolicy, RangeQuery, Result, RowSet};

/// Folds a container-op tally into the query's work counters.
fn charge(cost: &mut QueryCost, t: &OpTally) {
    cost.words_processed = cost.words_processed.saturating_add(t.words as usize);
    cost.containers_array = cost.containers_array.saturating_add(t.array as usize);
    cost.containers_bitmap = cost.containers_bitmap.saturating_add(t.bitmap as usize);
    cost.containers_run = cost.containers_run.saturating_add(t.run as usize);
}

/// Reads one stored bitmap without combining it (the `acc = clone` case),
/// charging its containers as touched work.
fn read_counted(b: &Adaptive, cost: &mut QueryCost) -> Adaptive {
    let mut t = OpTally::default();
    b.tally_read(&mut t);
    charge(cost, &t);
    b.clone()
}

/// [`crate::or_all`] with container-exact accounting.
fn or_all_counted<'a>(
    bitmaps: impl Iterator<Item = &'a Adaptive>,
    cost: &mut QueryCost,
) -> Option<Adaptive> {
    let mut acc: Option<Adaptive> = None;
    for b in bitmaps {
        cost.read_bitmap();
        acc = Some(match acc {
            None => read_counted(b, cost),
            Some(x) => {
                cost.op();
                let mut t = OpTally::default();
                let r = x.or_counted(b, &mut t);
                charge(cost, &t);
                r
            }
        });
    }
    acc
}

/// Equality-encoded bitmap index stored in [`Adaptive`] containers.
///
/// Same bitmap set and Fig. 2 evaluation as
/// [`crate::EqualityBitmapIndex`]`::<Adaptive>` would give, but with its
/// own query driver so the counters are container-exact (see the module
/// docs). Registered with the planner as `"bitmap-adaptive"`.
///
/// ```
/// use ibis_bitmap::AdaptiveBitmapIndex;
/// use ibis_core::{AccessMethod, Cell, Dataset, MissingPolicy, Predicate, RangeQuery};
///
/// let data = Dataset::from_rows(
///     &[("grade", 5)],
///     &[vec![Cell::present(4)], vec![Cell::MISSING], vec![Cell::present(1)]],
/// )?;
/// let idx = AdaptiveBitmapIndex::build(&data);
/// let q = RangeQuery::new(vec![Predicate::range(0, 3, 5)], MissingPolicy::IsMatch)?;
/// let (rows, cost) = idx.execute_with_cost(&q)?;
/// assert_eq!(rows.rows(), &[0, 1]); // row 1 matches via missing
/// // Exact accounting: every touched container is classified by shape.
/// assert_eq!(
///     cost.containers_array + cost.containers_bitmap + cost.containers_run,
///     cost.bitmaps_accessed + cost.logical_ops,
/// );
/// # Ok::<(), ibis_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct AdaptiveBitmapIndex {
    attrs: Vec<AdaptiveAttr>,
    n_rows: usize,
}

#[derive(Clone, Debug)]
struct AdaptiveAttr {
    cardinality: u16,
    /// `B_{i,0}`; `None` when the column has no missing rows.
    missing: Option<Adaptive>,
    /// `values[v-1]` = `B_{i,v}`.
    values: Vec<Adaptive>,
}

impl AdaptiveBitmapIndex {
    /// Builds the index over every column of `dataset`.
    pub fn build(dataset: &Dataset) -> Self {
        let attrs = dataset.columns().iter().map(Self::build_attr).collect();
        AdaptiveBitmapIndex {
            attrs,
            n_rows: dataset.n_rows(),
        }
    }

    fn build_attr(col: &ibis_core::Column) -> AdaptiveAttr {
        let mut bitvecs = crate::equality_bitvecs(col);
        let values_bv = bitvecs.split_off(1);
        let missing_bv = bitvecs.pop().expect("index 0 is the missing bitmap");
        AdaptiveAttr {
            cardinality: col.cardinality(),
            missing: (missing_bv.count_ones() > 0).then(|| Adaptive::from_bitvec(&missing_bv)),
            values: values_bv.iter().map(Adaptive::from_bitvec).collect(),
        }
    }

    /// Like [`Self::build`], but fanning columns over `n_threads` OS threads.
    pub fn build_parallel(dataset: &Dataset, n_threads: usize) -> Self {
        let attrs = ibis_core::parallel::parallel_map(
            dataset.columns().iter().collect(),
            n_threads,
            Self::build_attr,
        );
        AdaptiveBitmapIndex {
            attrs,
            n_rows: dataset.n_rows(),
        }
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of indexed attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Total number of stored bitmaps (`Σ_i C_i` plus one per attribute
    /// with missing data).
    pub fn n_bitmaps(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| a.values.len() + usize::from(a.missing.is_some()))
            .sum()
    }

    /// Appends one record in place (same contract as
    /// [`crate::EqualityBitmapIndex::append_row`]): every stored bitmap
    /// grows by one bit; the first missing value on a previously-complete
    /// attribute materializes its `B_0`.
    ///
    /// # Errors
    /// Rejects rows of the wrong width or with out-of-domain values,
    /// leaving the index unchanged.
    pub fn append_row(&mut self, row: &[ibis_core::Cell]) -> Result<()> {
        ibis_core::validate_row(row, |a| self.attrs[a].cardinality, self.attrs.len())?;
        for (&cell, a) in row.iter().zip(&mut self.attrs) {
            let raw = cell.raw();
            if raw == 0 && a.missing.is_none() {
                a.missing = Some(Adaptive::zeros(self.n_rows));
            }
            if let Some(m) = &mut a.missing {
                m.push_bit(raw == 0);
            }
            for (j, b) in a.values.iter_mut().enumerate() {
                b.push_bit(raw as usize == j + 1);
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Per-attribute and total size accounting.
    pub fn size_report(&self) -> SizeReport {
        let per_attr = self
            .attrs
            .iter()
            .enumerate()
            .map(|(attr, a)| {
                let n_bitmaps = a.values.len() + usize::from(a.missing.is_some());
                let bytes = a.values.iter().map(BitStore::size_bytes).sum::<usize>()
                    + a.missing.as_ref().map_or(0, BitStore::size_bytes);
                AttrSize::new(attr, n_bitmaps, bytes, self.n_rows)
            })
            .collect();
        SizeReport { per_attr }
    }

    /// Total bytes of all stored bitmaps.
    pub fn size_bytes(&self) -> usize {
        self.size_report().total_bytes()
    }

    /// How many stored containers currently sit in each shape, as
    /// `(array, bitmap, run)` — the census the containers experiment and
    /// `ibis index --stats` report.
    pub fn container_census(&self) -> (usize, usize, usize) {
        let mut total = (0, 0, 0);
        for a in &self.attrs {
            for b in a.values.iter().chain(a.missing.iter()) {
                let (ar, bm, rn) = b.kind_counts();
                total.0 += ar;
                total.1 += bm;
                total.2 += rn;
            }
        }
        total
    }

    /// Evaluates one interval over one attribute (Fig. 2), accumulating
    /// container-exact work counters into `cost`.
    ///
    /// # Panics
    /// Panics if `attr` or the interval is out of range; [`Self::execute`]
    /// validates first.
    pub fn evaluate_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> Adaptive {
        let a = &self.attrs[attr];
        let c = a.cardinality as usize;
        let (v1, v2) = (iv.lo as usize, iv.hi as usize);
        assert!(
            v1 >= 1 && v2 <= c,
            "interval [{v1},{v2}] outside domain 1..={c}"
        );

        // Fig. 2, same side selection as the BEE family: OR the smaller of
        // the in-range / out-of-range bitmap sets, complementing the latter.
        let width = v2 - v1 + 1;
        if width <= c - width {
            let mut acc = or_all_counted(a.values[v1 - 1..v2].iter(), cost)
                .expect("in-range set is non-empty");
            if policy == MissingPolicy::IsMatch {
                if let Some(m) = &a.missing {
                    cost.read_bitmap();
                    cost.op();
                    let mut t = OpTally::default();
                    acc = acc.or_counted(m, &mut t);
                    charge(cost, &t);
                }
            }
            acc
        } else {
            let outside = a.values[..v1 - 1].iter().chain(a.values[v2..].iter());
            let mut acc = or_all_counted(outside, cost);
            if policy == MissingPolicy::IsNotMatch {
                // Missing rows are 0 in every value bitmap, so the plain
                // complement would (re-)include them; OR `B_0` in first.
                if let Some(m) = &a.missing {
                    cost.read_bitmap();
                    acc = Some(match acc {
                        Some(x) => {
                            cost.op();
                            let mut t = OpTally::default();
                            let r = x.or_counted(m, &mut t);
                            charge(cost, &t);
                            r
                        }
                        None => read_counted(m, cost),
                    });
                }
            }
            match acc {
                Some(x) => {
                    cost.op();
                    // NOT reads every container of its operand once.
                    let mut t = OpTally::default();
                    x.tally_read(&mut t);
                    charge(cost, &t);
                    x.not()
                }
                None => Adaptive::ones(self.n_rows), // full-domain range
            }
        }
    }

    /// Executes a query, also returning the container-exact work counters.
    ///
    /// Structured like the shared `engine` driver — a `bitmap.fetch`
    /// span per predicate and one `bitmap.and_reduce` span — but the span
    /// deltas and the final counters carry *measured* `words_processed`
    /// (no `finish_bitmap_words` derivation), so profile phases still sum
    /// exactly to the query total.
    pub fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        query.validate_schema(self.n_attrs(), |a| self.attrs[a].cardinality)?;
        let mut cost = QueryCost::zero();
        let mut answers: Vec<Adaptive> = Vec::with_capacity(query.dimensionality());
        for p in query.predicates() {
            let mut span = ibis_obs::span("bitmap.fetch");
            let mut c = QueryCost::zero();
            let b = self.evaluate_interval(p.attr, p.interval, query.policy(), &mut c);
            span.add_field("attr", p.attr as u64);
            c.record_into(&mut span);
            cost += c;
            answers.push(b);
        }
        let acc = self.and_reduce_counted(answers, &mut cost);
        let rows = match acc {
            None => RowSet::all(self.n_rows as u32),
            Some(b) => RowSet::from_sorted(b.ones_positions()),
        };
        Ok((rows, cost))
    }

    /// ANDs the per-predicate answers in predicate order under a
    /// `bitmap.and_reduce` span, charging exact per-container work.
    ///
    /// Sequential on purpose, even in the threaded path: a tree reduce
    /// would combine different *intermediate* shapes than the left fold,
    /// and the exact tallies would then depend on the thread count. The
    /// reduce is `k − 1` ANDs over already-compressed answers — the cheap
    /// tail of the query — so fetch-side parallelism is preserved and the
    /// counters stay degree-invariant.
    fn and_reduce_counted(&self, answers: Vec<Adaptive>, cost: &mut QueryCost) -> Option<Adaptive> {
        if answers.is_empty() {
            return None;
        }
        let mut span = ibis_obs::span("bitmap.and_reduce");
        let mut rc = QueryCost::zero();
        let mut it = answers.into_iter();
        let first = it.next().expect("non-empty");
        let acc = it.fold(first, |a, b| {
            rc.op();
            let mut t = OpTally::default();
            let r = a.and_counted(&b, &mut t);
            charge(&mut rc, &t);
            r
        });
        rc.record_into(&mut span);
        *cost += rc;
        Some(acc)
    }

    fn execute_with_cost_threads_impl(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, QueryCost)> {
        if threads <= 1 || query.dimensionality() < 2 {
            return self.execute_with_cost(query);
        }
        query.validate_schema(self.n_attrs(), |a| self.attrs[a].cardinality)?;
        let policy = query.policy();
        let pool = ExecPool::new(threads);
        let partials: Vec<(Adaptive, QueryCost)> = pool.map(query.predicates().to_vec(), |p| {
            let mut span = ibis_obs::span("bitmap.fetch");
            let mut c = QueryCost::zero();
            let b = self.evaluate_interval(p.attr, p.interval, policy, &mut c);
            span.add_field("attr", p.attr as u64);
            c.record_into(&mut span);
            (b, c)
        });
        let mut cost = QueryCost::zero();
        let mut answers = Vec::with_capacity(partials.len());
        for (b, c) in partials {
            cost += c;
            answers.push(b);
        }
        let acc = self.and_reduce_counted(answers, &mut cost);
        let rows = match acc {
            None => RowSet::all(self.n_rows as u32),
            Some(b) => RowSet::from_sorted(b.ones_positions()),
        };
        Ok((rows, cost))
    }
}

impl BitmapExec for AdaptiveBitmapIndex {
    type Store = Adaptive;

    fn exec_rows(&self) -> usize {
        self.n_rows
    }

    fn exec_attrs(&self) -> usize {
        self.attrs.len()
    }

    fn exec_cardinality(&self, attr: usize) -> u16 {
        self.attrs[attr].cardinality
    }

    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> Adaptive {
        self.evaluate_interval(attr, iv, policy, cost)
    }
}

impl AccessMethod for AdaptiveBitmapIndex {
    fn name(&self) -> &'static str {
        "bitmap-adaptive"
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        AdaptiveBitmapIndex::execute_with_cost(self, query)
    }

    fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, QueryCost)> {
        self.execute_with_cost_threads_impl(query, threads)
    }

    fn size_bytes(&self) -> usize {
        AdaptiveBitmapIndex::size_bytes(self)
    }

    fn execute_count(&self, query: &RangeQuery) -> Result<usize> {
        crate::engine::run_count(self, query)
    }

    // §6 bound — min(AS, 1−AS)·C + 1 bitmaps per dimension — scaled from
    // the uncompressed word count down by the index's measured compression
    // ratio, since the exact driver only touches stored container words.
    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        let bound = crate::engine::estimate_words(self, query, |w, c| w.min(c - w) + 1.0);
        let uncompressed = crate::engine::words_per_bitmap(self.n_rows) * self.n_bitmaps() as f64;
        if uncompressed == 0.0 {
            return bound;
        }
        let ratio = (self.size_bytes() as f64 / 8.0) / uncompressed;
        bound * ratio.min(1.0)
    }
}

impl AdaptiveBitmapIndex {
    const MAGIC: &'static [u8; 4] = b"IBAD";
    const VERSION: u16 = 1;

    /// Serializes the index. The container payloads are written by
    /// [`Adaptive`]'s own hardened format, so a tampered file fails with a
    /// clean error on load.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use ibis_core::wire::*;
        write_header(w, Self::MAGIC, Self::VERSION)?;
        write_str(w, <Adaptive as BitStore>::backend_name())?;
        write_len(w, self.n_rows)?;
        write_len(w, self.attrs.len())?;
        for a in &self.attrs {
            write_u16(w, a.cardinality)?;
            write_u8(w, a.missing.is_some() as u8)?;
            if let Some(m) = &a.missing {
                m.write_to(w)?;
            }
            write_len(w, a.values.len())?;
            for v in &a.values {
                v.write_to(w)?;
            }
        }
        Ok(())
    }

    /// Deserializes an index written by [`Self::write_to`].
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use ibis_core::wire::*;
        let (n_rows, n_attrs) =
            crate::read_index_preamble::<Adaptive>(r, Self::MAGIC, Self::VERSION)?;
        let mut attrs = Vec::with_capacity(n_attrs.min(1 << 20));
        for _ in 0..n_attrs {
            let cardinality = read_u16(r)?;
            if cardinality == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "zero cardinality in index file",
                ));
            }
            let missing = match read_u8(r)? {
                0 => None,
                _ => Some(Adaptive::read_from(r)?),
            };
            let n_values = read_len(r)?;
            if n_values != cardinality as usize {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "value-bitmap count disagrees with cardinality",
                ));
            }
            // Capped preallocation: a corrupt header can never trigger an
            // unbounded reservation.
            let mut values = Vec::with_capacity(n_values.min(1 << 16));
            for _ in 0..n_values {
                values.push(Adaptive::read_from(r)?);
            }
            for b in values.iter().chain(missing.iter()) {
                if b.len() != n_rows {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "bitmap length disagrees with row count",
                    ));
                }
            }
            attrs.push(AdaptiveAttr {
                cardinality,
                missing,
                values,
            });
        }
        Ok(AdaptiveBitmapIndex { attrs, n_rows })
    }

    /// Writes the index to `path` (buffered).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        use std::io::Write as _;
        w.flush()
    }

    /// Reads an index from `path` (buffered).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EqualityBitmapIndex;
    use ibis_core::gen::synthetic_scaled;
    use ibis_core::{scan, Cell, Predicate};

    fn m() -> Cell {
        Cell::MISSING
    }
    fn v(x: u16) -> Cell {
        Cell::present(x)
    }

    fn table1() -> Dataset {
        Dataset::from_rows(
            &[("a1", 5)],
            &[
                vec![v(5)],
                vec![v(2)],
                vec![v(3)],
                vec![m()],
                vec![v(4)],
                vec![v(5)],
                vec![v(1)],
                vec![v(3)],
                vec![m()],
                vec![v(2)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn differential_vs_scan_exhaustive_intervals() {
        let d = table1();
        let idx = AdaptiveBitmapIndex::build(&d);
        for policy in MissingPolicy::ALL {
            for lo in 1..=5u16 {
                for hi in lo..=5u16 {
                    let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                    assert_eq!(
                        idx.execute(&q).unwrap(),
                        scan::execute(&d, &q),
                        "{policy} [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn bitmap_and_op_counts_match_the_bee_family() {
        // Same Fig. 2 evaluation → same bitmaps_accessed / logical_ops as
        // BEE on any backend; only the words accounting differs (exact
        // container words here, §6 derived words there).
        let d = synthetic_scaled(400, 7);
        let adaptive = AdaptiveBitmapIndex::build(&d);
        let bee = EqualityBitmapIndex::<ibis_bitvec::Wah>::build(&d);
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![
                    Predicate::range(100, 1, 2),
                    Predicate::point(107, 3),
                    Predicate::range(213, 2, 8),
                ],
                policy,
            )
            .unwrap();
            let (rows_a, cost_a) = adaptive.execute_with_cost(&q).unwrap();
            let (rows_b, cost_b) = bee.execute_with_cost(&q).unwrap();
            assert_eq!(rows_a, rows_b, "{policy}");
            assert_eq!(cost_a.bitmaps_accessed, cost_b.bitmaps_accessed, "{policy}");
            assert_eq!(cost_a.logical_ops, cost_b.logical_ops, "{policy}");
        }
    }

    #[test]
    fn container_counts_cover_every_read_and_op_operand() {
        // With single-chunk data (< 2^16 rows → one container per bitmap)
        // the accounting identity is exact: inside one interval evaluation
        // every read and every op contributes one freshly-tallied container
        // set (the OR chain's accumulator covers the other operand), so
        // `containers == bitmaps + ops` per predicate; each of the
        // `dimensionality − 1` AND-reduce ops then tallies both operands.
        let d = synthetic_scaled(300, 11);
        let idx = AdaptiveBitmapIndex::build(&d);
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![Predicate::range(102, 1, 3), Predicate::range(105, 2, 4)],
                policy,
            )
            .unwrap();
            let (_, cost) = idx.execute_with_cost(&q).unwrap();
            let touched = cost.containers_array + cost.containers_bitmap + cost.containers_run;
            assert_eq!(
                touched,
                cost.bitmaps_accessed + cost.logical_ops + (q.dimensionality() - 1),
                "{policy}"
            );
            assert!(cost.words_processed > 0);
        }
    }

    #[test]
    fn exact_words_are_deterministic_on_the_worked_example() {
        // Table 1: 10 rows, cardinality 5, every equality bitmap has ≤ 3
        // set bits → a single array container of 1 payload word each.
        let idx = AdaptiveBitmapIndex::build(&table1());
        // Point query, not-match: one clone of one 1-word array.
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsNotMatch).unwrap();
        let (_, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(cost.words_processed, 1);
        assert_eq!(cost.containers_array, 1);
        assert_eq!((cost.containers_bitmap, cost.containers_run), (0, 0));
        // Range [1,2] under match: clone B_1 (1 word) + OR with B_2 (two
        // 1-word operands) + OR with B_0 (two 1-word operands) = 5 words,
        // all array-shaped.
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 2)], MissingPolicy::IsMatch).unwrap();
        let (_, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(cost.words_processed, 5);
        assert_eq!(cost.containers_array, 5);
        assert_eq!(cost.bitmaps_accessed, 3);
        assert_eq!(cost.logical_ops, 2);
    }

    #[test]
    fn exact_words_beat_the_derived_bound_on_sparse_data() {
        // 70 000 rows (two chunks), cardinality 50, cyclic values: each
        // equality bitmap holds every 50th row — array containers of
        // ~1 310 entries (~330 payload words per chunk) versus the
        // uncompressed ⌈70 000/64⌉ ≈ 1 094 words the §6 rule charges per
        // bitmap touched. Exact accounting must come in under the bound.
        let rows: Vec<Vec<Cell>> = (0..70_000).map(|r| vec![v((r % 50 + 1) as u16)]).collect();
        let d = Dataset::from_rows(&[("a", 50)], &rows).unwrap();
        let idx = AdaptiveBitmapIndex::build(&d);
        let q =
            RangeQuery::new(vec![Predicate::range(0, 1, 10)], MissingPolicy::IsNotMatch).unwrap();
        let (_, cost) = idx.execute_with_cost(&q).unwrap();
        let mut derived = cost;
        derived.finish_bitmap_words(idx.n_rows());
        assert!(
            cost.words_processed < derived.words_processed,
            "exact {} not below derived bound {}",
            cost.words_processed,
            derived.words_processed
        );
    }

    #[test]
    fn threaded_execution_matches_sequential_rows_and_cost() {
        let d = synthetic_scaled(400, 17);
        let idx = AdaptiveBitmapIndex::build(&d);
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![
                    Predicate::range(100, 2, 5),
                    Predicate::range(109, 1, 4),
                    Predicate::range(231, 2, 6),
                ],
                policy,
            )
            .unwrap();
            let seq = idx.execute_with_cost(&q).unwrap();
            for threads in [1, 2, 3, 8] {
                assert_eq!(
                    idx.execute_with_cost_threads(&q, threads).unwrap(),
                    seq,
                    "{policy} t={threads}"
                );
            }
        }
    }

    #[test]
    fn count_matches_materialized_rows() {
        let d = synthetic_scaled(350, 19);
        let idx = AdaptiveBitmapIndex::build(&d);
        for preds in [
            vec![],
            vec![Predicate::point(103, 2)],
            vec![Predicate::range(101, 1, 5), Predicate::range(208, 2, 7)],
        ] {
            let q = RangeQuery::new(preds, MissingPolicy::IsMatch).unwrap();
            assert_eq!(
                idx.execute_count(&q).unwrap(),
                idx.execute(&q).unwrap().rows().len()
            );
        }
    }

    #[test]
    fn append_row_matches_rebuild() {
        let d = synthetic_scaled(120, 23);
        let mut grown = AdaptiveBitmapIndex::build(&d);
        let extra: Vec<Vec<Cell>> = vec![
            (0..d.n_attrs()).map(|_| v(1)).collect(),
            (0..d.n_attrs())
                .map(|a| if a % 3 == 0 { m() } else { v(2) })
                .collect(),
        ];
        let mut all_rows: Vec<Vec<Cell>> = (0..d.n_rows())
            .map(|r| (0..d.n_attrs()).map(|a| d.column(a).cell(r)).collect())
            .collect();
        for row in &extra {
            grown.append_row(row).unwrap();
            all_rows.push(row.clone());
        }
        let schema: Vec<(String, u16)> = (0..d.n_attrs())
            .map(|a| (d.column(a).name().to_string(), d.column(a).cardinality()))
            .collect();
        let schema_refs: Vec<(&str, u16)> = schema.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        let rebuilt =
            AdaptiveBitmapIndex::build(&Dataset::from_rows(&schema_refs, &all_rows).unwrap());
        assert_eq!(grown.n_rows(), rebuilt.n_rows());
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(vec![Predicate::range(100, 1, 3)], policy).unwrap();
            assert_eq!(grown.execute(&q).unwrap(), rebuilt.execute(&q).unwrap());
        }
        // Bad rows leave the index unchanged.
        assert!(grown.append_row(&[]).is_err());
    }

    #[test]
    fn serialization_roundtrip_and_tamper_rejection() {
        let d = synthetic_scaled(200, 29);
        let idx = AdaptiveBitmapIndex::build(&d);
        let mut buf: Vec<u8> = Vec::new();
        idx.write_to(&mut buf).unwrap();
        let back = AdaptiveBitmapIndex::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.n_rows(), idx.n_rows());
        assert_eq!(back.n_bitmaps(), idx.n_bitmaps());
        assert_eq!(back.size_bytes(), idx.size_bytes());
        let q =
            RangeQuery::new(vec![Predicate::range(100, 1, 3)], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(back.execute(&q).unwrap(), idx.execute(&q).unwrap());
        // Truncation and magic tampering fail cleanly.
        let mut cut = buf.clone();
        cut.truncate(buf.len() / 2);
        assert!(AdaptiveBitmapIndex::read_from(&mut cut.as_slice()).is_err());
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(AdaptiveBitmapIndex::read_from(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn container_census_counts_every_stored_container() {
        let d = synthetic_scaled(250, 31);
        let idx = AdaptiveBitmapIndex::build(&d);
        let (ar, bm, rn) = idx.container_census();
        // < 2^16 rows → exactly one container per stored bitmap.
        assert_eq!(ar + bm + rn, idx.n_bitmaps());
    }

    #[test]
    fn estimated_cost_reflects_compression() {
        let d = synthetic_scaled(400, 37);
        let adaptive = AdaptiveBitmapIndex::build(&d);
        let bee = EqualityBitmapIndex::<ibis_bitvec::BitVec64>::build(&d);
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        let a = AccessMethod::estimated_cost(&adaptive, &q);
        let b = AccessMethod::estimated_cost(&bee, &q);
        assert!(a.is_finite() && a > 0.0);
        // Adaptive containers store fewer words than the uncompressed
        // family, and the estimate is scaled by that measured ratio.
        assert!(a <= b, "adaptive {a} > plain {b}");
        // Out-of-schema predicates stay unplannable.
        let q = RangeQuery::new(vec![Predicate::point(999, 1)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(AccessMethod::estimated_cost(&adaptive, &q), f64::INFINITY);
    }
}
