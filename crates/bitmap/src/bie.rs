//! Bitmap Interval Encoding (BIE) — the third classic encoding family the
//! paper cites (§2: "equality [10], range [5], **interval [5]**", Chan &
//! Ioannidis SIGMOD'99), adapted here to missing data with the same `B_0`
//! device the paper applies to BEE and BRE.
//!
//! Interval encoding stores one bitmap per *window* of `W = ⌈C/2⌉`
//! consecutive values: `I_j` flags rows whose value lies in
//! `[j, j + W − 1]`, for `j = 1 ..= C − W + 1` — about **half** the bitmaps
//! of BEE/BRE — and still answers any interval with **at most two** bitmap
//! reads:
//!
//! ```text
//! w = v2 − v1 + 1,  K = C − W + 1 (number of windows)
//! [1, C]                        → all present rows
//! w ≥ W                         → I_{v1} ∪ I_{v2−W+1}          (cover)
//! w < W, v2 < W                 → I_{v1} \ I_{v2+1}            (left edge)
//! w < W, v1 > K                 → I_{v2−W+1} \ I_{v1−W}        (right edge)
//! w < W, otherwise              → I_{v1} ∩ I_{v2−W+1}          (middle)
//! ```
//!
//! Missing rows are 0 in every window, so the AND/AND-NOT/OR plans above
//! are already correct under *missing-is-not-match*; under
//! *missing-is-match* the plan ORs `B_0` exactly as in BEE. BIE therefore
//! costs 2–3 bitmap reads per dimension (match) at roughly half the storage
//! of BRE — the missing corner of the paper's encoding-space that the
//! `ablation_encoding` experiment fills in.

use crate::cost::QueryCost;
use crate::engine::BitmapExec;
use crate::size::{AttrSize, SizeReport};
use ibis_bitvec::{BitStore, BitVec64};
use ibis_core::{AccessMethod, Dataset, Interval, MissingPolicy, RangeQuery, Result, RowSet};

/// Interval-encoded bitmap index over an incomplete relation.
#[derive(Clone, Debug)]
pub struct IntervalBitmapIndex<B: BitStore> {
    attrs: Vec<BieAttr<B>>,
    n_rows: usize,
}

#[derive(Clone, Debug)]
struct BieAttr<B> {
    cardinality: u16,
    /// Window width `W = ⌈C/2⌉`.
    width: u16,
    /// `B_{i,0}`, present only when the column has missing rows.
    missing: Option<B>,
    /// `windows[j-1]` = `I_j` over `[j, j + W − 1]`, `j = 1..=C−W+1`.
    windows: Vec<B>,
}

impl<B: BitStore> IntervalBitmapIndex<B> {
    /// Builds the index over every column of `dataset`.
    pub fn build(dataset: &Dataset) -> Self {
        let attrs = dataset
            .columns()
            .iter()
            .map(|col| {
                let c = col.cardinality() as usize;
                let width = c.div_ceil(2).max(1);
                let n_windows = c - width + 1;
                let n = col.len();
                let mut missing_bv = BitVec64::zeros(n);
                let mut window_bvs = vec![BitVec64::zeros(n); n_windows];
                for (row, &raw) in col.raw().iter().enumerate() {
                    if raw == 0 {
                        missing_bv.set(row, true);
                    } else {
                        let v = raw as usize;
                        // Value v lies in windows j ∈ [max(1, v−W+1), min(v, K)].
                        let j_lo = v.saturating_sub(width - 1).max(1);
                        let j_hi = v.min(n_windows);
                        for w in &mut window_bvs[j_lo - 1..j_hi] {
                            w.set(row, true);
                        }
                    }
                }
                BieAttr {
                    cardinality: col.cardinality(),
                    width: width as u16,
                    missing: (missing_bv.count_ones() > 0).then(|| B::from_bitvec(&missing_bv)),
                    windows: window_bvs.iter().map(B::from_bitvec).collect(),
                }
            })
            .collect();
        IntervalBitmapIndex {
            attrs,
            n_rows: dataset.n_rows(),
        }
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of indexed attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Total stored bitmaps — about half of what BEE/BRE keep.
    pub fn n_bitmaps(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| a.windows.len() + usize::from(a.missing.is_some()))
            .sum()
    }

    /// Per-attribute and total size accounting.
    pub fn size_report(&self) -> SizeReport {
        let per_attr = self
            .attrs
            .iter()
            .enumerate()
            .map(|(attr, a)| {
                let n_bitmaps = a.windows.len() + usize::from(a.missing.is_some());
                let bytes = a.windows.iter().map(B::size_bytes).sum::<usize>()
                    + a.missing.as_ref().map_or(0, B::size_bytes);
                AttrSize::new(attr, n_bitmaps, bytes, self.n_rows)
            })
            .collect();
        SizeReport { per_attr }
    }

    /// Total bytes of all stored bitmaps.
    pub fn size_bytes(&self) -> usize {
        self.size_report().total_bytes()
    }

    /// Evaluates one interval over one attribute with at most two window
    /// reads plus the missing bitmap, per the table in the module docs.
    ///
    /// # Panics
    /// Panics if `attr` or the interval is out of range; [`Self::execute`]
    /// validates first.
    pub fn evaluate_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        let a = &self.attrs[attr];
        let c = a.cardinality as usize;
        let w_win = a.width as usize;
        let k = a.windows.len(); // C − W + 1
        let (v1, v2) = (iv.lo as usize, iv.hi as usize);
        assert!(
            v1 >= 1 && v2 <= c,
            "interval [{v1},{v2}] outside domain 1..={c}"
        );
        let width = v2 - v1 + 1;

        let win = |j: usize, cost: &mut QueryCost| -> &B {
            cost.read_bitmap();
            &a.windows[j - 1]
        };

        // Present-rows result first; every plan leaves missing rows at 0
        // because they are 0 in all windows.
        let present = if width == c {
            // Full domain: all present rows. Complement of B_0, or all-ones
            // when the column is complete.
            match &a.missing {
                Some(m) => {
                    cost.read_bitmap();
                    cost.op();
                    m.not()
                }
                None => B::ones(self.n_rows),
            }
        } else if width >= w_win {
            let lo = win(v1, cost).clone();
            cost.op();
            lo.or(win(v2 - w_win + 1, cost))
        } else if v2 < w_win {
            let base = win(v1, cost).clone();
            cost.op();
            cost.op();
            base.and(&win(v2 + 1, cost).not())
        } else if v1 > k {
            let base = win(v2 - w_win + 1, cost).clone();
            cost.op();
            cost.op();
            base.and(&win(v1 - w_win, cost).not())
        } else {
            let base = win(v1, cost).clone();
            cost.op();
            base.and(win(v2 - w_win + 1, cost))
        };

        match policy {
            MissingPolicy::IsNotMatch => present,
            MissingPolicy::IsMatch => match &a.missing {
                Some(m) => {
                    cost.read_bitmap();
                    cost.op();
                    present.or(m)
                }
                None => present,
            },
        }
    }

    /// Executes a query, also returning the work counters.
    /// ([`AccessMethod::execute`] / [`AccessMethod::execute_count`] cover
    /// the plain and counting forms.)
    pub fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        crate::engine::run_with_cost(self, query)
    }
}

impl<B: BitStore> BitmapExec for IntervalBitmapIndex<B> {
    type Store = B;

    fn exec_rows(&self) -> usize {
        self.n_rows
    }

    fn exec_attrs(&self) -> usize {
        self.attrs.len()
    }

    fn exec_cardinality(&self, attr: usize) -> u16 {
        self.attrs[attr].cardinality
    }

    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        self.evaluate_interval(attr, iv, policy, cost)
    }
}

impl<B: BitStore> AccessMethod for IntervalBitmapIndex<B> {
    fn name(&self) -> &'static str {
        "bitmap-interval"
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        IntervalBitmapIndex::execute_with_cost(self, query)
    }

    fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, QueryCost)> {
        crate::engine::run_with_cost_threads(self, query, threads)
    }

    fn size_bytes(&self) -> usize {
        IntervalBitmapIndex::size_bytes(self)
    }

    fn execute_count(&self, query: &RangeQuery) -> Result<usize> {
        crate::engine::run_count(self, query)
    }

    // At most two windows plus B_0 per dimension — the same worst case as
    // BRE; the tie is broken by BIE's ~half-size structure.
    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        crate::engine::estimate_words(self, query, |_w, _c| 3.0)
    }
}

impl<B: BitStore> IntervalBitmapIndex<B> {
    const MAGIC: &'static [u8; 4] = b"IBIE";
    const VERSION: u16 = 1;

    /// Serializes the index.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use ibis_core::wire::*;
        write_header(w, Self::MAGIC, Self::VERSION)?;
        write_str(w, B::backend_name())?;
        write_len(w, self.n_rows)?;
        write_len(w, self.attrs.len())?;
        for a in &self.attrs {
            write_u16(w, a.cardinality)?;
            write_u16(w, a.width)?;
            write_u8(w, a.missing.is_some() as u8)?;
            if let Some(m) = &a.missing {
                m.write_to(w)?;
            }
            write_len(w, a.windows.len())?;
            for win in &a.windows {
                win.write_to(w)?;
            }
        }
        Ok(())
    }

    /// Deserializes an index written by [`Self::write_to`].
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use ibis_core::wire::*;
        let (n_rows, n_attrs) = crate::read_index_preamble::<B>(r, Self::MAGIC, Self::VERSION)?;
        let mut attrs = Vec::with_capacity(n_attrs.min(1 << 20));
        for _ in 0..n_attrs {
            let cardinality = read_u16(r)?;
            if cardinality == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "zero cardinality in index file",
                ));
            }
            let width = read_u16(r)?;
            let expected_width = (cardinality as usize).div_ceil(2).max(1);
            if width as usize != expected_width {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "window width disagrees with cardinality",
                ));
            }
            let missing = match read_u8(r)? {
                0 => None,
                _ => Some(B::read_from(r)?),
            };
            if missing.as_ref().is_some_and(|m| m.len() != n_rows) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "missing-bitmap length disagrees with row count",
                ));
            }
            let n_windows = read_len(r)?;
            if n_windows != cardinality as usize - width as usize + 1 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "window count disagrees with cardinality",
                ));
            }
            // Validated against the u16 cardinality above, but keep the
            // preallocation capped so a corrupt header can never trigger an
            // unbounded reservation (same guard as `BitVec64::read_from`).
            let mut windows = Vec::with_capacity(n_windows.min(1 << 16));
            for _ in 0..n_windows {
                let win = B::read_from(r)?;
                if win.len() != n_rows {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "bitmap length disagrees with row count",
                    ));
                }
                windows.push(win);
            }
            attrs.push(BieAttr {
                cardinality,
                width,
                missing,
                windows,
            });
        }
        Ok(IntervalBitmapIndex { attrs, n_rows })
    }

    /// Writes the index to `path` (buffered).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        use std::io::Write as _;
        w.flush()
    }

    /// Reads an index from `path` (buffered).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_bitvec::Wah;
    use ibis_core::gen::synthetic_scaled;
    use ibis_core::{scan, Cell, Column, Predicate};

    fn m() -> Cell {
        Cell::MISSING
    }
    fn v(x: u16) -> Cell {
        Cell::present(x)
    }

    fn paper_dataset() -> Dataset {
        Dataset::from_rows(
            &[("a1", 5)],
            &[
                vec![v(5)],
                vec![v(2)],
                vec![v(3)],
                vec![m()],
                vec![v(4)],
                vec![v(5)],
                vec![v(1)],
                vec![v(3)],
                vec![m()],
                vec![v(2)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn window_layout() {
        // C = 5 → W = 3, K = 3 windows: [1,3], [2,4], [3,5], plus B_0.
        let idx = IntervalBitmapIndex::<BitVec64>::build(&paper_dataset());
        let a = &idx.attrs[0];
        assert_eq!(a.width, 3);
        assert_eq!(a.windows.len(), 3);
        assert!(a.missing.is_some());
        assert_eq!(idx.n_bitmaps(), 4); // vs 6 for BEE, 5 for BRE
                                        // Row values: 5 2 3 ∅ 4 5 1 3 ∅ 2
        let bits = |b: &BitVec64| -> String {
            (0..10).map(|i| if b.get(i) { '1' } else { '0' }).collect()
        };
        assert_eq!(bits(&a.windows[0]), "0110001101"); // values 1..3
        assert_eq!(bits(&a.windows[1]), "0110100101"); // values 2..4
        assert_eq!(bits(&a.windows[2]), "1010110100"); // values 3..5
    }

    #[test]
    fn differential_vs_scan_exhaustive_intervals() {
        let d = paper_dataset();
        let idx = IntervalBitmapIndex::<Wah>::build(&d);
        for policy in MissingPolicy::ALL {
            for lo in 1..=5u16 {
                for hi in lo..=5u16 {
                    let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                    assert_eq!(
                        idx.execute(&q).unwrap(),
                        scan::execute(&d, &q),
                        "{policy} [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_over_many_cardinalities() {
        // Every (C, v1, v2, policy) combination for C up to 12; data covers
        // every value plus missing rows.
        for c in 1..=12u16 {
            let raw: Vec<u16> = (0..=c).chain(0..=c).collect(); // two copies incl missing
            let d = Dataset::new(vec![Column::from_raw("a", c, raw).unwrap()]).unwrap();
            let idx = IntervalBitmapIndex::<BitVec64>::build(&d);
            for policy in MissingPolicy::ALL {
                for lo in 1..=c {
                    for hi in lo..=c {
                        let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                        assert_eq!(
                            idx.execute(&q).unwrap(),
                            scan::execute(&d, &q),
                            "C={c} {policy} [{lo},{hi}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn at_most_two_windows_per_interval() {
        let d = paper_dataset();
        let idx = IntervalBitmapIndex::<Wah>::build(&d);
        for lo in 1..=5u16 {
            for hi in lo..=5u16 {
                let mut cost = QueryCost::zero();
                idx.evaluate_interval(
                    0,
                    Interval::new(lo, hi),
                    MissingPolicy::IsNotMatch,
                    &mut cost,
                );
                assert!(
                    cost.bitmaps_accessed <= 2,
                    "not-match [{lo},{hi}]: {cost:?}"
                );
                let mut cost = QueryCost::zero();
                idx.evaluate_interval(0, Interval::new(lo, hi), MissingPolicy::IsMatch, &mut cost);
                assert!(cost.bitmaps_accessed <= 3, "match [{lo},{hi}]: {cost:?}");
            }
        }
    }

    #[test]
    fn half_the_bitmaps_of_bee() {
        let d = synthetic_scaled(300, 61);
        let bie = IntervalBitmapIndex::<BitVec64>::build(&d);
        let bee = crate::EqualityBitmapIndex::<BitVec64>::build(&d);
        // Per attribute BIE keeps ⌊C/2⌋ + 1 windows (+ B_0) vs BEE's C
        // (+ B_0); over the Table 7 mix that is well under 60% of BEE.
        assert!(
            (bie.n_bitmaps() as f64) < 0.6 * bee.n_bitmaps() as f64,
            "BIE {} vs BEE {}",
            bie.n_bitmaps(),
            bee.n_bitmaps()
        );
    }

    #[test]
    fn multi_attribute_workload_differential() {
        let d = synthetic_scaled(500, 62);
        let idx = IntervalBitmapIndex::<Wah>::build(&d);
        use ibis_core::gen::{workload, QuerySpec};
        for policy in MissingPolicy::ALL {
            let spec = QuerySpec {
                n_queries: 12,
                k: 5,
                global_selectivity: 0.02,
                policy,
                candidate_attrs: vec![],
            };
            for q in workload(&d, &spec, 63) {
                assert_eq!(idx.execute(&q).unwrap(), scan::execute(&d, &q), "{policy}");
            }
        }
    }

    #[test]
    fn cardinality_one_and_two() {
        let d = Dataset::new(vec![
            Column::from_raw("flag", 1, vec![1, 0, 1, 0]).unwrap(),
            Column::from_raw("bit", 2, vec![1, 2, 0, 2]).unwrap(),
        ])
        .unwrap();
        let idx = IntervalBitmapIndex::<Wah>::build(&d);
        for policy in MissingPolicy::ALL {
            for (attr, hi) in [(0usize, 1u16), (1, 2)] {
                for lo in 1..=hi {
                    for h in lo..=hi {
                        let q =
                            RangeQuery::new(vec![Predicate::range(attr, lo, h)], policy).unwrap();
                        assert_eq!(idx.execute(&q).unwrap(), scan::execute(&d, &q));
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_queries_rejected() {
        let idx = IntervalBitmapIndex::<Wah>::build(&paper_dataset());
        let q = RangeQuery::new(vec![Predicate::point(5, 1)], MissingPolicy::IsMatch).unwrap();
        assert!(idx.execute(&q).is_err());
        let q = RangeQuery::new(vec![Predicate::point(0, 6)], MissingPolicy::IsMatch).unwrap();
        assert!(idx.execute(&q).is_err());
    }
}
