//! Row-reordering heuristics for better run-length compression.
//!
//! The paper's future work (§6): "we would like to explore techniques such
//! as BBC compression and **row reordering** in order to achieve more
//! compression of these [range-encoded] bitmaps." Reordering rows so that
//! similar records are adjacent lengthens the 0/1 runs every bitmap sees,
//! which WAH/BBC convert into fills.
//!
//! Strategies return a permutation `perm` with `perm[new] = old`, directly
//! consumable by [`ibis_core::Dataset::permute_rows`]. Queries over the
//! permuted dataset return *permuted* row ids; [`map_rows`] translates them
//! back for verification.

use ibis_core::{Dataset, RowSet};

/// Sorts rows lexicographically by their raw values over `attr_order`
/// (missing sorts first, matching the BRE "smallest value" convention).
///
/// This is the classic reordering baseline: it maximizes run lengths of the
/// leading attributes at the expense of the trailing ones, so put
/// low-cardinality or skewed attributes first (see
/// [`cardinality_ascending_order`]).
pub fn lexicographic(dataset: &Dataset, attr_order: &[usize]) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..dataset.n_rows() as u32).collect();
    let columns: Vec<&[u16]> = attr_order
        .iter()
        .map(|&a| dataset.column(a).raw())
        .collect();
    perm.sort_by(|&x, &y| {
        let (x, y) = (x as usize, y as usize);
        for raw in &columns {
            match raw[x].cmp(&raw[y]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        x.cmp(&y) // stable tiebreak keeps the permutation deterministic
    });
    perm
}

/// Gray-code-flavoured lexicographic sort: at each attribute depth the sort
/// direction alternates with the parity of the preceding attribute's value,
/// so consecutive rows differ in as few attributes as possible — the
/// standard reflected-ordering trick for bitmap run formation.
pub fn gray(dataset: &Dataset, attr_order: &[usize]) -> Vec<u32> {
    let columns: Vec<&[u16]> = attr_order
        .iter()
        .map(|&a| dataset.column(a).raw())
        .collect();
    let mut perm: Vec<u32> = (0..dataset.n_rows() as u32).collect();
    perm.sort_by(|&x, &y| {
        let (x, y) = (x as usize, y as usize);
        let mut flip = false;
        for raw in &columns {
            let (a, b) = (raw[x], raw[y]);
            if a != b {
                let ord = a.cmp(&b);
                return if flip { ord.reverse() } else { ord };
            }
            // Reflect the next level whenever this level's value is odd.
            flip ^= a % 2 == 1;
        }
        x.cmp(&y)
    });
    perm
}

/// Attribute order that tends to help lexicographic reordering: ascending
/// cardinality, so the leading attributes form the longest runs.
pub fn cardinality_ascending_order(dataset: &Dataset) -> Vec<usize> {
    let mut order: Vec<usize> = (0..dataset.n_attrs()).collect();
    order.sort_by_key(|&a| dataset.column(a).cardinality());
    order
}

/// Translates row ids returned by an index over the *permuted* dataset back
/// to original row ids (`perm[new] = old`).
pub fn map_rows(rows: &RowSet, perm: &[u32]) -> RowSet {
    rows.iter().map(|r| perm[r as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EqualityBitmapIndex;
    use ibis_bitvec::Wah;
    use ibis_core::gen::synthetic_scaled;
    use ibis_core::{scan, AccessMethod, MissingPolicy, Predicate, RangeQuery};

    #[test]
    fn lexicographic_sorts_rows() {
        let d = synthetic_scaled(500, 3);
        let order: Vec<usize> = (0..4).collect();
        let perm = lexicographic(&d, &order);
        let p = d.permute_rows(&perm);
        for w in 0..p.n_rows() - 1 {
            let key = |r: usize| -> Vec<u16> { (0..4).map(|a| p.column(a).raw()[r]).collect() };
            assert!(key(w) <= key(w + 1), "rows {w},{} out of order", w + 1);
        }
    }

    #[test]
    fn permutations_are_valid() {
        let d = synthetic_scaled(300, 4);
        for perm in [
            lexicographic(&d, &cardinality_ascending_order(&d)),
            gray(&d, &cardinality_ascending_order(&d)),
        ] {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..300u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reordering_improves_compression() {
        // Shuffled uniform data barely compresses; sorted data must do
        // strictly better (this is the paper's future-work hypothesis).
        let d = synthetic_scaled(4_000, 5);
        let base = EqualityBitmapIndex::<Wah>::build(&d).size_bytes();
        let order = cardinality_ascending_order(&d);
        let lex = d.permute_rows(&lexicographic(&d, &order[..8]));
        let lex_size = EqualityBitmapIndex::<Wah>::build(&lex).size_bytes();
        assert!(
            lex_size < base,
            "lexicographic reorder should shrink the index: {lex_size} vs {base}"
        );
    }

    #[test]
    fn queries_survive_reordering() {
        let d = synthetic_scaled(800, 6);
        let order = cardinality_ascending_order(&d);
        let perm = gray(&d, &order[..6]);
        let p = d.permute_rows(&perm);
        let idx = EqualityBitmapIndex::<Wah>::build(&p);
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![Predicate::range(0, 1, 1), Predicate::range(100, 2, 5)],
                policy,
            )
            .unwrap();
            let got = map_rows(&idx.execute(&q).unwrap(), &perm);
            assert_eq!(got, scan::execute(&d, &q), "{policy}");
        }
    }

    #[test]
    fn map_rows_translates_ids() {
        let perm = vec![2u32, 0, 1]; // new 0 ← old 2, …
        let rows = RowSet::from_unsorted(vec![0, 2]);
        assert_eq!(map_rows(&rows, &perm).rows(), &[1, 2]);
    }
}
