//! Bitmap Range Encoding (BRE) — §4.3 of the paper.

use crate::cost::QueryCost;
use crate::engine::BitmapExec;
use crate::size::{AttrSize, SizeReport};
use ibis_bitvec::BitStore;
use ibis_core::{AccessMethod, Dataset, Interval, MissingPolicy, RangeQuery, Result, RowSet};

/// Range-encoded bitmap index over an incomplete relation.
///
/// Bitmap `B_{i,j}` flags the rows whose value for `A_i` is **≤ j**. The
/// paper treats missing data "as the next smallest possible value outside
/// the lower bound of the domain" (value 0), so a missing row is set in
/// *every* bitmap and `B_{i,0}` doubles as the missing-rows flag. `B_{i,C}`
/// is constant all-ones and is dropped, leaving `C` stored bitmaps for an
/// attribute with missing data and `C − 1` without.
///
/// Interval evaluation follows Fig. 3: every case reduces to at most an XOR
/// of two threshold bitmaps (or one complement when the range touches the
/// domain maximum) plus, under match semantics, an OR with `B_{i,0}` —
/// between 1 and 3 bitmap reads per dimension (match), 1–2 (not-match),
/// which is why BRE's query time is flat across cardinality in Fig. 5(a).
#[derive(Clone, Debug)]
pub struct RangeBitmapIndex<B: BitStore> {
    attrs: Vec<BreAttr<B>>,
    n_rows: usize,
}

#[derive(Clone, Debug)]
struct BreAttr<B> {
    cardinality: u16,
    has_missing: bool,
    /// `thresholds[k]` = `B_{i, k + first}` where `first` is 0 when the
    /// attribute has missing rows and 1 otherwise. Thresholds run up to
    /// `C − 1` (`B_{i,C}` ≡ all-ones is dropped).
    thresholds: Vec<B>,
}

impl<B> BreAttr<B> {
    #[inline]
    fn first_threshold(&self) -> usize {
        usize::from(!self.has_missing)
    }

    /// The stored bitmap for threshold `j` (`B_{i,j}`), if stored.
    /// `j = 0` without missing data is all-zeros (not stored);
    /// `j = C` is all-ones (never stored).
    fn stored(&self, j: usize) -> Option<&B> {
        j.checked_sub(self.first_threshold())
            .and_then(|k| self.thresholds.get(k))
    }
}

impl<B: BitStore> RangeBitmapIndex<B> {
    /// Builds the index over every column of `dataset`.
    pub fn build(dataset: &Dataset) -> Self {
        let attrs = dataset.columns().iter().map(Self::build_attr).collect();
        RangeBitmapIndex {
            attrs,
            n_rows: dataset.n_rows(),
        }
    }

    /// Like [`Self::build`], but fanning columns over `n_threads` threads.
    pub fn build_parallel(dataset: &Dataset, n_threads: usize) -> Self
    where
        B: Send,
    {
        let attrs = ibis_core::parallel::parallel_map(
            dataset.columns().iter().collect(),
            n_threads,
            Self::build_attr,
        );
        RangeBitmapIndex {
            attrs,
            n_rows: dataset.n_rows(),
        }
    }

    fn build_attr(col: &ibis_core::Column) -> BreAttr<B> {
        let c = col.cardinality() as usize;
        let eq = crate::equality_bitvecs(col);
        let has_missing = eq[0].count_ones() > 0;
        // Prefix-OR the equality bitmaps: B_j = eq_0 | … | eq_j.
        let mut thresholds = Vec::with_capacity(c);
        let mut acc = eq[0].clone();
        if has_missing {
            thresholds.push(B::from_bitvec(&acc)); // B_0
        }
        for value_bv in &eq[1..c] {
            acc.or_assign(value_bv);
            thresholds.push(B::from_bitvec(&acc)); // B_1 .. B_{C-1}
        }
        BreAttr {
            cardinality: col.cardinality(),
            has_missing,
            thresholds,
        }
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Appends one record in place. Threshold bitmap `B_j` receives a 1
    /// when the new value is ≤ `j` or missing (the §4.3 convention); the
    /// first missing value on a previously-complete attribute materializes
    /// `B_0` (all-zeros so far) at the front of the threshold list.
    ///
    /// # Errors
    /// Rejects rows of the wrong width or with out-of-domain values,
    /// leaving the index unchanged.
    pub fn append_row(&mut self, row: &[ibis_core::Cell]) -> Result<()> {
        ibis_core::validate_row(row, |a| self.attrs[a].cardinality, self.attrs.len())?;
        for (&cell, a) in row.iter().zip(&mut self.attrs) {
            let raw = cell.raw();
            if raw == 0 && !a.has_missing {
                a.thresholds.insert(0, B::zeros(self.n_rows));
                a.has_missing = true;
            }
            let first = a.first_threshold();
            for (k, b) in a.thresholds.iter_mut().enumerate() {
                let j = (k + first) as u16;
                b.push_bit(raw == 0 || raw <= j);
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Number of indexed attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Total number of stored bitmaps (`C_i` per attribute with missing
    /// data, `C_i − 1` otherwise).
    pub fn n_bitmaps(&self) -> usize {
        self.attrs.iter().map(|a| a.thresholds.len()).sum()
    }

    /// Per-attribute and total size accounting.
    pub fn size_report(&self) -> SizeReport {
        let per_attr = self
            .attrs
            .iter()
            .enumerate()
            .map(|(attr, a)| {
                let bytes = a.thresholds.iter().map(B::size_bytes).sum::<usize>();
                AttrSize::new(attr, a.thresholds.len(), bytes, self.n_rows)
            })
            .collect();
        SizeReport { per_attr }
    }

    /// Total bytes of all stored bitmaps.
    pub fn size_bytes(&self) -> usize {
        self.size_report().total_bytes()
    }

    /// Evaluates one interval over one attribute (Fig. 3), accumulating
    /// work counters into `cost`.
    ///
    /// # Panics
    /// Panics if `attr` or the interval is out of range; [`Self::execute`]
    /// validates first.
    pub fn evaluate_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        let a = &self.attrs[attr];
        let c = a.cardinality as usize;
        let (v1, v2) = (iv.lo as usize, iv.hi as usize);
        assert!(
            v1 >= 1 && v2 <= c,
            "interval [{v1},{v2}] outside domain 1..={c}"
        );

        // Present-and-in-range rows are B_{v2} XOR B_{v1-1}; missing rows
        // cancel in the XOR because they are set in every bitmap. The edge
        // thresholds B_0 (no missing → all-zeros) and B_C (all-ones) are
        // virtual, which yields exactly the case split of Fig. 3. Stored
        // bitmaps are borrowed — the only clone is when a stored bitmap is
        // itself the answer.
        let le = |j: usize, cost: &mut QueryCost| -> Option<&B> {
            let b = a.stored(j);
            if b.is_some() {
                cost.read_bitmap();
            }
            b
        };

        match policy {
            MissingPolicy::IsMatch => {
                if v1 == 1 {
                    // Missing counts as ≤ every threshold, so B_{v2} already
                    // includes it. [1, C] degenerates to all rows.
                    if v2 == c {
                        B::ones(self.n_rows)
                    } else {
                        le(v2, cost).expect("1 ≤ v2 < C is stored").clone()
                    }
                } else {
                    let base = if v2 == c {
                        cost.op();
                        le(v1 - 1, cost).expect("1 ≤ v1-1 < C is stored").not()
                    } else {
                        let hi = le(v2, cost).expect("stored");
                        let lo = le(v1 - 1, cost).expect("stored");
                        cost.op();
                        hi.xor(lo)
                    };
                    match le(0, cost) {
                        Some(m) => {
                            cost.op();
                            base.or(m)
                        }
                        None => base,
                    }
                }
            }
            MissingPolicy::IsNotMatch => {
                let lower = v1 - 1; // 0 allowed: B_0 is the missing flag
                if v2 == c {
                    match le(lower, cost) {
                        Some(b) => {
                            cost.op();
                            b.not()
                        }
                        None => B::ones(self.n_rows), // complete column, full range
                    }
                } else {
                    let hi = le(v2, cost).expect("1 ≤ v2 < C is stored");
                    match le(lower, cost) {
                        Some(b) => {
                            cost.op();
                            hi.xor(b)
                        }
                        None => hi.clone(),
                    }
                }
            }
        }
    }

    /// Executes a query, also returning the work counters.
    /// ([`AccessMethod::execute`] / [`AccessMethod::execute_count`] cover
    /// the plain and counting forms.)
    pub fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        crate::engine::run_with_cost(self, query)
    }
}

impl<B: BitStore> BitmapExec for RangeBitmapIndex<B> {
    type Store = B;

    fn exec_rows(&self) -> usize {
        self.n_rows
    }

    fn exec_attrs(&self) -> usize {
        self.attrs.len()
    }

    fn exec_cardinality(&self, attr: usize) -> u16 {
        self.attrs[attr].cardinality
    }

    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        self.evaluate_interval(attr, iv, policy, cost)
    }
}

impl<B: BitStore> AccessMethod for RangeBitmapIndex<B> {
    fn name(&self) -> &'static str {
        "bitmap-range"
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        RangeBitmapIndex::execute_with_cost(self, query)
    }

    fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, QueryCost)> {
        crate::engine::run_with_cost_threads(self, query, threads)
    }

    fn size_bytes(&self) -> usize {
        RangeBitmapIndex::size_bytes(self)
    }

    fn execute_count(&self, query: &RangeQuery) -> Result<usize> {
        crate::engine::run_count(self, query)
    }

    // §6: at most 3 bitmaps per dimension (Fig. 3), scaled to words.
    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        crate::engine::estimate_words(self, query, |_w, _c| 3.0)
    }
}

impl<B: BitStore> RangeBitmapIndex<B> {
    const MAGIC: &'static [u8; 4] = b"IBRE";
    const VERSION: u16 = 1;

    /// Serializes the index.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use ibis_core::wire::*;
        write_header(w, Self::MAGIC, Self::VERSION)?;
        write_str(w, B::backend_name())?;
        write_len(w, self.n_rows)?;
        write_len(w, self.attrs.len())?;
        for a in &self.attrs {
            write_u16(w, a.cardinality)?;
            write_u8(w, a.has_missing as u8)?;
            write_len(w, a.thresholds.len())?;
            for t in &a.thresholds {
                t.write_to(w)?;
            }
        }
        Ok(())
    }

    /// Deserializes an index written by [`Self::write_to`].
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use ibis_core::wire::*;
        let (n_rows, n_attrs) = crate::read_index_preamble::<B>(r, Self::MAGIC, Self::VERSION)?;
        let mut attrs = Vec::with_capacity(n_attrs.min(1 << 20));
        for _ in 0..n_attrs {
            let cardinality = read_u16(r)?;
            if cardinality == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "zero cardinality in index file",
                ));
            }
            let has_missing = read_u8(r)? != 0;
            let n_thresholds = read_len(r)?;
            // C thresholds with missing data, C − 1 without (§4.3).
            let expected = cardinality as usize - usize::from(!has_missing);
            if n_thresholds != expected {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "threshold-bitmap count disagrees with cardinality",
                ));
            }
            // Validated against the u16 cardinality above, but keep the
            // preallocation capped so a corrupt header can never trigger an
            // unbounded reservation (same guard as `BitVec64::read_from`).
            let mut thresholds = Vec::with_capacity(n_thresholds.min(1 << 16));
            for _ in 0..n_thresholds {
                let t = B::read_from(r)?;
                if t.len() != n_rows {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "bitmap length disagrees with row count",
                    ));
                }
                thresholds.push(t);
            }
            attrs.push(BreAttr {
                cardinality,
                has_missing,
                thresholds,
            });
        }
        Ok(RangeBitmapIndex { attrs, n_rows })
    }

    /// Writes the index to `path` (buffered).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        use std::io::Write as _;
        w.flush()
    }

    /// Reads an index from `path` (buffered).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_bitvec::{BitVec64, Wah};
    use ibis_core::{scan, Cell, Column, Predicate};

    fn m() -> Cell {
        Cell::MISSING
    }
    fn v(x: u16) -> Cell {
        Cell::present(x)
    }

    /// The paper's Table 3/4 worked example (same data as Table 1).
    fn table3() -> Dataset {
        Dataset::from_rows(
            &[("a1", 5)],
            &[
                vec![v(5)],
                vec![v(2)],
                vec![v(3)],
                vec![m()],
                vec![v(4)],
                vec![v(5)],
                vec![v(1)],
                vec![v(3)],
                vec![m()],
                vec![v(2)],
            ],
        )
        .unwrap()
    }

    fn bits_of<B: BitStore>(b: &B) -> String {
        let v = b.to_bitvec();
        (0..v.len())
            .map(|i| if v.get(i) { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn table4_bitmaps_reproduced() {
        // Table 4 lists the range-encoded bitmaps B_{1,0}..B_{1,4}
        // (B_{1,5} ≡ all-ones is dropped).
        let idx = RangeBitmapIndex::<BitVec64>::build(&table3());
        let a = &idx.attrs[0];
        assert!(a.has_missing);
        assert_eq!(a.thresholds.len(), 5);
        assert_eq!(bits_of(&a.thresholds[0]), "0001000010"); // B_{1,0}
        assert_eq!(bits_of(&a.thresholds[1]), "0001001010"); // B_{1,1}
        assert_eq!(bits_of(&a.thresholds[2]), "0101001011"); // B_{1,2}
        assert_eq!(bits_of(&a.thresholds[3]), "0111001111"); // B_{1,3}
        assert_eq!(bits_of(&a.thresholds[4]), "0111101111"); // B_{1,4}
    }

    #[test]
    fn fig3_point_query_cases() {
        let d = table3();
        let idx = RangeBitmapIndex::<Wah>::build(&d);
        // Case v1 = v2 = 1, match: result is B_1 directly (missing included).
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows.rows(), &[3, 6, 8]);
        assert_eq!(cost.bitmaps_accessed, 1);
        // Case v1 = v2 = 1, not-match: B_1 XOR B_0.
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows.rows(), &[6]);
        assert_eq!(cost.bitmaps_accessed, 2);
        // Case 1 < v1 = v2 < C, match: (B_3 XOR B_2) OR B_0 → 3 reads.
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows.rows(), &[2, 3, 7, 8]);
        assert_eq!(cost.bitmaps_accessed, 3);
        // Case v1 = v2 = C, match: NOT(B_4) OR B_0.
        let q = RangeQuery::new(vec![Predicate::point(0, 5)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows.rows(), &[0, 3, 5, 8]);
        assert_eq!(cost.bitmaps_accessed, 2);
        // Case v1 = v2 = C, not-match: NOT(B_4) alone.
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows.rows(), &[0, 5]);
        assert_eq!(cost.bitmaps_accessed, 1);
    }

    #[test]
    fn fig3_range_query_cases() {
        let d = table3();
        let idx = RangeBitmapIndex::<Wah>::build(&d);
        // v1 = 1 < v2 < C, match: B_{v2} alone (1 read).
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 3)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        assert_eq!(cost.bitmaps_accessed, 1);
        // General range, match: (B_4 XOR B_1) OR B_0 → 3 reads.
        let q = RangeQuery::new(vec![Predicate::range(0, 2, 4)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        assert_eq!(cost.bitmaps_accessed, 3);
        // General range, not-match: B_4 XOR B_1 → 2 reads.
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        assert_eq!(cost.bitmaps_accessed, 2);
        // Range touching C, not-match: NOT(B_1) → 1 read.
        let q =
            RangeQuery::new(vec![Predicate::range(0, 2, 5)], MissingPolicy::IsNotMatch).unwrap();
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        assert_eq!(cost.bitmaps_accessed, 1);
    }

    #[test]
    fn full_domain_range() {
        let d = table3();
        let idx = RangeBitmapIndex::<Wah>::build(&d);
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 5)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows, RowSet::all(10));
        assert_eq!(cost.bitmaps_accessed, 0); // virtual all-ones
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows.rows(), &[0, 1, 2, 4, 5, 6, 7, 9]); // NOT(B_0)
        assert_eq!(cost.bitmaps_accessed, 1);
    }

    #[test]
    fn no_missing_column_drops_b0() {
        let col = Column::from_raw("a", 4, vec![1, 2, 3, 4, 2]).unwrap();
        let d = Dataset::new(vec![col]).unwrap();
        let idx = RangeBitmapIndex::<Wah>::build(&d);
        assert!(!idx.attrs[0].has_missing);
        assert_eq!(idx.n_bitmaps(), 3); // C - 1
        for policy in MissingPolicy::ALL {
            for lo in 1..=4u16 {
                for hi in lo..=4u16 {
                    let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                    assert_eq!(idx.execute(&q).unwrap(), scan::execute(&d, &q));
                }
            }
        }
    }

    #[test]
    fn cardinality_one_attribute() {
        // C = 1: the only stored structure is B_0 (missing flag); B_1 is the
        // dropped all-ones bitmap. The paper notes the in-band alternative
        // cannot even represent this case.
        let col = Column::from_raw("flag", 1, vec![1, 0, 1, 0]).unwrap();
        let d = Dataset::new(vec![col]).unwrap();
        let idx = RangeBitmapIndex::<Wah>::build(&d);
        assert_eq!(idx.n_bitmaps(), 1);
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(idx.execute(&q).unwrap(), RowSet::all(4));
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        assert_eq!(idx.execute(&q).unwrap().rows(), &[0, 2]);
    }

    #[test]
    fn costs_bounded_one_to_three() {
        // §4.3: match semantics needs 1–3 bitmaps per dimension, not-match
        // 1–2 — verify across every interval of the example.
        let idx = RangeBitmapIndex::<Wah>::build(&table3());
        for lo in 1..=5u16 {
            for hi in lo..=5u16 {
                let mut cost = QueryCost::zero();
                idx.evaluate_interval(0, Interval::new(lo, hi), MissingPolicy::IsMatch, &mut cost);
                assert!(cost.bitmaps_accessed <= 3, "match [{lo},{hi}]: {cost:?}");
                let mut cost = QueryCost::zero();
                idx.evaluate_interval(
                    0,
                    Interval::new(lo, hi),
                    MissingPolicy::IsNotMatch,
                    &mut cost,
                );
                assert!(
                    cost.bitmaps_accessed <= 2,
                    "not-match [{lo},{hi}]: {cost:?}"
                );
            }
        }
    }

    #[test]
    fn differential_vs_scan_exhaustive_intervals() {
        let d = table3();
        let idx = RangeBitmapIndex::<Wah>::build(&d);
        for policy in MissingPolicy::ALL {
            for lo in 1..=5u16 {
                for hi in lo..=5u16 {
                    let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                    assert_eq!(
                        idx.execute(&q).unwrap(),
                        scan::execute(&d, &q),
                        "{policy} [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_attribute_conjunction() {
        let d = Dataset::from_rows(
            &[("a", 4), ("b", 3)],
            &[
                vec![v(1), v(1)],
                vec![v(2), m()],
                vec![m(), v(2)],
                vec![v(2), v(2)],
                vec![v(4), v(3)],
            ],
        )
        .unwrap();
        let idx = RangeBitmapIndex::<Wah>::build(&d);
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![Predicate::range(0, 2, 4), Predicate::range(1, 1, 2)],
                policy,
            )
            .unwrap();
            assert_eq!(idx.execute(&q).unwrap(), scan::execute(&d, &q), "{policy}");
        }
    }

    #[test]
    fn size_report_counts() {
        let idx = RangeBitmapIndex::<BitVec64>::build(&table3());
        let r = idx.size_report();
        assert_eq!(r.per_attr[0].n_bitmaps, 5); // C with missing data
        assert_eq!(r.total_uncompressed_bytes(), 5 * 2);
    }

    #[test]
    fn invalid_queries_rejected() {
        let idx = RangeBitmapIndex::<Wah>::build(&table3());
        let q = RangeQuery::new(vec![Predicate::point(9, 1)], MissingPolicy::IsMatch).unwrap();
        assert!(idx.execute(&q).is_err());
    }
}
