//! Bitmap Equality Encoding (BEE) — §4.2 of the paper.

use crate::cost::QueryCost;
use crate::engine::BitmapExec;
use crate::size::{AttrSize, SizeReport};
use ibis_bitvec::BitStore;
use ibis_core::{AccessMethod, Dataset, Interval, MissingPolicy, RangeQuery, Result, RowSet};

/// Equality-encoded bitmap index over an incomplete relation.
///
/// For attribute `A_i` with cardinality `C_i`, bitmap `B_{i,j}` (`1 ≤ j ≤
/// C_i`) flags the rows whose value is exactly `j`. Attributes that contain
/// missing data get one extra bitmap `B_{i,0}` flagging the missing rows —
/// the paper's chosen design, kept because WAH compresses the (typically
/// sparse or very dense) missing bitmap well, and because the in-band
/// alternatives break the NOT operator and cardinality-1 attributes (see
/// [`crate::rejected`]).
///
/// Query evaluation follows Fig. 2: each interval is answered by ORing the
/// cheaper of the in-range or out-of-range bitmap sets (complementing in the
/// latter case), giving the paper's worst-case bound of
/// `min(AS, 1−AS)·C + 1` bitmap reads per dimension.
#[derive(Clone, Debug)]
pub struct EqualityBitmapIndex<B: BitStore> {
    attrs: Vec<BeeAttr<B>>,
    n_rows: usize,
}

#[derive(Clone, Debug)]
struct BeeAttr<B> {
    cardinality: u16,
    /// `B_{i,0}`; `None` when the column has no missing rows (the paper only
    /// adds the extra bitmap "for each attribute with missing data").
    missing: Option<B>,
    /// `values[v-1]` = `B_{i,v}`.
    values: Vec<B>,
}

impl<B: BitStore> EqualityBitmapIndex<B> {
    /// Builds the index over every column of `dataset`.
    pub fn build(dataset: &Dataset) -> Self {
        let attrs = dataset.columns().iter().map(Self::build_attr).collect();
        EqualityBitmapIndex {
            attrs,
            n_rows: dataset.n_rows(),
        }
    }

    fn build_attr(col: &ibis_core::Column) -> BeeAttr<B> {
        let mut bitvecs = crate::equality_bitvecs(col);
        let values_bv = bitvecs.split_off(1);
        let missing_bv = bitvecs.pop().expect("index 0 is the missing bitmap");
        BeeAttr {
            cardinality: col.cardinality(),
            missing: (missing_bv.count_ones() > 0).then(|| B::from_bitvec(&missing_bv)),
            values: values_bv.iter().map(B::from_bitvec).collect(),
        }
    }

    /// Like [`Self::build`], but fanning columns over `n_threads` OS
    /// threads (the paper's synthetic set has 450 independent attributes).
    pub fn build_parallel(dataset: &Dataset, n_threads: usize) -> Self
    where
        B: Send,
    {
        let attrs = ibis_core::parallel::parallel_map(
            dataset.columns().iter().collect(),
            n_threads,
            Self::build_attr,
        );
        EqualityBitmapIndex {
            attrs,
            n_rows: dataset.n_rows(),
        }
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Appends one record in place: every stored bitmap grows by one bit
    /// (`O(Σ C_i)` pushes; with the WAH backend each push is amortized
    /// O(1)). The first missing value on a previously-complete attribute
    /// materializes its `B_0`.
    ///
    /// # Errors
    /// Rejects rows of the wrong width or with out-of-domain values,
    /// leaving the index unchanged.
    pub fn append_row(&mut self, row: &[ibis_core::Cell]) -> Result<()> {
        ibis_core::validate_row(row, |a| self.attrs[a].cardinality, self.attrs.len())?;
        for (&cell, a) in row.iter().zip(&mut self.attrs) {
            let raw = cell.raw();
            if raw == 0 && a.missing.is_none() {
                a.missing = Some(B::zeros(self.n_rows));
            }
            if let Some(m) = &mut a.missing {
                m.push_bit(raw == 0);
            }
            for (j, b) in a.values.iter_mut().enumerate() {
                b.push_bit(raw as usize == j + 1);
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Number of indexed attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Total number of stored bitmaps (`Σ_i C_i` plus one per attribute with
    /// missing data).
    pub fn n_bitmaps(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| a.values.len() + usize::from(a.missing.is_some()))
            .sum()
    }

    /// Per-attribute and total size accounting.
    pub fn size_report(&self) -> SizeReport {
        let per_attr = self
            .attrs
            .iter()
            .enumerate()
            .map(|(attr, a)| {
                let n_bitmaps = a.values.len() + usize::from(a.missing.is_some());
                let bytes = a.values.iter().map(B::size_bytes).sum::<usize>()
                    + a.missing.as_ref().map_or(0, B::size_bytes);
                AttrSize::new(attr, n_bitmaps, bytes, self.n_rows)
            })
            .collect();
        SizeReport { per_attr }
    }

    /// Total bytes of all stored bitmaps.
    pub fn size_bytes(&self) -> usize {
        self.size_report().total_bytes()
    }

    /// Evaluates one interval over one attribute (Fig. 2), accumulating
    /// work counters into `cost`.
    ///
    /// # Panics
    /// Panics if `attr` or the interval is out of range; [`Self::execute`]
    /// validates first.
    pub fn evaluate_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        let a = &self.attrs[attr];
        let c = a.cardinality as usize;
        let (v1, v2) = (iv.lo as usize, iv.hi as usize);
        assert!(
            v1 >= 1 && v2 <= c,
            "interval [{v1},{v2}] outside domain 1..={c}"
        );

        // Fig. 2: OR the in-range bitmaps when the range spans at most half
        // the domain; otherwise OR the out-of-range bitmaps and complement.
        // Choose the smaller bitmap set (the paper's prose: complement when
        // the range "includes more than half of the cardinality"; Fig. 2's
        // span test v2−v1 ≤ ⌊C/2⌋ can pick the larger side for even C —
        // comparing set sizes keeps the min(AS, 1−AS)·C + 1 bound tight).
        let width = v2 - v1 + 1;
        if width <= c - width {
            let mut acc = crate::or_all(a.values[v1 - 1..v2].iter(), cost)
                .expect("in-range set is non-empty");
            if policy == MissingPolicy::IsMatch {
                if let Some(m) = &a.missing {
                    cost.read_bitmap();
                    cost.op();
                    acc = acc.or(m);
                }
            }
            acc
        } else {
            let outside = a.values[..v1 - 1].iter().chain(a.values[v2..].iter());
            let mut acc = crate::or_all(outside, cost);
            if policy == MissingPolicy::IsNotMatch {
                // Missing rows are 0 in every value bitmap, so the plain
                // complement would (re-)include them; OR `B_0` in first.
                if let Some(m) = &a.missing {
                    cost.read_bitmap();
                    acc = Some(match acc {
                        Some(x) => {
                            cost.op();
                            x.or(m)
                        }
                        None => m.clone(),
                    });
                }
            }
            match acc {
                Some(x) => {
                    cost.op();
                    x.not()
                }
                None => B::ones(self.n_rows), // full-domain range, no exclusions
            }
        }
    }

    /// Executes a query, also returning the work counters.
    /// ([`AccessMethod::execute`] / [`AccessMethod::execute_count`] cover
    /// the plain and counting forms.)
    pub fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        crate::engine::run_with_cost(self, query)
    }
}

impl<B: BitStore> BitmapExec for EqualityBitmapIndex<B> {
    type Store = B;

    fn exec_rows(&self) -> usize {
        self.n_rows
    }

    fn exec_attrs(&self) -> usize {
        self.attrs.len()
    }

    fn exec_cardinality(&self, attr: usize) -> u16 {
        self.attrs[attr].cardinality
    }

    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        self.evaluate_interval(attr, iv, policy, cost)
    }
}

impl<B: BitStore> AccessMethod for EqualityBitmapIndex<B> {
    fn name(&self) -> &'static str {
        "bitmap-equality"
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        EqualityBitmapIndex::execute_with_cost(self, query)
    }

    fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, QueryCost)> {
        crate::engine::run_with_cost_threads(self, query, threads)
    }

    fn size_bytes(&self) -> usize {
        EqualityBitmapIndex::size_bytes(self)
    }

    fn execute_count(&self, query: &RangeQuery) -> Result<usize> {
        crate::engine::run_count(self, query)
    }

    // §6: min(AS, 1−AS)·C + 1 bitmaps per dimension, scaled to words.
    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        crate::engine::estimate_words(self, query, |w, c| w.min(c - w) + 1.0)
    }
}

impl<B: BitStore> EqualityBitmapIndex<B> {
    const MAGIC: &'static [u8; 4] = b"IBEE";
    const VERSION: u16 = 1;

    /// Serializes the index (paper metric: "size of the requisite index
    /// files on disk").
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use ibis_core::wire::*;
        write_header(w, Self::MAGIC, Self::VERSION)?;
        write_str(w, B::backend_name())?;
        write_len(w, self.n_rows)?;
        write_len(w, self.attrs.len())?;
        for a in &self.attrs {
            write_u16(w, a.cardinality)?;
            write_u8(w, a.missing.is_some() as u8)?;
            if let Some(m) = &a.missing {
                m.write_to(w)?;
            }
            write_len(w, a.values.len())?;
            for v in &a.values {
                v.write_to(w)?;
            }
        }
        Ok(())
    }

    /// Deserializes an index written by [`Self::write_to`]. The backend
    /// recorded in the file must match `B`.
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use ibis_core::wire::*;
        let (n_rows, n_attrs) = crate::read_index_preamble::<B>(r, Self::MAGIC, Self::VERSION)?;
        let mut attrs = Vec::with_capacity(n_attrs.min(1 << 20));
        for _ in 0..n_attrs {
            let cardinality = read_u16(r)?;
            if cardinality == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "zero cardinality in index file",
                ));
            }
            let missing = match read_u8(r)? {
                0 => None,
                _ => Some(B::read_from(r)?),
            };
            let n_values = read_len(r)?;
            if n_values != cardinality as usize {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "value-bitmap count disagrees with cardinality",
                ));
            }
            // Validated against the u16 cardinality above, but keep the
            // preallocation capped so a corrupt header can never trigger an
            // unbounded reservation (same guard as `BitVec64::read_from`).
            let mut values = Vec::with_capacity(n_values.min(1 << 16));
            for _ in 0..n_values {
                values.push(B::read_from(r)?);
            }
            for b in values.iter().chain(missing.iter()) {
                if b.len() != n_rows {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "bitmap length disagrees with row count",
                    ));
                }
            }
            attrs.push(BeeAttr {
                cardinality,
                missing,
                values,
            });
        }
        Ok(EqualityBitmapIndex { attrs, n_rows })
    }

    /// Writes the index to `path` (buffered).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        use std::io::Write as _;
        w.flush()
    }

    /// Reads an index from `path` (buffered).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_bitvec::{BitVec64, Wah};
    use ibis_core::{scan, Cell, Column, Predicate};

    fn m() -> Cell {
        Cell::MISSING
    }
    fn v(x: u16) -> Cell {
        Cell::present(x)
    }

    /// The paper's Table 1/2 worked example: one attribute, cardinality 5,
    /// ten records, rows 4 and 9 missing (1-based).
    fn table1() -> Dataset {
        Dataset::from_rows(
            &[("a1", 5)],
            &[
                vec![v(5)],
                vec![v(2)],
                vec![v(3)],
                vec![m()],
                vec![v(4)],
                vec![v(5)],
                vec![v(1)],
                vec![v(3)],
                vec![m()],
                vec![v(2)],
            ],
        )
        .unwrap()
    }

    fn bits_of<B: BitStore>(b: &B) -> String {
        let v = b.to_bitvec();
        (0..v.len())
            .map(|i| if v.get(i) { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn table2_bitmaps_reproduced() {
        // Table 2 of the paper lists the equality bitmaps for Table 1.
        let idx = EqualityBitmapIndex::<BitVec64>::build(&table1());
        let a = &idx.attrs[0];
        assert_eq!(bits_of(a.missing.as_ref().unwrap()), "0001000010"); // B_{1,0}
        assert_eq!(bits_of(&a.values[0]), "0000001000"); // B_{1,1}
        assert_eq!(bits_of(&a.values[1]), "0100000001"); // B_{1,2}
        assert_eq!(bits_of(&a.values[2]), "0010000100"); // B_{1,3}
        assert_eq!(bits_of(&a.values[3]), "0000100000"); // B_{1,4}
        assert_eq!(bits_of(&a.values[4]), "1000010000"); // B_{1,5}
    }

    #[test]
    fn point_query_both_policies() {
        let d = table1();
        let idx = EqualityBitmapIndex::<Wah>::build(&d);
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsMatch).unwrap();
        // Value 3 at rows 2, 7 (0-based); missing rows 3, 8 also match.
        assert_eq!(idx.execute(&q).unwrap().rows(), &[2, 3, 7, 8]);
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        assert_eq!(idx.execute(&q).unwrap().rows(), &[2, 7]);
    }

    #[test]
    fn point_query_costs_match_paper() {
        // Match semantics needs "two bitmaps instead of one" for a point
        // query on an attribute with missing data (§4.2).
        let idx = EqualityBitmapIndex::<Wah>::build(&table1());
        let q = RangeQuery::new(vec![Predicate::point(0, 3)], MissingPolicy::IsMatch).unwrap();
        let (_, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(cost.bitmaps_accessed, 2);
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        let (_, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(cost.bitmaps_accessed, 1);
    }

    #[test]
    fn wide_range_uses_complement() {
        // [1,4] over C=5 spans 4 > ⌊5/2⌋ → complement path reads only B_5
        // (plus B_0 under not-match).
        let d = table1();
        let idx = EqualityBitmapIndex::<Wah>::build(&d);
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 4)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        assert_eq!(cost.bitmaps_accessed, 1);

        let q = q.with_policy(MissingPolicy::IsNotMatch);
        let (rows, cost) = idx.execute_with_cost(&q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        assert_eq!(cost.bitmaps_accessed, 2);
    }

    #[test]
    fn full_domain_range() {
        let d = table1();
        let idx = EqualityBitmapIndex::<Wah>::build(&d);
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 5)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(idx.execute(&q).unwrap(), RowSet::all(10));
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        // Everything except the two missing rows.
        assert_eq!(idx.execute(&q).unwrap().rows(), &[0, 1, 2, 4, 5, 6, 7, 9]);
    }

    #[test]
    fn no_missing_column_stores_no_b0() {
        let col = Column::from_raw("a", 3, vec![1, 2, 3, 1]).unwrap();
        let d = Dataset::new(vec![col]).unwrap();
        let idx = EqualityBitmapIndex::<Wah>::build(&d);
        assert!(idx.attrs[0].missing.is_none());
        assert_eq!(idx.n_bitmaps(), 3);
        // Policies coincide on complete data.
        for iv in [Interval::point(2), Interval::new(1, 2), Interval::new(2, 3)] {
            let qm = RangeQuery::new(
                vec![Predicate {
                    attr: 0,
                    interval: iv,
                }],
                MissingPolicy::IsMatch,
            )
            .unwrap();
            let qn = qm.with_policy(MissingPolicy::IsNotMatch);
            assert_eq!(idx.execute(&qm).unwrap(), idx.execute(&qn).unwrap());
            assert_eq!(idx.execute(&qm).unwrap(), scan::execute(&d, &qm));
        }
    }

    #[test]
    fn multi_attribute_conjunction() {
        let d = Dataset::from_rows(
            &[("a", 4), ("b", 4)],
            &[
                vec![v(1), v(1)],
                vec![v(2), m()],
                vec![m(), v(2)],
                vec![v(2), v(2)],
                vec![v(4), v(4)],
            ],
        )
        .unwrap();
        let idx = EqualityBitmapIndex::<Wah>::build(&d);
        for policy in MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![Predicate::range(0, 1, 2), Predicate::point(1, 2)],
                policy,
            )
            .unwrap();
            assert_eq!(idx.execute(&q).unwrap(), scan::execute(&d, &q), "{policy}");
        }
    }

    #[test]
    fn empty_key_matches_all() {
        let idx = EqualityBitmapIndex::<Wah>::build(&table1());
        let q = RangeQuery::new(vec![], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(idx.execute(&q).unwrap(), RowSet::all(10));
    }

    #[test]
    fn invalid_queries_rejected() {
        let idx = EqualityBitmapIndex::<Wah>::build(&table1());
        let q = RangeQuery::new(vec![Predicate::point(3, 1)], MissingPolicy::IsMatch).unwrap();
        assert!(idx.execute(&q).is_err());
        let q = RangeQuery::new(vec![Predicate::point(0, 9)], MissingPolicy::IsMatch).unwrap();
        assert!(idx.execute(&q).is_err());
    }

    #[test]
    fn size_report_counts_extra_missing_bitmap() {
        let idx = EqualityBitmapIndex::<BitVec64>::build(&table1());
        let report = idx.size_report();
        assert_eq!(report.per_attr.len(), 1);
        assert_eq!(report.per_attr[0].n_bitmaps, 6); // C=5 plus B_0
        assert_eq!(report.total_uncompressed_bytes(), 6 * 2); // ceil(10/8)=2 each
        assert!(report.total_bytes() > 0);
    }

    #[test]
    fn differential_vs_scan_exhaustive_intervals() {
        let d = table1();
        let idx = EqualityBitmapIndex::<Wah>::build(&d);
        for policy in MissingPolicy::ALL {
            for lo in 1..=5u16 {
                for hi in lo..=5u16 {
                    let q = RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                    assert_eq!(
                        idx.execute(&q).unwrap(),
                        scan::execute(&d, &q),
                        "{policy} [{lo},{hi}]"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::RangeBitmapIndex;
    use ibis_bitvec::Wah;
    use ibis_core::gen::synthetic_scaled;
    use ibis_core::{MissingPolicy, Predicate};

    #[test]
    fn parallel_build_equals_serial() {
        let d = synthetic_scaled(600, 81);
        let serial = EqualityBitmapIndex::<Wah>::build(&d);
        let parallel = EqualityBitmapIndex::<Wah>::build_parallel(&d, 4);
        assert_eq!(parallel.n_bitmaps(), serial.n_bitmaps());
        assert_eq!(parallel.size_bytes(), serial.size_bytes());
        let bre_s = RangeBitmapIndex::<Wah>::build(&d);
        let bre_p = RangeBitmapIndex::<Wah>::build_parallel(&d, 4);
        assert_eq!(bre_p.size_bytes(), bre_s.size_bytes());
        for policy in MissingPolicy::ALL {
            for attr in [0usize, 120, 449] {
                let c = d.column(attr).cardinality();
                let q = RangeQuery::new(vec![Predicate::range(attr, 1, c.div_ceil(2))], policy)
                    .unwrap();
                assert_eq!(parallel.execute(&q).unwrap(), serial.execute(&q).unwrap());
                assert_eq!(bre_p.execute(&q).unwrap(), bre_s.execute(&q).unwrap());
            }
        }
    }

    #[test]
    fn parallel_build_single_thread_degenerates() {
        let d = synthetic_scaled(100, 82);
        let a = EqualityBitmapIndex::<Wah>::build_parallel(&d, 1);
        let b = EqualityBitmapIndex::<Wah>::build(&d);
        assert_eq!(a.size_bytes(), b.size_bytes());
    }
}
