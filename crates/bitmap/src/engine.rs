//! Shared query driver behind every bitmap family's [`ibis_core::AccessMethod`]
//! implementation.
//!
//! All four recommended encodings (BEE, BRE, BIE, decomposed) and both §4.2
//! rejected in-band encodings execute a query the same way: validate the
//! search key against the schema, evaluate each predicate's interval to a
//! bitmap, and AND the per-predicate answers together (§4.1). Historically
//! each family carried its own copy of that driver as inherent
//! `execute`/`execute_count`/`execute_with_cost` methods; the [`BitmapExec`]
//! view plus [`run_with_cost`]/[`run_count`] below hold the single shared
//! copy, and the families differ only in how one interval is evaluated.

use crate::cost::QueryCost;
use ibis_bitvec::BitStore;
use ibis_core::{Interval, MissingPolicy, RangeQuery, Result, RowSet};

/// The uniform internal view of a bitmap index: just enough structure for
/// the shared driver — schema dimensions plus per-interval evaluation.
pub(crate) trait BitmapExec {
    /// Bitmap backend.
    type Store: BitStore;

    /// Number of indexed rows.
    fn exec_rows(&self) -> usize;

    /// Number of indexed attributes.
    fn exec_attrs(&self) -> usize;

    /// Cardinality of attribute `attr`.
    fn exec_cardinality(&self, attr: usize) -> u16;

    /// Evaluates one (validated) interval over one attribute, accumulating
    /// bitmap reads and logical ops into `cost`.
    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> Self::Store;
}

/// Executes `query` over `ix`, returning matching rows and work counters.
/// `words_processed` is derived from the bitmap counters on the way out, so
/// every family reports comparable work without touching its own counters.
pub(crate) fn run_with_cost<T: BitmapExec>(
    ix: &T,
    query: &RangeQuery,
) -> Result<(RowSet, QueryCost)> {
    query.validate_schema(ix.exec_attrs(), |a| ix.exec_cardinality(a))?;
    let mut cost = QueryCost::zero();
    let acc = crate::fold_query(query, &mut cost, |attr, iv, cost| {
        ix.exec_interval(attr, iv, query.policy(), cost)
    });
    let rows = match acc {
        None => RowSet::all(ix.exec_rows() as u32),
        Some(b) => RowSet::from_sorted(b.ones_positions()),
    };
    cost.finish_bitmap_words(ix.exec_rows());
    Ok((rows, cost))
}

/// Counts matching rows without materializing row ids — a COUNT(*) straight
/// off the final bitmap's population count. This is the popcount override
/// every bitmap family plugs into [`ibis_core::AccessMethod::execute_count`].
pub(crate) fn run_count<T: BitmapExec>(ix: &T, query: &RangeQuery) -> Result<usize> {
    query.validate_schema(ix.exec_attrs(), |a| ix.exec_cardinality(a))?;
    let mut cost = QueryCost::zero();
    let acc = crate::fold_query(query, &mut cost, |attr, iv, cost| {
        ix.exec_interval(attr, iv, query.policy(), cost)
    });
    Ok(match acc {
        None => ix.exec_rows(),
        Some(b) => b.count_ones(),
    })
}

/// 64-bit words per stored bitmap — the unit the families' planner cost
/// estimates are stated in (uncompressed bound, as in the paper's §6 rules).
pub(crate) fn words_per_bitmap(n_rows: usize) -> f64 {
    n_rows.div_ceil(64) as f64
}

/// Sums a per-predicate bitmap-read estimate over the search key and scales
/// it to words; out-of-schema predicates price as infinite so the planner
/// never picks a method that would just error.
pub(crate) fn estimate_words<T: BitmapExec>(
    ix: &T,
    query: &RangeQuery,
    reads_for: impl Fn(f64, f64) -> f64,
) -> f64 {
    let wpb = words_per_bitmap(ix.exec_rows());
    query
        .predicates()
        .iter()
        .map(|p| {
            if p.attr >= ix.exec_attrs() {
                return f64::INFINITY;
            }
            let c = ix.exec_cardinality(p.attr) as f64;
            let w = (p.interval.hi.saturating_sub(p.interval.lo)) as f64 + 1.0;
            if w > c {
                return f64::INFINITY;
            }
            reads_for(w, c) * wpb
        })
        .sum()
}
