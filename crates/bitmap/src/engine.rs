//! Shared query driver behind every bitmap family's [`ibis_core::AccessMethod`]
//! implementation.
//!
//! All four recommended encodings (BEE, BRE, BIE, decomposed) and both §4.2
//! rejected in-band encodings execute a query the same way: validate the
//! search key against the schema, evaluate each predicate's interval to a
//! bitmap, and AND the per-predicate answers together (§4.1). Historically
//! each family carried its own copy of that driver as inherent
//! `execute`/`execute_count`/`execute_with_cost` methods; the [`BitmapExec`]
//! view plus [`run_with_cost`]/[`run_count`] below hold the single shared
//! copy, and the families differ only in how one interval is evaluated.

use crate::cost::QueryCost;
use ibis_bitvec::BitStore;
use ibis_core::parallel::ExecPool;
use ibis_core::{Interval, MissingPolicy, RangeQuery, Result, RowSet};

/// The uniform internal view of a bitmap index: just enough structure for
/// the shared driver — schema dimensions plus per-interval evaluation.
pub(crate) trait BitmapExec {
    /// Bitmap backend.
    type Store: BitStore;

    /// Number of indexed rows.
    fn exec_rows(&self) -> usize;

    /// Number of indexed attributes.
    fn exec_attrs(&self) -> usize;

    /// Cardinality of attribute `attr`.
    fn exec_cardinality(&self, attr: usize) -> u16;

    /// Evaluates one (validated) interval over one attribute, accumulating
    /// bitmap reads and logical ops into `cost`.
    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> Self::Store;
}

/// Attaches one fetch/reduce phase's counters to `span`, with the phase's
/// share of `words_processed` derived by the same §6 rule the final
/// [`QueryCost::finish_bitmap_words`] applies — so the per-phase deltas a
/// profile shows sum exactly to the query's final counters.
fn record_phase(span: &mut ibis_obs::SpanGuard, phase: &QueryCost, words_per_bitmap: usize) {
    if !span.is_recording() {
        return;
    }
    let mut phase = *phase;
    phase.words_processed = phase
        .bitmaps_accessed
        .saturating_add(phase.logical_ops)
        .saturating_mul(words_per_bitmap);
    phase.record_into(span);
}

/// Executes `query` over `ix`, returning matching rows and work counters.
/// `words_processed` is derived from the bitmap counters on the way out, so
/// every family reports comparable work without touching its own counters.
///
/// Each per-predicate interval evaluation runs under a `bitmap.fetch` span
/// and the final AND of the per-predicate answers under `bitmap.and_reduce`,
/// both carrying their counter deltas. Fetch-then-reduce performs the same
/// `k − 1` ANDs in the same order as the historical interleaved fold, so
/// rows and counters are unchanged.
pub(crate) fn run_with_cost<T: BitmapExec>(
    ix: &T,
    query: &RangeQuery,
) -> Result<(RowSet, QueryCost)> {
    query.validate_schema(ix.exec_attrs(), |a| ix.exec_cardinality(a))?;
    let wpb = ix.exec_rows().div_ceil(64);
    let mut cost = QueryCost::zero();
    let mut answers: Vec<T::Store> = Vec::with_capacity(query.dimensionality());
    for p in query.predicates() {
        let mut span = ibis_obs::span("bitmap.fetch");
        let mut c = QueryCost::zero();
        let b = ix.exec_interval(p.attr, p.interval, query.policy(), &mut c);
        span.add_field("attr", p.attr as u64);
        record_phase(&mut span, &c, wpb);
        cost += c;
        answers.push(b);
    }
    let acc = if answers.is_empty() {
        None
    } else {
        let mut span = ibis_obs::span("bitmap.and_reduce");
        let mut reduce_cost = QueryCost::zero();
        let mut it = answers.into_iter();
        let first = it.next().expect("non-empty");
        let acc = it.fold(first, |a, b| {
            reduce_cost.op();
            a.and(&b)
        });
        record_phase(&mut span, &reduce_cost, wpb);
        cost += reduce_cost;
        Some(acc)
    };
    let rows = match acc {
        None => RowSet::all(ix.exec_rows() as u32),
        Some(b) => RowSet::from_sorted(b.ones_positions()),
    };
    cost.finish_bitmap_words(ix.exec_rows());
    Ok((rows, cost))
}

/// Executes `query` over `ix` with up to `threads` workers: the
/// per-predicate interval evaluations (bitmap fetch + OR/complement
/// combine) fan out across attributes, and the final AND reduction over the
/// compressed per-predicate answers runs as a parallel tree-reduce
/// ([`ExecPool::reduce`]). Bit-identical to [`run_with_cost`] — the AND of
/// exact bitmaps is associative, each interval's cost accrues into its own
/// counter before an ordered merge, and the reduce performs exactly `k − 1`
/// combines — so the reported [`QueryCost`] matches the sequential run
/// field for field.
pub(crate) fn run_with_cost_threads<T>(
    ix: &T,
    query: &RangeQuery,
    threads: usize,
) -> Result<(RowSet, QueryCost)>
where
    T: BitmapExec + Sync,
{
    // One predicate (or none) has no intra-query parallelism to exploit.
    if threads <= 1 || query.dimensionality() < 2 {
        return run_with_cost(ix, query);
    }
    query.validate_schema(ix.exec_attrs(), |a| ix.exec_cardinality(a))?;
    let wpb = ix.exec_rows().div_ceil(64);
    let policy = query.policy();
    let pool = ExecPool::new(threads);
    let partials: Vec<(T::Store, QueryCost)> = pool.map(query.predicates().to_vec(), |p| {
        // Nested under the pool.worker span of whichever thread runs it.
        let mut span = ibis_obs::span("bitmap.fetch");
        let mut c = QueryCost::zero();
        let b = ix.exec_interval(p.attr, p.interval, policy, &mut c);
        span.add_field("attr", p.attr as u64);
        record_phase(&mut span, &c, wpb);
        (b, c)
    });
    let mut cost = QueryCost::zero();
    let mut answers = Vec::with_capacity(partials.len());
    for (b, c) in partials {
        cost += c;
        answers.push(b);
    }
    let mut span = ibis_obs::span("bitmap.and_reduce");
    let mut reduce_cost = QueryCost::zero();
    reduce_cost.logical_ops = answers.len() - 1; // the k−1 ANDs of the reduce
    record_phase(&mut span, &reduce_cost, wpb);
    cost += reduce_cost;
    let acc = pool
        .reduce(answers, |a, b| a.and(&b))
        .expect("dimensionality >= 2");
    drop(span);
    let rows = RowSet::from_sorted(acc.ones_positions());
    cost.finish_bitmap_words(ix.exec_rows());
    Ok((rows, cost))
}

/// Counts matching rows without materializing row ids — a COUNT(*) straight
/// off the final bitmap's population count. This is the popcount override
/// every bitmap family plugs into [`ibis_core::AccessMethod::execute_count`].
pub(crate) fn run_count<T: BitmapExec>(ix: &T, query: &RangeQuery) -> Result<usize> {
    query.validate_schema(ix.exec_attrs(), |a| ix.exec_cardinality(a))?;
    let mut cost = QueryCost::zero();
    let acc = crate::fold_query(query, &mut cost, |attr, iv, cost| {
        ix.exec_interval(attr, iv, query.policy(), cost)
    });
    Ok(match acc {
        None => ix.exec_rows(),
        Some(b) => b.count_ones(),
    })
}

/// 64-bit words per stored bitmap — the unit the families' planner cost
/// estimates are stated in (uncompressed bound, as in the paper's §6 rules).
pub(crate) fn words_per_bitmap(n_rows: usize) -> f64 {
    n_rows.div_ceil(64) as f64
}

/// Sums a per-predicate bitmap-read estimate over the search key and scales
/// it to words; out-of-schema predicates price as infinite so the planner
/// never picks a method that would just error.
pub(crate) fn estimate_words<T: BitmapExec>(
    ix: &T,
    query: &RangeQuery,
    reads_for: impl Fn(f64, f64) -> f64,
) -> f64 {
    let wpb = words_per_bitmap(ix.exec_rows());
    query
        .predicates()
        .iter()
        .map(|p| {
            if p.attr >= ix.exec_attrs() {
                return f64::INFINITY;
            }
            let c = ix.exec_cardinality(p.attr) as f64;
            let w = (p.interval.hi.saturating_sub(p.interval.lo)) as f64 + 1.0;
            if w > c {
                return f64::INFINITY;
            }
            reads_for(w, c) * wpb
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bee::EqualityBitmapIndex;
    use crate::bre::RangeBitmapIndex;
    use ibis_bitvec::Wah;
    use ibis_core::{Cell, Dataset, Predicate, RangeQuery};

    fn data() -> Dataset {
        let m = Cell::MISSING;
        let v = Cell::present;
        Dataset::from_rows(
            &[("a", 6), ("b", 6), ("c", 6)],
            &[
                vec![v(5), v(2), v(1)],
                vec![m, v(5), v(4)],
                vec![v(3), m, v(2)],
                vec![v(2), v(4), m],
                vec![v(6), v(1), v(6)],
                vec![v(1), v(3), v(3)],
                vec![m, m, m],
                vec![v(4), v(6), v(5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn threaded_driver_matches_sequential_rows_and_cost() {
        let d = data();
        let bee = EqualityBitmapIndex::<Wah>::build(&d);
        let bre = RangeBitmapIndex::<Wah>::build(&d);
        for policy in ibis_core::MissingPolicy::ALL {
            let q = RangeQuery::new(
                vec![
                    Predicate::range(0, 2, 5),
                    Predicate::range(1, 1, 4),
                    Predicate::range(2, 2, 6),
                ],
                policy,
            )
            .unwrap();
            let seq_bee = run_with_cost(&bee, &q).unwrap();
            let seq_bre = run_with_cost(&bre, &q).unwrap();
            for threads in [1, 2, 3, 8] {
                assert_eq!(
                    run_with_cost_threads(&bee, &q, threads).unwrap(),
                    seq_bee,
                    "bee {policy} t={threads}"
                );
                assert_eq!(
                    run_with_cost_threads(&bre, &q, threads).unwrap(),
                    seq_bre,
                    "bre {policy} t={threads}"
                );
            }
        }
    }

    #[test]
    fn threaded_driver_falls_back_on_narrow_queries() {
        let d = data();
        let bee = EqualityBitmapIndex::<Wah>::build(&d);
        for preds in [vec![], vec![Predicate::point(1, 4)]] {
            let q = RangeQuery::new(preds, ibis_core::MissingPolicy::IsNotMatch).unwrap();
            assert_eq!(
                run_with_cost_threads(&bee, &q, 8).unwrap(),
                run_with_cost(&bee, &q).unwrap()
            );
        }
    }
}
