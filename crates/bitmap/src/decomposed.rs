//! Multi-component (attribute-value decomposition) bitmap index with
//! missing-data support.
//!
//! The paper's reference [4] (Chan & Ioannidis, SIGMOD'98) establishes the
//! classic space/time trade-off for bitmap indexes: decompose each value in
//! a base `⟨b⟩`, index every *digit* separately with a range encoding, and
//! evaluate ranges with the RangeEval recurrence. One component (`b ≥ C`)
//! is exactly BRE — the time-optimal end; base 2 is the bit-sliced index —
//! the space-optimal end; `b = ⌈√C⌉` (two components) sits in the sweet
//! spot with `2·(⌈√C⌉ − 1)` bitmaps per attribute instead of `C − 1`.
//!
//! This module extends the decomposition to **incomplete data** with the
//! same device the paper applies to BEE/BRE: missing rows are kept out of
//! every digit bitmap and tracked by one extra `B_0` bitmap per attribute,
//! ORed in under *missing-is-match*. A stored `present` mask (`¬B_0`)
//! doubles as the top digit threshold, so the RangeEval recurrence needs no
//! special missing cases at all.
//!
//! `ablation_decomposition` sweeps the base to chart the storage/work curve
//! the 1998 paper predicts, now under both missing semantics.

use crate::cost::QueryCost;
use crate::engine::BitmapExec;
use crate::size::{AttrSize, SizeReport};
use ibis_bitvec::{BitStore, BitVec64};
use ibis_core::{AccessMethod, Dataset, Interval, MissingPolicy, RangeQuery, Result, RowSet};

/// Range-encoded, base-`b` decomposed bitmap index over an incomplete
/// relation.
#[derive(Clone, Debug)]
pub struct DecomposedBitmapIndex<B: BitStore> {
    attrs: Vec<DecAttr<B>>,
    n_rows: usize,
}

#[derive(Clone, Debug)]
struct DecAttr<B> {
    cardinality: u16,
    /// Digit base `b ≥ 2` (clamped to `C` when `C` is small).
    base: u16,
    /// Number of components `m` (`base^m ≥ C`).
    n_components: usize,
    /// `B_0`: missing rows. `None` when the column is complete.
    missing: Option<B>,
    /// All present rows (`¬B_0`); also serves as threshold `b − 1` of every
    /// component.
    present: B,
    /// `components[i][j]`: present rows whose `i`-th digit (least
    /// significant first) is ≤ `j`, for `j = 0..=b−2`.
    components: Vec<Vec<B>>,
}

impl<B: BitStore> DecomposedBitmapIndex<B> {
    /// Builds with the space/time sweet spot `b = ⌈√C⌉` per attribute
    /// (two components).
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_base_fn(dataset, |c| (c as f64).sqrt().ceil() as u16)
    }

    /// Builds with one uniform digit base for every attribute (`base ≥ 2`);
    /// `2` gives the bit-sliced index.
    pub fn with_base(dataset: &Dataset, base: u16) -> Self {
        assert!(base >= 2, "digit base must be at least 2");
        Self::with_base_fn(dataset, |_| base)
    }

    fn with_base_fn(dataset: &Dataset, base_for: impl Fn(u16) -> u16) -> Self {
        let n = dataset.n_rows();
        let attrs = dataset
            .columns()
            .iter()
            .map(|col| {
                let c = col.cardinality();
                let base = base_for(c).clamp(2, c.max(2));
                let mut n_components = 1usize;
                let mut span = base as u64;
                while span < c as u64 {
                    span *= base as u64;
                    n_components += 1;
                }

                let mut missing_bv = BitVec64::zeros(n);
                // threshold_bvs[i][j] accumulates rows with digit_i ≤ j.
                let mut threshold_bvs =
                    vec![vec![BitVec64::zeros(n); base as usize - 1]; n_components];
                for (row, &raw) in col.raw().iter().enumerate() {
                    if raw == 0 {
                        missing_bv.set(row, true);
                        continue;
                    }
                    let mut v0 = (raw - 1) as u64;
                    for comp in threshold_bvs.iter_mut() {
                        let digit = (v0 % base as u64) as usize;
                        v0 /= base as u64;
                        // digit ≤ j for every stored threshold j ≥ digit.
                        for t in comp.iter_mut().skip(digit) {
                            t.set(row, true);
                        }
                    }
                }
                let present_bv = missing_bv.not();
                DecAttr {
                    cardinality: c,
                    base,
                    n_components,
                    missing: (missing_bv.count_ones() > 0).then(|| B::from_bitvec(&missing_bv)),
                    present: B::from_bitvec(&present_bv),
                    components: threshold_bvs
                        .iter()
                        .map(|comp| comp.iter().map(B::from_bitvec).collect())
                        .collect(),
                }
            })
            .collect();
        DecomposedBitmapIndex {
            attrs,
            n_rows: dataset.n_rows(),
        }
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of indexed attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Total stored bitmaps: `m·(b−1)` digit thresholds plus the present
    /// mask, plus `B_0` where missing data exists.
    pub fn n_bitmaps(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| {
                a.components.iter().map(Vec::len).sum::<usize>()
                    + 1
                    + usize::from(a.missing.is_some())
            })
            .sum()
    }

    /// Per-attribute and total size accounting.
    pub fn size_report(&self) -> SizeReport {
        let per_attr = self
            .attrs
            .iter()
            .enumerate()
            .map(|(attr, a)| {
                let n_bitmaps = a.components.iter().map(Vec::len).sum::<usize>()
                    + 1
                    + usize::from(a.missing.is_some());
                let bytes = a
                    .components
                    .iter()
                    .flatten()
                    .map(B::size_bytes)
                    .sum::<usize>()
                    + a.present.size_bytes()
                    + a.missing.as_ref().map_or(0, B::size_bytes);
                AttrSize::new(attr, n_bitmaps, bytes, self.n_rows)
            })
            .collect();
        SizeReport { per_attr }
    }

    /// Total bytes of all stored bitmaps.
    pub fn size_bytes(&self) -> usize {
        self.size_report().total_bytes()
    }

    /// Rows (present only) whose digit `i` is ≤ `j`; `None` means the empty
    /// set (`j = −1`), `j ≥ b−1` is the all-present mask. Borrowed, so the
    /// RangeEval fold below never deep-copies a stored bitmap just to feed
    /// an operator.
    fn le_digit<'a>(
        &self,
        a: &'a DecAttr<B>,
        i: usize,
        j: i64,
        cost: &mut QueryCost,
    ) -> Option<&'a B> {
        if j < 0 {
            return None;
        }
        cost.read_bitmap();
        if j as u64 >= a.base as u64 - 1 {
            Some(&a.present)
        } else {
            Some(&a.components[i][j as usize])
        }
    }

    /// RangeEval: present rows with 0-based value ≤ `t` (`t = −1` → empty).
    fn le_value(&self, a: &DecAttr<B>, t: i64, cost: &mut QueryCost) -> B {
        if t < 0 {
            return B::zeros(self.n_rows);
        }
        if t as u64 >= a.cardinality as u64 - 1 {
            cost.read_bitmap();
            return a.present.clone();
        }
        // Digits of t, least significant first.
        let mut digits = Vec::with_capacity(a.n_components);
        let mut rest = t as u64;
        for _ in 0..a.n_components {
            digits.push((rest % a.base as u64) as i64);
            rest /= a.base as u64;
        }
        // Fold: res = (digit_0 ≤ d_0); then per higher component
        // res = (digit_i < d_i) ∨ ((digit_i = d_i) ∧ res).
        let mut res = match self.le_digit(a, 0, digits[0], cost) {
            Some(b) => b.clone(),
            None => B::zeros(self.n_rows),
        };
        for (i, &d) in digits.iter().enumerate().skip(1) {
            let lt = self.le_digit(a, i, d - 1, cost);
            let le = self
                .le_digit(a, i, d, cost)
                .expect("d ≥ 0 is stored or present");
            // eq = le XOR lt (lt = ∅ ⇒ eq = le).
            let eq = match lt {
                Some(lt) => {
                    cost.op();
                    le.xor(lt)
                }
                None => le.clone(),
            };
            cost.op();
            let within = eq.and(&res);
            res = match lt {
                Some(lt) => {
                    cost.op();
                    within.or(lt)
                }
                None => within,
            };
        }
        res
    }

    /// Evaluates one interval over one attribute.
    ///
    /// # Panics
    /// Panics if `attr` or the interval is out of range; [`Self::execute`]
    /// validates first.
    pub fn evaluate_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        let a = &self.attrs[attr];
        let c = a.cardinality;
        let (v1, v2) = (iv.lo, iv.hi);
        assert!(v1 >= 1 && v2 <= c, "interval outside domain");
        // Present values in [v1, v2] = LE(v2−1) \ LE(v1−2) over 0-based
        // values; missing rows are absent from every digit bitmap, so the
        // subtraction needs no special case.
        let hi = self.le_value(a, v2 as i64 - 1, cost);
        let present = if v1 == 1 {
            hi
        } else {
            let lo = self.le_value(a, v1 as i64 - 2, cost);
            cost.op();
            cost.op();
            hi.and(&lo.not())
        };
        match policy {
            MissingPolicy::IsNotMatch => present,
            MissingPolicy::IsMatch => match &a.missing {
                Some(m) => {
                    cost.read_bitmap();
                    cost.op();
                    present.or(m)
                }
                None => present,
            },
        }
    }

    /// Executes a query, also returning the work counters.
    /// ([`AccessMethod::execute`] / [`AccessMethod::execute_count`] cover
    /// the plain and counting forms.)
    pub fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        crate::engine::run_with_cost(self, query)
    }
}

impl<B: BitStore> BitmapExec for DecomposedBitmapIndex<B> {
    type Store = B;

    fn exec_rows(&self) -> usize {
        self.n_rows
    }

    fn exec_attrs(&self) -> usize {
        self.attrs.len()
    }

    fn exec_cardinality(&self, attr: usize) -> u16 {
        self.attrs[attr].cardinality
    }

    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        self.evaluate_interval(attr, iv, policy, cost)
    }
}

impl<B: BitStore> AccessMethod for DecomposedBitmapIndex<B> {
    fn name(&self) -> &'static str {
        "bitmap-decomposed"
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        DecomposedBitmapIndex::execute_with_cost(self, query)
    }

    fn execute_with_cost_threads(
        &self,
        query: &RangeQuery,
        threads: usize,
    ) -> Result<(RowSet, QueryCost)> {
        crate::engine::run_with_cost_threads(self, query, threads)
    }

    fn size_bytes(&self) -> usize {
        DecomposedBitmapIndex::size_bytes(self)
    }

    fn execute_count(&self, query: &RangeQuery) -> Result<usize> {
        crate::engine::run_count(self, query)
    }

    // RangeEval touches ≤ 2m − 1 bitmaps per bound (m components), two
    // bounds per interval, plus B_0 — the SIGMOD'98 time/space trade-off
    // the planner should see as pricier than single-component BRE.
    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        let wpb = crate::engine::words_per_bitmap(self.n_rows);
        query
            .predicates()
            .iter()
            .map(|p| match self.attrs.get(p.attr) {
                Some(a) => (4.0 * a.n_components as f64 - 1.0) * wpb,
                None => f64::INFINITY,
            })
            .sum()
    }
}

impl<B: BitStore> DecomposedBitmapIndex<B> {
    const MAGIC: &'static [u8; 4] = b"IBDX";
    const VERSION: u16 = 1;

    /// Serializes the index.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        use ibis_core::wire::*;
        write_header(w, Self::MAGIC, Self::VERSION)?;
        write_str(w, B::backend_name())?;
        write_len(w, self.n_rows)?;
        write_len(w, self.attrs.len())?;
        for a in &self.attrs {
            write_u16(w, a.cardinality)?;
            write_u16(w, a.base)?;
            write_u8(w, a.missing.is_some() as u8)?;
            if let Some(m) = &a.missing {
                m.write_to(w)?;
            }
            a.present.write_to(w)?;
            write_len(w, a.components.len())?;
            for comp in &a.components {
                write_len(w, comp.len())?;
                for t in comp {
                    t.write_to(w)?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes an index written by [`Self::write_to`].
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Self> {
        use ibis_core::wire::*;
        let (n_rows, n_attrs) = crate::read_index_preamble::<B>(r, Self::MAGIC, Self::VERSION)?;
        let mut attrs = Vec::with_capacity(n_attrs.min(1 << 20));
        for _ in 0..n_attrs {
            let cardinality = read_u16(r)?;
            let base = read_u16(r)?;
            if cardinality == 0 || base < 2 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "invalid cardinality or digit base in index file",
                ));
            }
            let missing = match read_u8(r)? {
                0 => None,
                _ => Some(B::read_from(r)?),
            };
            let present = B::read_from(r)?;
            let n_components = read_len(r)?;
            // Bound the count before any work proportional to it: a corrupt
            // header can claim up to 2^64 components, and even a no-op loop
            // of that length is a denial of service.
            if n_components == 0 || n_components > 64 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "component count out of range",
                ));
            }
            // base^n_components must cover the domain without being absurd.
            let mut span = 1u64;
            for _ in 0..n_components {
                span = span.saturating_mul(base as u64);
            }
            if span < cardinality as u64 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "component count disagrees with base and cardinality",
                ));
            }
            // `n_components ≤ 64` and `len < 2^16` are validated above/below,
            // but keep both preallocations capped so a corrupt header can
            // never trigger an unbounded reservation (same guard as
            // `BitVec64::read_from`).
            let mut components = Vec::with_capacity(n_components.min(64));
            for _ in 0..n_components {
                let len = read_len(r)?;
                if len != base as usize - 1 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "threshold count disagrees with digit base",
                    ));
                }
                let mut comp = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    let t = B::read_from(r)?;
                    if t.len() != n_rows {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "bitmap length disagrees with row count",
                        ));
                    }
                    comp.push(t);
                }
                components.push(comp);
            }
            for b in missing.iter().chain(std::iter::once(&present)) {
                if b.len() != n_rows {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "bitmap length disagrees with row count",
                    ));
                }
            }
            attrs.push(DecAttr {
                cardinality,
                base,
                n_components,
                missing,
                present,
                components,
            });
        }
        Ok(DecomposedBitmapIndex { attrs, n_rows })
    }

    /// Writes the index to `path` (buffered).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        use std::io::Write as _;
        w.flush()
    }

    /// Reads an index from `path` (buffered).
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibis_bitvec::Wah;
    use ibis_core::gen::{synthetic_scaled, workload, QuerySpec};
    use ibis_core::{scan, Column, Predicate};

    fn column_covering(c: u16) -> Dataset {
        // Two copies of every value plus missing rows.
        let raw: Vec<u16> = (0..=c).chain(0..=c).collect();
        Dataset::new(vec![Column::from_raw("a", c, raw).unwrap()]).unwrap()
    }

    #[test]
    fn exhaustive_all_bases_and_intervals() {
        for c in [1u16, 2, 3, 5, 7, 10, 16, 27] {
            let d = column_covering(c);
            for base in [2u16, 3, 4, 10] {
                let idx = DecomposedBitmapIndex::<BitVec64>::with_base(&d, base);
                for policy in MissingPolicy::ALL {
                    for lo in 1..=c {
                        for hi in lo..=c {
                            let q =
                                RangeQuery::new(vec![Predicate::range(0, lo, hi)], policy).unwrap();
                            assert_eq!(
                                idx.execute(&q).unwrap(),
                                scan::execute(&d, &q),
                                "C={c} base={base} {policy} [{lo},{hi}]"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sqrt_base_uses_two_components() {
        let d = column_covering(100);
        let idx = DecomposedBitmapIndex::<BitVec64>::build(&d);
        let a = &idx.attrs[0];
        assert_eq!(a.base, 10);
        assert_eq!(a.n_components, 2);
        // 2 × 9 digit thresholds + present + B_0 = 20 bitmaps, vs 100 for BRE.
        assert_eq!(idx.n_bitmaps(), 20);
    }

    #[test]
    fn bit_sliced_base_two_layout() {
        let d = column_covering(16);
        let idx = DecomposedBitmapIndex::<BitVec64>::with_base(&d, 2);
        let a = &idx.attrs[0];
        assert_eq!(a.n_components, 4); // 2^4 = 16
        assert_eq!(a.components.iter().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn base_clamped_to_cardinality() {
        // C = 2 with sqrt base would give b = 2 (fine); C = 1 degenerates.
        let d = column_covering(1);
        let idx = DecomposedBitmapIndex::<Wah>::build(&d);
        let q = RangeQuery::new(vec![Predicate::point(0, 1)], MissingPolicy::IsNotMatch).unwrap();
        assert_eq!(idx.execute(&q).unwrap(), scan::execute(&d, &q));
    }

    #[test]
    fn space_shrinks_as_base_shrinks() {
        let d = synthetic_scaled(2_000, 71);
        // Plain-backed sizes expose the bitmap-count effect directly.
        let bre_like = DecomposedBitmapIndex::<BitVec64>::with_base(&d, 101); // ≥ all C: 1 component
        let sqrt = DecomposedBitmapIndex::<BitVec64>::build(&d);
        let sliced = DecomposedBitmapIndex::<BitVec64>::with_base(&d, 2);
        assert!(sqrt.size_bytes() < bre_like.size_bytes());
        assert!(sliced.size_bytes() < sqrt.size_bytes());
    }

    #[test]
    fn work_grows_as_base_shrinks() {
        let d = column_covering(100);
        let q = RangeQuery::new(vec![Predicate::range(0, 23, 77)], MissingPolicy::IsMatch).unwrap();
        let cost_for = |base: u16| {
            let idx = DecomposedBitmapIndex::<BitVec64>::with_base(&d, base);
            idx.execute_with_cost(&q).unwrap().1.bitmaps_accessed
        };
        let one_comp = cost_for(101);
        let sliced = cost_for(2);
        assert!(one_comp <= 4, "single component ≈ BRE: {one_comp}");
        assert!(
            sliced > one_comp,
            "bit-slicing pays in reads: {sliced} vs {one_comp}"
        );
    }

    #[test]
    fn multi_attribute_workload_differential() {
        let d = synthetic_scaled(500, 72);
        let idx = DecomposedBitmapIndex::<Wah>::build(&d);
        for policy in MissingPolicy::ALL {
            let spec = QuerySpec {
                n_queries: 12,
                k: 5,
                global_selectivity: 0.02,
                policy,
                candidate_attrs: vec![],
            };
            for q in workload(&d, &spec, 73) {
                assert_eq!(idx.execute(&q).unwrap(), scan::execute(&d, &q), "{policy}");
            }
        }
    }

    #[test]
    fn all_missing_column() {
        let d = Dataset::new(vec![Column::from_raw("a", 8, vec![0, 0, 0]).unwrap()]).unwrap();
        let idx = DecomposedBitmapIndex::<Wah>::build(&d);
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 8)], MissingPolicy::IsMatch).unwrap();
        assert_eq!(idx.execute(&q).unwrap(), RowSet::all(3));
        let q = q.with_policy(MissingPolicy::IsNotMatch);
        assert!(idx.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn invalid_queries_rejected() {
        let d = column_covering(5);
        let idx = DecomposedBitmapIndex::<Wah>::build(&d);
        let q = RangeQuery::new(vec![Predicate::point(2, 1)], MissingPolicy::IsMatch).unwrap();
        assert!(idx.execute(&q).is_err());
        let q = RangeQuery::new(vec![Predicate::point(0, 6)], MissingPolicy::IsMatch).unwrap();
        assert!(idx.execute(&q).is_err());
    }
}
