//! The paper's *rejected* missing-data encodings, implemented to demonstrate
//! its objections (§4.2, "An intuitive solution…").
//!
//! Instead of storing an extra bitmap `B_{i,0}`, missing data could be
//! encoded *in band*: set `B_{i,j}[x] = 1` for **all** `j` when missing is a
//! match ([`InBandMatchEquality`]), or `= 0` for all `j` when it is not
//! ([`InBandNotMatchEquality`]). The paper rejects both because:
//!
//! 1. complement-based interval evaluation (the NOT operator) goes wrong and
//!    needs recovery operations — extra ANDs/ORs of value bitmaps;
//! 2. with the all-ones encoding, a cardinality-1 attribute cannot
//!    distinguish "value 1" from "missing" at all;
//! 3. setting a missing row to 1 in *every* bitmap of an attribute
//!    interrupts the runs of 0s and "compression decreases dramatically".
//!
//! These types exist so tests and the ablation benches can *measure* those
//! three claims rather than take them on faith. They are not part of the
//! recommended API.

use crate::cost::QueryCost;
use crate::engine::BitmapExec;
use crate::size::{AttrSize, SizeReport};
use ibis_bitvec::{BitStore, BitVec64};
use ibis_core::{
    AccessMethod, Dataset, Error, Interval, MissingPolicy, RangeQuery, Result, RowSet,
};

/// Equality bitmaps with missing rows encoded as 1 in every value bitmap.
/// Only answers queries under [`MissingPolicy::IsMatch`] — the encoding
/// hard-wires the semantics, which is itself a drawback the `B_0` design
/// avoids.
#[derive(Clone, Debug)]
pub struct InBandMatchEquality<B: BitStore> {
    attrs: Vec<InBandAttr<B>>,
    n_rows: usize,
}

/// Equality bitmaps with missing rows encoded as 0 in every value bitmap.
/// Only answers queries under [`MissingPolicy::IsNotMatch`].
#[derive(Clone, Debug)]
pub struct InBandNotMatchEquality<B: BitStore> {
    attrs: Vec<InBandAttr<B>>,
    n_rows: usize,
}

#[derive(Clone, Debug)]
struct InBandAttr<B> {
    cardinality: u16,
    has_missing: bool,
    values: Vec<B>,
}

fn build_attrs<B: BitStore>(dataset: &Dataset, missing_as_one: bool) -> Vec<InBandAttr<B>> {
    dataset
        .columns()
        .iter()
        .map(|col| {
            let eq = crate::equality_bitvecs(col);
            let missing = &eq[0];
            let has_missing = missing.count_ones() > 0;
            let values = eq[1..]
                .iter()
                .map(|value_bv| {
                    if missing_as_one && has_missing {
                        B::from_bitvec(&value_bv.or(missing))
                    } else {
                        B::from_bitvec(value_bv)
                    }
                })
                .collect();
            InBandAttr {
                cardinality: col.cardinality(),
                has_missing,
                values,
            }
        })
        .collect()
}

fn size_report<B: BitStore>(attrs: &[InBandAttr<B>], n_rows: usize) -> SizeReport {
    SizeReport {
        per_attr: attrs
            .iter()
            .enumerate()
            .map(|(attr, a)| {
                let bytes = a.values.iter().map(B::size_bytes).sum::<usize>();
                AttrSize::new(attr, a.values.len(), bytes, n_rows)
            })
            .collect(),
    }
}

impl<B: BitStore> InBandMatchEquality<B> {
    /// Builds the index.
    ///
    /// # Errors
    /// Fails for any cardinality-1 attribute with missing data: under this
    /// encoding its single bitmap is all-ones, so "value 1" cannot be told
    /// apart from "missing" (the paper's objection #2).
    pub fn try_build(dataset: &Dataset) -> Result<Self> {
        for (attr, col) in dataset.columns().iter().enumerate() {
            if col.cardinality() == 1 && col.missing_count() > 0 {
                return Err(Error::UnrepresentableColumn {
                    attr,
                    reason: "cardinality-1 attribute with missing data is ambiguous \
                             under the in-band all-ones encoding",
                });
            }
        }
        Ok(InBandMatchEquality {
            attrs: build_attrs(dataset, true),
            n_rows: dataset.n_rows(),
        })
    }

    /// Size accounting (compare against
    /// [`crate::EqualityBitmapIndex::size_report`] to measure objection #3).
    pub fn size_report(&self) -> SizeReport {
        size_report(&self.attrs, self.n_rows)
    }

    /// Evaluates one interval. The complement path must *recover* the
    /// missing rows it wrongly drops: they are found as the AND of two
    /// distinct value bitmaps (only missing rows are 1 in more than one),
    /// then ORed back — the paper's recovery procedure, at +2 reads +2 ops.
    pub fn evaluate_interval(&self, attr: usize, iv: Interval, cost: &mut QueryCost) -> B {
        let a = &self.attrs[attr];
        let c = a.cardinality as usize;
        let (v1, v2) = (iv.lo as usize, iv.hi as usize);
        // Choose the smaller bitmap set (the paper's prose: complement when
        // the range "includes more than half of the cardinality"; Fig. 2's
        // span test v2−v1 ≤ ⌊C/2⌋ can pick the larger side for even C —
        // comparing set sizes keeps the min(AS, 1−AS)·C + 1 bound tight).
        let width = v2 - v1 + 1;
        if width <= c - width {
            crate::or_all(a.values[v1 - 1..v2].iter(), cost).expect("non-empty range")
        } else {
            let outside = a.values[..v1 - 1].iter().chain(a.values[v2..].iter());
            let neg = match crate::or_all(outside, cost) {
                Some(x) => {
                    cost.op();
                    x.not()
                }
                None => B::ones(self.n_rows),
            };
            if a.has_missing && c >= 2 {
                // Recovery: missing = B_1 AND B_2 (both all-ones on missing
                // rows, disjoint on present rows).
                cost.read_bitmaps(2);
                cost.op();
                let missing = a.values[0].and(&a.values[1]);
                cost.op();
                neg.or(&missing)
            } else {
                neg
            }
        }
    }

    /// Total bytes of all stored bitmaps.
    pub fn size_bytes(&self) -> usize {
        self.size_report().total_bytes()
    }

    /// Executes a query; only [`MissingPolicy::IsMatch`] is supported.
    ///
    /// # Panics
    /// Panics on a not-match query. (The [`AccessMethod`] surface returns
    /// [`Error::UnsupportedPolicy`] instead.)
    pub fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        assert_eq!(
            query.policy(),
            MissingPolicy::IsMatch,
            "in-band match encoding hard-wires match semantics"
        );
        crate::engine::run_with_cost(self, query)
    }
}

impl<B: BitStore> BitmapExec for InBandMatchEquality<B> {
    type Store = B;

    fn exec_rows(&self) -> usize {
        self.n_rows
    }

    fn exec_attrs(&self) -> usize {
        self.attrs.len()
    }

    fn exec_cardinality(&self, attr: usize) -> u16 {
        self.attrs[attr].cardinality
    }

    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        _policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        self.evaluate_interval(attr, iv, cost)
    }
}

impl<B: BitStore> AccessMethod for InBandMatchEquality<B> {
    fn name(&self) -> &'static str {
        "bitmap-inband-match"
    }

    fn supports(&self, query: &RangeQuery) -> bool {
        query.policy() == MissingPolicy::IsMatch
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        if !self.supports(query) {
            return Err(Error::UnsupportedPolicy {
                method: "bitmap-inband-match",
            });
        }
        crate::engine::run_with_cost(self, query)
    }

    fn size_bytes(&self) -> usize {
        InBandMatchEquality::size_bytes(self)
    }

    fn execute_count(&self, query: &RangeQuery) -> Result<usize> {
        if !self.supports(query) {
            return Err(Error::UnsupportedPolicy {
                method: "bitmap-inband-match",
            });
        }
        crate::engine::run_count(self, query)
    }

    // Like BEE, but the complement path pays the recovery (two extra reads
    // plus ops) — objection #1 priced in.
    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        crate::engine::estimate_words(self, query, |w, c| if w <= c - w { w } else { c - w + 3.0 })
    }
}

impl<B: BitStore> InBandNotMatchEquality<B> {
    /// Builds the index (missing rows are simply absent from every bitmap).
    pub fn build(dataset: &Dataset) -> Self {
        InBandNotMatchEquality {
            attrs: build_attrs(dataset, false),
            n_rows: dataset.n_rows(),
        }
    }

    /// Size accounting.
    pub fn size_report(&self) -> SizeReport {
        size_report(&self.attrs, self.n_rows)
    }

    /// Evaluates one interval. The complement path wrongly *includes*
    /// missing rows (they are 0 everywhere, so NOT turns them on); without a
    /// `B_0` the only recovery is to re-derive the present-row mask by ORing
    /// **every** value bitmap — `C` extra reads, which is the point.
    pub fn evaluate_interval(&self, attr: usize, iv: Interval, cost: &mut QueryCost) -> B {
        let a = &self.attrs[attr];
        let c = a.cardinality as usize;
        let (v1, v2) = (iv.lo as usize, iv.hi as usize);
        // Choose the smaller bitmap set (the paper's prose: complement when
        // the range "includes more than half of the cardinality"; Fig. 2's
        // span test v2−v1 ≤ ⌊C/2⌋ can pick the larger side for even C —
        // comparing set sizes keeps the min(AS, 1−AS)·C + 1 bound tight).
        let width = v2 - v1 + 1;
        if width <= c - width {
            crate::or_all(a.values[v1 - 1..v2].iter(), cost).expect("non-empty range")
        } else {
            let outside = a.values[..v1 - 1].iter().chain(a.values[v2..].iter());
            let neg = match crate::or_all(outside, cost) {
                Some(x) => {
                    cost.op();
                    x.not()
                }
                None => B::ones(self.n_rows),
            };
            if a.has_missing {
                let present = crate::or_all(a.values.iter(), cost).expect("c ≥ 1");
                cost.op();
                neg.and(&present)
            } else {
                neg
            }
        }
    }

    /// Total bytes of all stored bitmaps.
    pub fn size_bytes(&self) -> usize {
        self.size_report().total_bytes()
    }

    /// Executes a query; only [`MissingPolicy::IsNotMatch`] is supported.
    ///
    /// # Panics
    /// Panics on a match query. (The [`AccessMethod`] surface returns
    /// [`Error::UnsupportedPolicy`] instead.)
    pub fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        assert_eq!(
            query.policy(),
            MissingPolicy::IsNotMatch,
            "in-band not-match encoding hard-wires not-match semantics"
        );
        crate::engine::run_with_cost(self, query)
    }
}

impl<B: BitStore> BitmapExec for InBandNotMatchEquality<B> {
    type Store = B;

    fn exec_rows(&self) -> usize {
        self.n_rows
    }

    fn exec_attrs(&self) -> usize {
        self.attrs.len()
    }

    fn exec_cardinality(&self, attr: usize) -> u16 {
        self.attrs[attr].cardinality
    }

    fn exec_interval(
        &self,
        attr: usize,
        iv: Interval,
        _policy: MissingPolicy,
        cost: &mut QueryCost,
    ) -> B {
        self.evaluate_interval(attr, iv, cost)
    }
}

impl<B: BitStore> AccessMethod for InBandNotMatchEquality<B> {
    fn name(&self) -> &'static str {
        "bitmap-inband-notmatch"
    }

    fn supports(&self, query: &RangeQuery) -> bool {
        query.policy() == MissingPolicy::IsNotMatch
    }

    fn execute_with_cost(&self, query: &RangeQuery) -> Result<(RowSet, QueryCost)> {
        if !self.supports(query) {
            return Err(Error::UnsupportedPolicy {
                method: "bitmap-inband-notmatch",
            });
        }
        crate::engine::run_with_cost(self, query)
    }

    fn size_bytes(&self) -> usize {
        InBandNotMatchEquality::size_bytes(self)
    }

    fn execute_count(&self, query: &RangeQuery) -> Result<usize> {
        if !self.supports(query) {
            return Err(Error::UnsupportedPolicy {
                method: "bitmap-inband-notmatch",
            });
        }
        crate::engine::run_count(self, query)
    }

    // The complement path re-derives the present mask from all C value
    // bitmaps — objection #1's cost for this variant.
    fn estimated_cost(&self, query: &RangeQuery) -> f64 {
        crate::engine::estimate_words(
            self,
            query,
            |w, c| if w <= c - w { w } else { (c - w) + c + 1.0 },
        )
    }
}

/// Used by tests: a `BitVec64`-backed in-band index never compresses, but
/// WAH-backed instances show the run-interruption effect.
pub type InBandMatchWah = InBandMatchEquality<ibis_bitvec::Wah>;

#[allow(unused)]
fn _assert_object_safety(_: &InBandMatchEquality<BitVec64>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EqualityBitmapIndex;
    use ibis_bitvec::Wah;
    use ibis_core::{gen::uniform_column, scan, Cell, Column, Predicate};
    use rand::{rngs::StdRng, SeedableRng};

    fn v(x: u16) -> Cell {
        Cell::present(x)
    }
    fn m() -> Cell {
        Cell::MISSING
    }

    fn sample() -> Dataset {
        Dataset::from_rows(
            &[("a", 5)],
            &[
                vec![v(5)],
                vec![v(2)],
                vec![v(3)],
                vec![m()],
                vec![v(4)],
                vec![v(5)],
                vec![v(1)],
                vec![v(3)],
                vec![m()],
                vec![v(2)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn match_variant_is_correct_but_costlier_on_complements() {
        let d = sample();
        let inband = InBandMatchEquality::<Wah>::try_build(&d).unwrap();
        let bee = EqualityBitmapIndex::<Wah>::build(&d);
        // Wide range [1,4] forces the complement path.
        let q = RangeQuery::new(vec![Predicate::range(0, 1, 4)], MissingPolicy::IsMatch).unwrap();
        let (rows, cost_in) = inband.execute_with_cost(&q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        let (_, cost_bee) = bee.execute_with_cost(&q).unwrap();
        // Paper objection #1: the recovery (AND two columns, OR back) makes
        // the in-band plan strictly more expensive.
        assert!(
            cost_in.bitmaps_accessed > cost_bee.bitmaps_accessed
                && cost_in.logical_ops > cost_bee.logical_ops,
            "in-band {cost_in:?} vs BEE {cost_bee:?}"
        );
    }

    #[test]
    fn not_match_variant_is_correct_but_reads_every_bitmap() {
        let d = sample();
        let inband = InBandNotMatchEquality::<Wah>::build(&d);
        let q =
            RangeQuery::new(vec![Predicate::range(0, 1, 4)], MissingPolicy::IsNotMatch).unwrap();
        let (rows, cost) = inband.execute_with_cost(&q).unwrap();
        assert_eq!(rows, scan::execute(&d, &q));
        // Present-mask recovery touches all C = 5 value bitmaps.
        assert!(cost.bitmaps_accessed >= 5, "{cost:?}");
    }

    #[test]
    fn direct_path_queries_match_scan() {
        let d = sample();
        let inband_m = InBandMatchEquality::<Wah>::try_build(&d).unwrap();
        let inband_n = InBandNotMatchEquality::<Wah>::build(&d);
        for lo in 1..=5u16 {
            for hi in lo..=5u16 {
                let qm = RangeQuery::new(vec![Predicate::range(0, lo, hi)], MissingPolicy::IsMatch)
                    .unwrap();
                assert_eq!(
                    inband_m.execute_with_cost(&qm).unwrap().0,
                    scan::execute(&d, &qm)
                );
                let qn = qm.with_policy(MissingPolicy::IsNotMatch);
                assert_eq!(
                    inband_n.execute_with_cost(&qn).unwrap().0,
                    scan::execute(&d, &qn)
                );
            }
        }
    }

    #[test]
    fn cardinality_one_with_missing_is_unrepresentable() {
        // Paper objection #2.
        let col = Column::from_raw("flag", 1, vec![1, 0, 1]).unwrap();
        let d = Dataset::new(vec![col]).unwrap();
        assert!(InBandMatchEquality::<Wah>::try_build(&d).is_err());
        // Without missing data it is fine.
        let col = Column::from_raw("flag", 1, vec![1, 1, 1]).unwrap();
        let d = Dataset::new(vec![col]).unwrap();
        assert!(InBandMatchEquality::<Wah>::try_build(&d).is_ok());
    }

    #[test]
    fn in_band_ones_hurt_compression() {
        // Paper objection #3: flooding every value bitmap with the missing
        // rows interrupts 0-runs; the B_0 design compresses better.
        let mut rng = StdRng::seed_from_u64(9);
        let col = uniform_column("a", 20_000, 50, 0.3, &mut rng);
        let d = Dataset::new(vec![col]).unwrap();
        let inband = InBandMatchEquality::<Wah>::try_build(&d).unwrap();
        let bee = EqualityBitmapIndex::<Wah>::build(&d);
        let r_in = inband.size_report().compression_ratio();
        let r_bee = bee.size_report().compression_ratio();
        assert!(
            r_in > 1.5 * r_bee,
            "in-band ratio {r_in} should be much worse than BEE's {r_bee}"
        );
    }
}
