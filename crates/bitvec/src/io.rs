//! Tiny little-endian I/O helpers (this crate sits below `ibis-core`, so it
//! carries its own copies of the primitive readers/writers).

use std::io::{self, Read, Write};

/// Writes one little-endian `u32`.
pub fn write_u32(w: &mut dyn Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads one little-endian `u32`.
pub fn read_u32(r: &mut dyn Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes one little-endian `u64`.
pub fn write_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads one little-endian `u64`.
pub fn read_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        write_u32(&mut buf, 0xCAFE_F00D).unwrap();
        write_u64(&mut buf, u64::MAX).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u32(&mut r).unwrap(), 0xCAFE_F00D);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX);
        assert!(read_u32(&mut r).is_err(), "exhausted");
    }
}
