//! Word-level kernels for the bitmap hot loops.
//!
//! Every bulk bitwise operation in this crate — [`crate::BitVec64`]'s
//! word-parallel ops, the literal-run segments of [`crate::Wah`]'s
//! compressed-form operations, and the bitmap containers of
//! [`crate::Adaptive`] — funnels through these functions, so the choice of
//! loop shape here decides whether the fetch/AND-reduce paths run at
//! hardware speed.
//!
//! Two implementations are selected **at build time**:
//!
//! * the default `wide` feature compiles lane-unrolled loops (u64×8 main
//!   body, u64×4 step-down, scalar tail) that LLVM reliably autovectorizes
//!   to 256/512-bit SIMD without any `unsafe` (this crate is
//!   `#![forbid(unsafe_code)]`, and `std::simd` is nightly-only);
//! * building with `--no-default-features` substitutes the portable scalar
//!   fallback — one element per iteration — for targets or audits where the
//!   unrolled form is unwanted.
//!
//! [`kernel_name`] reports which one was compiled in, so benchmark CSVs and
//! `--profile` output can record the lane width alongside the numbers.
//!
//! ```
//! use ibis_bitvec::kernel;
//!
//! let a = [0xFFu64, 0x0F, 0xF0];
//! let b = [0x0Fu64, 0x0F, 0x0F];
//! let mut out = [0u64; 3];
//! kernel::zip_words(&a, &b, &mut out, |x, y| x & y);
//! assert_eq!(out, [0x0F, 0x0F, 0x00]);
//! assert_eq!(kernel::popcount_words(&out), 8);
//! assert_eq!(kernel::and_popcount(&a, &b), 8);
//! ```

/// Number of lanes the compiled kernels unroll by (1 for the scalar build).
#[cfg(feature = "wide")]
pub const LANES: usize = 8;

/// Number of lanes the compiled kernels unroll by (1 for the scalar build).
#[cfg(not(feature = "wide"))]
pub const LANES: usize = 1;

/// Name of the kernel flavor selected at build time (`"u64x8"` or
/// `"scalar"`); recorded in benchmark output.
pub fn kernel_name() -> &'static str {
    if cfg!(feature = "wide") {
        "u64x8"
    } else {
        "scalar"
    }
}

/// `out[i] = op(a[i], b[i])` over equal-length word slices.
///
/// # Panics
/// Panics if the slice lengths differ.
#[inline]
pub fn zip_words(a: &[u64], b: &[u64], out: &mut [u64], op: impl Fn(u64, u64) -> u64) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "kernel operands must have equal word counts"
    );
    #[cfg(feature = "wide")]
    {
        let mut ai = a.chunks_exact(8);
        let mut bi = b.chunks_exact(8);
        let mut oi = out.chunks_exact_mut(8);
        for ((ca, cb), co) in (&mut ai).zip(&mut bi).zip(&mut oi) {
            co[0] = op(ca[0], cb[0]);
            co[1] = op(ca[1], cb[1]);
            co[2] = op(ca[2], cb[2]);
            co[3] = op(ca[3], cb[3]);
            co[4] = op(ca[4], cb[4]);
            co[5] = op(ca[5], cb[5]);
            co[6] = op(ca[6], cb[6]);
            co[7] = op(ca[7], cb[7]);
        }
        let (ra, rb, ro) = (ai.remainder(), bi.remainder(), oi.into_remainder());
        if ra.len() >= 4 {
            ro[0] = op(ra[0], rb[0]);
            ro[1] = op(ra[1], rb[1]);
            ro[2] = op(ra[2], rb[2]);
            ro[3] = op(ra[3], rb[3]);
            for i in 4..ra.len() {
                ro[i] = op(ra[i], rb[i]);
            }
        } else {
            for i in 0..ra.len() {
                ro[i] = op(ra[i], rb[i]);
            }
        }
    }
    #[cfg(not(feature = "wide"))]
    for i in 0..a.len() {
        out[i] = op(a[i], b[i]);
    }
}

/// `dst[i] = op(dst[i], src[i])` in place over equal-length word slices.
///
/// # Panics
/// Panics if the slice lengths differ.
#[inline]
pub fn zip_words_in_place(dst: &mut [u64], src: &[u64], op: impl Fn(u64, u64) -> u64) {
    assert_eq!(
        dst.len(),
        src.len(),
        "kernel operands must have equal word counts"
    );
    #[cfg(feature = "wide")]
    {
        let mut di = dst.chunks_exact_mut(8);
        let mut si = src.chunks_exact(8);
        for (cd, cs) in (&mut di).zip(&mut si) {
            cd[0] = op(cd[0], cs[0]);
            cd[1] = op(cd[1], cs[1]);
            cd[2] = op(cd[2], cs[2]);
            cd[3] = op(cd[3], cs[3]);
            cd[4] = op(cd[4], cs[4]);
            cd[5] = op(cd[5], cs[5]);
            cd[6] = op(cd[6], cs[6]);
            cd[7] = op(cd[7], cs[7]);
        }
        let (rd, rs) = (di.into_remainder(), si.remainder());
        for i in 0..rd.len() {
            rd[i] = op(rd[i], rs[i]);
        }
    }
    #[cfg(not(feature = "wide"))]
    for i in 0..dst.len() {
        dst[i] = op(dst[i], src[i]);
    }
}

/// Total set bits across a word slice.
#[inline]
pub fn popcount_words(words: &[u64]) -> usize {
    #[cfg(feature = "wide")]
    {
        let mut it = words.chunks_exact(8);
        let mut acc = [0u32; 8];
        for c in &mut it {
            acc[0] += c[0].count_ones();
            acc[1] += c[1].count_ones();
            acc[2] += c[2].count_ones();
            acc[3] += c[3].count_ones();
            acc[4] += c[4].count_ones();
            acc[5] += c[5].count_ones();
            acc[6] += c[6].count_ones();
            acc[7] += c[7].count_ones();
        }
        let tail: u32 = it.remainder().iter().map(|w| w.count_ones()).sum();
        acc.iter().sum::<u32>() as usize + tail as usize
    }
    #[cfg(not(feature = "wide"))]
    {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Set bits of `a[i] & b[i]` without materializing the AND — the fused
/// kernel behind COUNT-only queries.
///
/// # Panics
/// Panics if the slice lengths differ.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "kernel operands must have equal word counts"
    );
    #[cfg(feature = "wide")]
    {
        let mut ai = a.chunks_exact(8);
        let mut bi = b.chunks_exact(8);
        let mut acc = [0u32; 8];
        for (ca, cb) in (&mut ai).zip(&mut bi) {
            acc[0] += (ca[0] & cb[0]).count_ones();
            acc[1] += (ca[1] & cb[1]).count_ones();
            acc[2] += (ca[2] & cb[2]).count_ones();
            acc[3] += (ca[3] & cb[3]).count_ones();
            acc[4] += (ca[4] & cb[4]).count_ones();
            acc[5] += (ca[5] & cb[5]).count_ones();
            acc[6] += (ca[6] & cb[6]).count_ones();
            acc[7] += (ca[7] & cb[7]).count_ones();
        }
        let tail: u32 = ai
            .remainder()
            .iter()
            .zip(bi.remainder())
            .map(|(x, y)| (x & y).count_ones())
            .sum();
        acc.iter().sum::<u32>() as usize + tail as usize
    }
    #[cfg(not(feature = "wide"))]
    {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }
}

/// `out[i] = op(a[i], b[i])` over equal-length `u32` slices — the kernel
/// behind WAH's literal-run batches, where each element is one 31-bit group.
///
/// # Panics
/// Panics if the slice lengths differ.
#[inline]
pub fn zip_groups(a: &[u32], b: &[u32], out: &mut [u32], op: impl Fn(u32, u32) -> u32) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "kernel operands must have equal word counts"
    );
    #[cfg(feature = "wide")]
    {
        let mut ai = a.chunks_exact(8);
        let mut bi = b.chunks_exact(8);
        let mut oi = out.chunks_exact_mut(8);
        for ((ca, cb), co) in (&mut ai).zip(&mut bi).zip(&mut oi) {
            co[0] = op(ca[0], cb[0]);
            co[1] = op(ca[1], cb[1]);
            co[2] = op(ca[2], cb[2]);
            co[3] = op(ca[3], cb[3]);
            co[4] = op(ca[4], cb[4]);
            co[5] = op(ca[5], cb[5]);
            co[6] = op(ca[6], cb[6]);
            co[7] = op(ca[7], cb[7]);
        }
        let (ra, rb, ro) = (ai.remainder(), bi.remainder(), oi.into_remainder());
        for i in 0..ra.len() {
            ro[i] = op(ra[i], rb[i]);
        }
    }
    #[cfg(not(feature = "wide"))]
    for i in 0..a.len() {
        out[i] = op(a[i], b[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kernel_name_matches_build() {
        let name = kernel_name();
        assert!(name == "u64x8" || name == "scalar");
        assert_eq!(name == "u64x8", LANES == 8);
    }

    #[test]
    fn empty_slices_are_fine() {
        let mut out: [u64; 0] = [];
        zip_words(&[], &[], &mut out, |a, b| a & b);
        let mut empty: [u64; 0] = [];
        zip_words_in_place(&mut empty, &[], |a, b| a | b);
        assert_eq!(popcount_words(&[]), 0);
        assert_eq!(and_popcount(&[], &[]), 0);
        let mut out32: [u32; 0] = [];
        zip_groups(&[], &[], &mut out32, |a, b| a ^ b);
    }

    #[test]
    #[should_panic(expected = "equal word counts")]
    fn length_mismatch_panics() {
        let mut out = [0u64; 2];
        zip_words(&[1, 2], &[3], &mut out, |a, b| a & b);
    }

    proptest! {
        #[test]
        fn zip_matches_scalar_loop(
            pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..64)
        ) {
            let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            for op in [|x: u64, y: u64| x & y, |x, y| x | y, |x, y| x ^ y] {
                let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| op(x, y)).collect();
                let mut out = vec![0u64; a.len()];
                zip_words(&a, &b, &mut out, op);
                prop_assert_eq!(&out, &expect);
                let mut dst = a.clone();
                zip_words_in_place(&mut dst, &b, op);
                prop_assert_eq!(&dst, &expect);
            }
        }

        #[test]
        fn popcounts_match_scalar_loop(
            pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..64)
        ) {
            let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            let pop: usize = a.iter().map(|w| w.count_ones() as usize).sum();
            prop_assert_eq!(popcount_words(&a), pop);
            let anded: usize = a.iter().zip(&b).map(|(&x, &y)| (x & y).count_ones() as usize).sum();
            prop_assert_eq!(and_popcount(&a, &b), anded);
        }

        #[test]
        fn group_zip_matches_scalar_loop(
            pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..64)
        ) {
            let a: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let expect: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
            let mut out = vec![0u32; a.len()];
            zip_groups(&a, &b, &mut out, |x, y| x & y);
            prop_assert_eq!(out, expect);
        }
    }
}
