//! Byte-aligned bitmap compression.
//!
//! The paper (§4.4) cites Antoshenkov's Byte-aligned Bitmap Code (BBC) as
//! the main alternative to WAH — better compression (byte granularity beats
//! 31-bit granularity on short runs) but slower logical operations — and
//! lists BBC for the range-encoded bitmaps as future work. [`Bbc`] is a
//! byte-aligned code in that family:
//!
//! * **fill byte** (`1 v nnnnnn`): `n ∈ 1..=62` bytes of `0x00` (`v = 0`) or
//!   `0xFF` (`v = 1`); `n = 63` marks an *extended* fill whose byte count
//!   follows as a LEB128 varint (this is what lets a million-bit empty
//!   bitmap cost 3 bytes instead of ~2000);
//! * **literal header** (`0 nnnnnnn`): `n ∈ 1..=127` verbatim payload bytes
//!   follow.
//!
//! Logical operations run on the compressed byte stream (fill × fill runs
//! are merged without expansion), mirroring the WAH implementation one
//! level finer. The `ablation_compression` experiment compares the two on
//! size and operation speed.

use crate::{BitStore, BitVec64};

const FILL_FLAG: u8 = 0x80;
const FILL_VALUE_FLAG: u8 = 0x40;
const FILL_COUNT_MASK: u8 = 0x3F;
/// Fill count value marking an extended (LEB128-counted) fill.
const FILL_EXTENDED: u8 = 0x3F;
/// Largest inline fill count (one control byte, no varint).
const MAX_INLINE_FILL: usize = 62;
const MAX_LITERAL_RUN: usize = 127;

fn write_leb128(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Bounds-checked LEB128 read for untrusted input (deserialization).
fn try_read_leb128(bytes: &[u8], idx: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*idx)?;
        *idx += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Reads a LEB128 varint starting at `bytes[*idx]`, advancing `idx`.
fn read_leb128(bytes: &[u8], idx: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*idx];
        *idx += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Decodes the fill run starting at control byte `bytes[*idx - 1]` (already
/// consumed); returns its byte count, advancing past any varint.
#[inline]
fn fill_count(control: u8, bytes: &[u8], idx: &mut usize) -> usize {
    let n = control & FILL_COUNT_MASK;
    if n == FILL_EXTENDED {
        read_leb128(bytes, idx) as usize
    } else {
        n as usize
    }
}

/// A byte-aligned compressed bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bbc {
    bytes: Vec<u8>,
    n_bits: usize,
}

impl Bbc {
    /// Encodes an uncompressed bit vector.
    pub fn encode(bits: &BitVec64) -> Bbc {
        let n_bits = bits.len();
        let n_bytes = n_bits.div_ceil(8);
        let mut b = Builder::new();
        for i in 0..n_bytes {
            b.push_byte(byte_at(bits.words(), i));
        }
        Bbc {
            bytes: b.finish(),
            n_bits,
        }
    }

    /// Number of bits in the logical bitmap.
    pub fn len(&self) -> usize {
        self.n_bits
    }

    /// `true` if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// The encoded byte stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// `size_bytes / ceil(n_bits / 8)` — same convention as
    /// [`crate::WahStats::compression_ratio`].
    pub fn compression_ratio(&self) -> f64 {
        self.bytes.len() as f64 / self.n_bits.div_ceil(8).max(1) as f64
    }

    /// Decodes to an uncompressed bit vector.
    pub fn decode(&self) -> BitVec64 {
        let mut out = BitVec64::zeros(self.n_bits);
        let mut byte_pos = 0usize;
        self.for_each_byte(|b| {
            if b != 0 {
                let base = byte_pos * 8;
                for j in 0..8 {
                    if b & (1 << j) != 0 && base + j < self.n_bits {
                        out.set(base + j, true);
                    }
                }
            }
            byte_pos += 1;
        });
        out
    }

    fn for_each_byte(&self, mut f: impl FnMut(u8)) {
        let mut i = 0usize;
        while i < self.bytes.len() {
            let c = self.bytes[i];
            i += 1;
            if c & FILL_FLAG != 0 {
                let count = fill_count(c, &self.bytes, &mut i);
                let v = if c & FILL_VALUE_FLAG != 0 { 0xFF } else { 0x00 };
                for _ in 0..count {
                    f(v);
                }
            } else {
                let n = c as usize;
                for j in 0..n {
                    f(self.bytes[i + j]);
                }
                i += n;
            }
        }
    }

    /// Bitwise AND over the compressed form.
    pub fn and(&self, other: &Bbc) -> Bbc {
        self.binary(other, |a, b| a & b)
    }

    /// Bitwise OR over the compressed form.
    pub fn or(&self, other: &Bbc) -> Bbc {
        self.binary(other, |a, b| a | b)
    }

    /// Bitwise XOR over the compressed form.
    pub fn xor(&self, other: &Bbc) -> Bbc {
        self.binary(other, |a, b| a ^ b)
    }

    /// Bitwise NOT within `len`; tail padding is masked on read.
    pub fn not(&self) -> Bbc {
        let mut out = Vec::with_capacity(self.bytes.len());
        let mut i = 0usize;
        while i < self.bytes.len() {
            let c = self.bytes[i];
            i += 1;
            if c & FILL_FLAG != 0 {
                out.push(c ^ FILL_VALUE_FLAG);
                if c & FILL_COUNT_MASK == FILL_EXTENDED {
                    // Copy the varint count unchanged.
                    let start = i;
                    let _ = read_leb128(&self.bytes, &mut i);
                    out.extend_from_slice(&self.bytes[start..i]);
                }
            } else {
                out.push(c);
                let n = c as usize;
                for j in 0..n {
                    out.push(!self.bytes[i + j]);
                }
                i += n;
            }
        }
        Bbc {
            bytes: out,
            n_bits: self.n_bits,
        }
    }

    fn binary(&self, other: &Bbc, op: impl Fn(u8, u8) -> u8) -> Bbc {
        assert_eq!(
            self.n_bits, other.n_bits,
            "bit vectors must have equal length"
        );
        let mut ca = Cursor::new(&self.bytes);
        let mut cb = Cursor::new(&other.bytes);
        let mut out = Builder::new();
        let mut remaining = self.n_bits.div_ceil(8);
        while remaining > 0 {
            if ca.fill_left > 0 && cb.fill_left > 0 {
                let n = ca.fill_left.min(cb.fill_left).min(remaining);
                let v = op(ca.fill_value, cb.fill_value);
                out.push_repeated(v, n);
                ca.consume_fill(n);
                cb.consume_fill(n);
                remaining -= n;
            } else {
                let a = ca.take_byte();
                let b = cb.take_byte();
                out.push_byte(op(a, b));
                remaining -= 1;
            }
        }
        Bbc {
            bytes: out.finish(),
            n_bits: self.n_bits,
        }
    }

    /// Number of set bits (padding past `len` excluded).
    pub fn count_ones(&self) -> usize {
        let n_bytes = self.n_bits.div_ceil(8);
        let mut count = 0usize;
        let mut byte_pos = 0usize;
        self.for_each_byte(|b| {
            let masked = if byte_pos + 1 == n_bytes && !self.n_bits.is_multiple_of(8) {
                b & ((1u16 << (self.n_bits % 8)) - 1) as u8
            } else {
                b
            };
            count += masked.count_ones() as usize;
            byte_pos += 1;
        });
        count
    }

    /// Positions of set bits, ascending.
    pub fn ones_positions(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut byte_pos = 0usize;
        self.for_each_byte(|b| {
            if b != 0 {
                let base = (byte_pos * 8) as u32;
                for j in 0..8u32 {
                    if b & (1 << j) != 0 && ((base + j) as usize) < self.n_bits {
                        out.push(base + j);
                    }
                }
            }
            byte_pos += 1;
        });
        out
    }
}

#[inline]
fn byte_at(words: &[u64], byte_index: usize) -> u8 {
    let wi = byte_index / 8;
    let off = (byte_index % 8) * 8;
    words.get(wi).map_or(0, |w| (w >> off) as u8)
}

/// Append-side byte compressor. Fill runs accumulate in `pending` (value,
/// count) and are emitted lazily, so arbitrarily long runs collapse into one
/// (possibly extended) fill regardless of how they were pushed.
struct Builder {
    out: Vec<u8>,
    lit: Vec<u8>,
    pending: Option<(u8, usize)>,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            out: Vec::new(),
            lit: Vec::new(),
            pending: None,
        }
    }

    #[inline]
    fn push_byte(&mut self, b: u8) {
        if b == 0x00 || b == 0xFF {
            self.push_repeated(b, 1);
        } else {
            self.flush_fill();
            self.lit.push(b);
            if self.lit.len() == MAX_LITERAL_RUN {
                self.flush_literals();
            }
        }
    }

    #[inline]
    fn push_repeated(&mut self, b: u8, n: usize) {
        if n == 0 {
            return;
        }
        if b != 0x00 && b != 0xFF {
            for _ in 0..n {
                self.push_byte(b);
            }
            return;
        }
        match &mut self.pending {
            Some((v, count)) if *v == b => *count += n,
            _ => {
                self.flush_fill();
                self.flush_literals();
                self.pending = Some((b, n));
            }
        }
    }

    fn flush_fill(&mut self) {
        if let Some((v, count)) = self.pending.take() {
            let value_flag = if v == 0xFF { FILL_VALUE_FLAG } else { 0 };
            if count <= MAX_INLINE_FILL {
                self.out.push(FILL_FLAG | value_flag | count as u8);
            } else {
                self.out.push(FILL_FLAG | value_flag | FILL_EXTENDED);
                write_leb128(&mut self.out, count as u64);
            }
        }
    }

    fn flush_literals(&mut self) {
        if !self.lit.is_empty() {
            debug_assert!(self.lit.len() <= MAX_LITERAL_RUN);
            self.out.push(self.lit.len() as u8);
            self.out.extend_from_slice(&self.lit);
            self.lit.clear();
        }
    }

    fn finish(mut self) -> Vec<u8> {
        self.flush_fill();
        self.flush_literals();
        self.out
    }
}

/// Read cursor exposing one payload byte at a time with a fill fast path.
struct Cursor<'a> {
    bytes: &'a [u8],
    idx: usize,
    fill_left: usize,
    fill_value: u8,
    lit_left: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        let mut c = Cursor {
            bytes,
            idx: 0,
            fill_left: 0,
            fill_value: 0,
            lit_left: 0,
        };
        c.load();
        c
    }

    fn load(&mut self) {
        self.fill_left = 0;
        self.lit_left = 0;
        if self.idx >= self.bytes.len() {
            return;
        }
        let c = self.bytes[self.idx];
        self.idx += 1;
        if c & FILL_FLAG != 0 {
            self.fill_value = if c & FILL_VALUE_FLAG != 0 { 0xFF } else { 0x00 };
            self.fill_left = fill_count(c, self.bytes, &mut self.idx);
            if self.fill_left == 0 {
                self.load();
            }
        } else {
            self.lit_left = c as usize;
            if self.lit_left == 0 {
                self.load();
            }
        }
    }

    #[inline]
    fn consume_fill(&mut self, n: usize) {
        debug_assert!(n <= self.fill_left);
        self.fill_left -= n;
        if self.fill_left == 0 {
            self.load();
        }
    }

    #[inline]
    fn take_byte(&mut self) -> u8 {
        if self.fill_left > 0 {
            let v = self.fill_value;
            self.consume_fill(1);
            v
        } else if self.lit_left > 0 {
            let v = self.bytes[self.idx];
            self.idx += 1;
            self.lit_left -= 1;
            if self.lit_left == 0 {
                self.load();
            }
            v
        } else {
            0 // past the end (degenerate zero-length operands)
        }
    }
}

impl BitStore for Bbc {
    fn from_bitvec(bits: &BitVec64) -> Self {
        Bbc::encode(bits)
    }

    fn to_bitvec(&self) -> BitVec64 {
        self.decode()
    }

    fn zeros(len: usize) -> Self {
        Bbc::encode(&BitVec64::zeros(len))
    }

    fn ones(len: usize) -> Self {
        Bbc::encode(&BitVec64::ones(len))
    }

    fn len(&self) -> usize {
        self.n_bits
    }

    fn and(&self, other: &Self) -> Self {
        self.and(other)
    }

    fn or(&self, other: &Self) -> Self {
        self.or(other)
    }

    fn xor(&self, other: &Self) -> Self {
        self.xor(other)
    }

    fn not(&self) -> Self {
        self.not()
    }

    fn count_ones(&self) -> usize {
        self.count_ones()
    }

    fn ones_positions(&self) -> Vec<u32> {
        self.ones_positions()
    }

    fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    fn backend_name() -> &'static str {
        "bbc"
    }

    fn write_to(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        crate::io::write_u64(w, self.n_bits as u64)?;
        crate::io::write_u64(w, self.bytes.len() as u64)?;
        w.write_all(&self.bytes)
    }

    fn read_from(r: &mut dyn std::io::Read) -> std::io::Result<Self> {
        let n_bits = crate::io::read_u64(r)? as usize;
        let n_bytes = crate::io::read_u64(r)? as usize;
        // Chunked read: a corrupted length header must hit EOF, not OOM.
        let mut bytes = Vec::with_capacity(n_bytes.min(1 << 20));
        let mut remaining = n_bytes;
        let mut chunk = [0u8; 64 * 1024];
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            r.read_exact(&mut chunk[..take])?;
            bytes.extend_from_slice(&chunk[..take]);
            remaining -= take;
        }
        // Validate structure: walk the control stream and check coverage.
        let mut covered = 0u64;
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            i += 1;
            if c & FILL_FLAG != 0 {
                let n = c & FILL_COUNT_MASK;
                let run = if n == FILL_EXTENDED {
                    try_read_leb128(&bytes, &mut i).ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "truncated extended fill",
                        )
                    })?
                } else {
                    n as u64
                };
                covered = covered.checked_add(run).ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "fill counts overflow the bitmap length",
                    )
                })?;
            } else {
                let n = c as usize;
                if i + n > bytes.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "literal run overruns payload",
                    ));
                }
                covered += n as u64;
                i += n;
            }
        }
        if covered != n_bits.div_ceil(8) as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "BBC payload covers {covered} bytes, header implies {}",
                    n_bits.div_ceil(8)
                ),
            ));
        }
        Ok(Bbc { bytes, n_bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &str) -> BitVec64 {
        let mut v = BitVec64::zeros(bits.len());
        for (i, c) in bits.chars().enumerate() {
            v.set(i, c == '1');
        }
        v
    }

    fn sparse(len: usize, ones: &[u32]) -> BitVec64 {
        BitVec64::from_ones(len, ones.iter().copied())
    }

    #[test]
    fn roundtrip_small() {
        for s in [
            "",
            "1",
            "0",
            "10110101",
            "000000000000",
            "1111111111111111",
            "101",
        ] {
            let v = bv(s);
            assert_eq!(Bbc::encode(&v).decode(), v, "{s:?}");
        }
    }

    #[test]
    fn sparse_compresses_better_than_wah_granularity() {
        // A run of 40 zero bits then one set bit: BBC wastes ≤ a few bytes.
        let v = sparse(1_000_000, &[500_000]);
        let b = Bbc::encode(&v);
        assert!(b.bytes().len() <= 10, "{} bytes", b.bytes().len());
        assert_eq!(b.count_ones(), 1);
        assert_eq!(b.ones_positions(), vec![500_000]);
    }

    #[test]
    fn binary_ops_match_plain() {
        let a = sparse(300, &[1, 31, 64, 100, 200, 299]);
        let b = sparse(300, &[0, 31, 99, 100, 250, 299]);
        let (xa, xb) = (Bbc::encode(&a), Bbc::encode(&b));
        assert_eq!(xa.and(&xb).decode(), a.and(&b));
        assert_eq!(xa.or(&xb).decode(), a.or(&b));
        assert_eq!(xa.xor(&xb).decode(), a.xor(&b));
    }

    #[test]
    fn not_respects_length() {
        let v = sparse(100, &[0, 50]);
        let b = Bbc::encode(&v).not();
        assert_eq!(b.count_ones(), 98);
        assert_eq!(b.decode(), v.not());
    }

    #[test]
    fn long_fills_use_extended_counts() {
        // 1000 zero bytes → one extended fill: control byte + 2-byte LEB128.
        let v = BitVec64::zeros(8 * 1000);
        let b = Bbc::encode(&v);
        assert_eq!(b.bytes().len(), 3, "{:02x?}", b.bytes());
        assert_eq!(b.decode(), v);
        // Short fills stay single-byte.
        let v = BitVec64::zeros(8 * 10);
        assert_eq!(Bbc::encode(&v).bytes().len(), 1);
    }

    #[test]
    fn literal_runs_longer_than_127_split() {
        // 200 "incompressible" bytes (alternating 0xAA) must split into two
        // literal runs and still roundtrip.
        let mut v = BitVec64::zeros(8 * 200);
        for i in (0..8 * 200).step_by(2) {
            v.set(i + 1, true); // 0xAA pattern
        }
        let b = Bbc::encode(&v);
        assert_eq!(b.decode(), v);
        assert!(b.compression_ratio() > 1.0); // headers add overhead
    }

    #[test]
    fn mixed_fill_literal_ops() {
        let mut a = BitVec64::zeros(2048);
        let mut b = BitVec64::zeros(2048);
        for i in 0..2048 {
            if i % 97 == 0 {
                a.set(i, true);
            }
            if i / 512 == 1 || i % 89 == 3 {
                b.set(i, true);
            }
        }
        let (xa, xb) = (Bbc::encode(&a), Bbc::encode(&b));
        assert_eq!(xa.or(&xb).decode(), a.or(&b));
        assert_eq!(xa.and(&xb).decode(), a.and(&b));
        assert_eq!(xa.xor(&xb).decode(), a.xor(&b));
    }

    #[test]
    fn zero_length() {
        let b = Bbc::encode(&BitVec64::zeros(0));
        assert!(b.is_empty());
        assert_eq!(b.and(&b).count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let a = Bbc::encode(&BitVec64::zeros(8));
        let b = Bbc::encode(&BitVec64::zeros(16));
        let _ = a.or(&b);
    }

    #[test]
    fn bitstore_impl() {
        assert_eq!(<Bbc as BitStore>::backend_name(), "bbc");
        assert_eq!(<Bbc as BitStore>::ones(13).count_ones(), 13);
        assert_eq!(<Bbc as BitStore>::zeros(13).count_ones(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_runny() -> impl Strategy<Value = BitVec64> {
        proptest::collection::vec((any::<bool>(), 1usize..120), 1..25).prop_map(|runs| {
            let total: usize = runs.iter().map(|(_, n)| n).sum();
            let mut v = BitVec64::zeros(total);
            let mut pos = 0usize;
            for (bit, n) in runs {
                for _ in 0..n {
                    v.set(pos, bit);
                    pos += 1;
                }
            }
            v
        })
    }

    proptest! {
        #[test]
        fn roundtrip(v in arb_runny()) {
            let b = Bbc::encode(&v);
            prop_assert_eq!(b.decode(), v.clone());
            prop_assert_eq!(b.count_ones(), v.count_ones());
        }

        #[test]
        fn ops_agree_with_plain(a in arb_runny(), b in arb_runny()) {
            let len = a.len().min(b.len());
            let ta = BitVec64::from_ones(len, a.iter_ones().filter(|&p| (p as usize) < len));
            let tb = BitVec64::from_ones(len, b.iter_ones().filter(|&p| (p as usize) < len));
            let (xa, xb) = (Bbc::encode(&ta), Bbc::encode(&tb));
            prop_assert_eq!(xa.and(&xb).decode(), ta.and(&tb));
            prop_assert_eq!(xa.or(&xb).decode(), ta.or(&tb));
            prop_assert_eq!(xa.xor(&xb).decode(), ta.xor(&tb));
            prop_assert_eq!(xa.not().decode(), ta.not());
        }

        #[test]
        fn wah_and_bbc_agree(a in arb_runny()) {
            let w = crate::Wah::encode(&a);
            let b = Bbc::encode(&a);
            prop_assert_eq!(w.ones_positions(), b.ones_positions());
        }
    }
}
